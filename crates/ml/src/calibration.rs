//! Score calibration: mapping raw matcher scores to calibrated match
//! probabilities. Threshold-independent fair matching (Moslemi & Milani
//! 2024, the paper's ref \[10\]) calibrates scores *per group* so that one
//! matching threshold treats all groups equally; this module provides the
//! two standard calibrators it builds on.

/// Platt scaling: fit `p = σ(a·s + b)` on (score, label) pairs by
/// gradient descent on the log-loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlattScaler {
    /// Slope of the logistic link.
    pub a: f64,
    /// Intercept of the logistic link.
    pub b: f64,
}

impl PlattScaler {
    /// Fit on raw scores and binary labels.
    ///
    /// # Panics
    /// If inputs are empty or lengths differ.
    pub fn fit(scores: &[f64], labels: &[f64]) -> PlattScaler {
        assert!(!scores.is_empty(), "cannot calibrate on empty data");
        assert_eq!(scores.len(), labels.len(), "scores and labels must align");
        // Platt's target smoothing guards against overconfidence.
        let n_pos = labels.iter().filter(|&&y| y == 1.0).count() as f64;
        let n_neg = labels.len() as f64 - n_pos;
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&y| if y == 1.0 { t_pos } else { t_neg })
            .collect();
        let mut a = 1.0f64;
        let mut b = 0.0f64;
        let lr = 1.0;
        let n = scores.len() as f64;
        for _ in 0..500 {
            let mut ga = 0.0;
            let mut gb = 0.0;
            for (&s, &t) in scores.iter().zip(&targets) {
                let p = sigmoid(a * s + b);
                let err = p - t;
                ga += err * s;
                gb += err;
            }
            a -= lr * ga / n;
            b -= lr * gb / n;
        }
        PlattScaler { a, b }
    }

    /// Calibrated probability for a raw score. Inputs are pinned to the
    /// matcher-boundary score contract first (NaN reads as 0.0, ±inf and
    /// out-of-range scores clamp to the nearest bound), so the output is
    /// always the fitted link evaluated inside `[0, 1]`.
    pub fn transform(&self, score: f64) -> f64 {
        sigmoid(self.a * pin_score(score) + self.b)
    }

    /// Calibrate a batch.
    pub fn transform_all(&self, scores: &[f64]) -> Vec<f64> {
        scores.iter().map(|&s| self.transform(s)).collect()
    }
}

/// Pin a raw score to the `[0, 1]` contract shared with the matcher
/// boundary: NaN becomes 0.0 (no usable evidence), ±inf and out-of-range
/// values clamp to the nearest bound.
fn pin_score(score: f64) -> f64 {
    if score.is_nan() {
        0.0
    } else {
        score.clamp(0.0, 1.0)
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Isotonic regression calibrator fitted with the pool-adjacent-
/// violators algorithm (PAVA): a monotone step function from scores to
/// empirical match rates.
#[derive(Debug, Clone, PartialEq)]
pub struct IsotonicCalibrator {
    /// Breakpoint scores (ascending).
    thresholds: Vec<f64>,
    /// Calibrated value at and above each breakpoint.
    values: Vec<f64>,
}

impl IsotonicCalibrator {
    /// Fit on raw scores and binary labels.
    ///
    /// # Panics
    /// If inputs are empty or lengths differ.
    pub fn fit(scores: &[f64], labels: &[f64]) -> IsotonicCalibrator {
        assert!(!scores.is_empty(), "cannot calibrate on empty data");
        assert_eq!(scores.len(), labels.len(), "scores and labels must align");
        // Sort by score.
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&i, &j| scores[i].total_cmp(&scores[j]));
        // PAVA over blocks (value, weight, start-score).
        struct Block {
            value: f64,
            weight: f64,
            score: f64,
        }
        let mut blocks: Vec<Block> = Vec::with_capacity(order.len());
        for &i in &order {
            blocks.push(Block {
                value: labels[i],
                weight: 1.0,
                score: scores[i],
            });
            while blocks.len() >= 2 {
                let last = blocks.len() - 1;
                if blocks[last - 1].value <= blocks[last].value {
                    break;
                }
                // Merge the violating pair (weighted average).
                let b = blocks.remove(last);
                let a = &mut blocks[last - 1];
                let w = a.weight + b.weight;
                a.value = (a.value * a.weight + b.value * b.weight) / w;
                a.weight = w;
            }
        }
        // Collapse ties so the step function is well-defined: blocks that
        // start at the same raw score (duplicate inputs) pool into their
        // weighted average — otherwise lookup at that score would pick an
        // arbitrary one — and adjacent blocks with equal values merge so
        // `n_steps` counts genuine steps. All-tied and all-one-label fits
        // degenerate to a single constant step this way.
        let mut merged: Vec<Block> = Vec::with_capacity(blocks.len());
        for b in blocks {
            if let Some(last) = merged.last_mut() {
                if last.score == b.score {
                    let w = last.weight + b.weight;
                    last.value = (last.value * last.weight + b.value * b.weight) / w;
                    last.weight = w;
                    continue;
                }
                if last.value == b.value {
                    last.weight += b.weight;
                    continue;
                }
            }
            merged.push(b);
        }
        IsotonicCalibrator {
            thresholds: merged.iter().map(|b| b.score).collect(),
            values: merged.iter().map(|b| b.value).collect(),
        }
    }

    /// Calibrated probability for a raw score (step-function lookup;
    /// scores below the first breakpoint get the first value). Inputs
    /// are pinned to the matcher-boundary score contract first: NaN
    /// reads as 0.0, ±inf and out-of-range scores clamp to the nearest
    /// bound, so the lookup never walks off the fitted support.
    pub fn transform(&self, score: f64) -> f64 {
        let score = pin_score(score);
        match self.thresholds.binary_search_by(|t| t.total_cmp(&score)) {
            Ok(i) => self.values[i],
            Err(0) => self.values[0],
            Err(i) => self.values[i - 1],
        }
    }

    /// Calibrate a batch.
    pub fn transform_all(&self, scores: &[f64]) -> Vec<f64> {
        scores.iter().map(|&s| self.transform(s)).collect()
    }

    /// Number of monotone steps.
    pub fn n_steps(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_scores() -> (Vec<f64>, Vec<f64>) {
        // Scores systematically compressed into [0.3, 0.6] with the true
        // boundary at 0.45 — uncalibrated w.r.t. a 0.5 threshold.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let s = 0.3 + 0.3 * (i as f64 / 200.0);
            scores.push(s);
            labels.push(if s > 0.45 { 1.0 } else { 0.0 });
        }
        (scores, labels)
    }

    #[test]
    fn platt_recovers_decision_boundary() {
        let (scores, labels) = skewed_scores();
        let p = PlattScaler::fit(&scores, &labels);
        // After calibration, the boundary score maps near 0.5 and the
        // extremes saturate in the right direction.
        assert!(p.transform(0.30) < 0.2, "{}", p.transform(0.30));
        assert!(p.transform(0.60) > 0.8, "{}", p.transform(0.60));
        let mid = p.transform(0.45);
        assert!(mid > 0.2 && mid < 0.8, "{mid}");
    }

    #[test]
    fn platt_is_monotone() {
        let (scores, labels) = skewed_scores();
        let p = PlattScaler::fit(&scores, &labels);
        let out = p.transform_all(&scores);
        for w in out.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn isotonic_fits_monotone_steps() {
        let scores = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
        let labels = [0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let iso = IsotonicCalibrator::fit(&scores, &labels);
        // Monotone output over the whole range.
        let mut prev = -1.0;
        for s in [0.0, 0.15, 0.35, 0.55, 0.75, 0.95] {
            let v = iso.transform(s);
            assert!(v >= prev - 1e-12, "not monotone at {s}");
            assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
        // PAVA pooled the 1,0 violation at 0.3/0.4 into 0.5.
        assert!((iso.transform(0.35) - 0.5).abs() < 1e-12);
        assert!(iso.n_steps() < scores.len());
    }

    #[test]
    fn isotonic_perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0.0, 0.0, 1.0, 1.0];
        let iso = IsotonicCalibrator::fit(&scores, &labels);
        assert_eq!(iso.transform(0.15), 0.0);
        assert_eq!(iso.transform(0.85), 1.0);
    }

    #[test]
    fn transforms_pin_nonfinite_and_out_of_range_inputs() {
        let (scores, labels) = skewed_scores();
        let p = PlattScaler::fit(&scores, &labels);
        let iso = IsotonicCalibrator::fit(&scores, &labels);
        // NaN reads as 0.0; ±inf and out-of-range clamp to the bounds —
        // the same contract the matcher boundary enforces on raw scores.
        assert_eq!(p.transform(f64::NAN).to_bits(), p.transform(0.0).to_bits());
        assert_eq!(
            p.transform(f64::INFINITY).to_bits(),
            p.transform(1.0).to_bits()
        );
        assert_eq!(
            p.transform(f64::NEG_INFINITY).to_bits(),
            p.transform(0.0).to_bits()
        );
        assert_eq!(p.transform(7.5).to_bits(), p.transform(1.0).to_bits());
        assert_eq!(p.transform(-7.5).to_bits(), p.transform(0.0).to_bits());
        assert_eq!(
            iso.transform(f64::NAN).to_bits(),
            iso.transform(0.0).to_bits()
        );
        assert_eq!(
            iso.transform(f64::INFINITY).to_bits(),
            iso.transform(1.0).to_bits()
        );
        assert_eq!(
            iso.transform(f64::NEG_INFINITY).to_bits(),
            iso.transform(0.0).to_bits()
        );
        for probe in [p.transform(f64::NAN), iso.transform(f64::INFINITY)] {
            assert!((0.0..=1.0).contains(&probe));
        }
    }

    #[test]
    fn degenerate_fit_all_one_label_stays_in_unit_interval() {
        let scores: Vec<f64> = (0..20).map(|i| i as f64 / 19.0).collect();
        let labels = vec![1.0; 20];
        let p = PlattScaler::fit(&scores, &labels);
        let iso = IsotonicCalibrator::fit(&scores, &labels);
        for s in [f64::NAN, f64::NEG_INFINITY, -1.0, 0.0, 0.5, 1.0, 2.0] {
            let pv = p.transform(s);
            let iv = iso.transform(s);
            assert!(pv.is_finite() && (0.0..=1.0).contains(&pv), "{pv}");
            assert!(iv.is_finite() && (0.0..=1.0).contains(&iv), "{iv}");
        }
        // All-positive data collapses isotonic to a single unit step.
        assert_eq!(iso.n_steps(), 1);
        assert_eq!(iso.transform(0.5), 1.0);
    }

    #[test]
    fn degenerate_fit_all_tied_scores_stays_in_unit_interval() {
        let scores = vec![0.5; 12];
        let labels: Vec<f64> = (0..12).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
        let p = PlattScaler::fit(&scores, &labels);
        let iso = IsotonicCalibrator::fit(&scores, &labels);
        // Tied scores carry no ranking signal: isotonic pools everything
        // into one block at the empirical positive rate.
        assert_eq!(iso.n_steps(), 1);
        assert!((iso.transform(0.0) - 4.0 / 12.0).abs() < 1e-12);
        assert!((iso.transform(1.0) - 4.0 / 12.0).abs() < 1e-12);
        for s in [f64::NAN, f64::INFINITY, -0.5, 0.0, 0.5, 1.0, 1.5] {
            let pv = p.transform(s);
            let iv = iso.transform(s);
            assert!(pv.is_finite() && (0.0..=1.0).contains(&pv), "{pv}");
            assert!(iv.is_finite() && (0.0..=1.0).contains(&iv), "{iv}");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn platt_rejects_empty() {
        let _ = PlattScaler::fit(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn isotonic_rejects_misaligned() {
        let _ = IsotonicCalibrator::fit(&[0.1], &[1.0, 0.0]);
    }
}
