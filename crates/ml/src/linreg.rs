//! Linear regression used as a classifier — LinRegMatcher.
//!
//! Magellan's LinRegMatcher fits ordinary least squares against the 0/1
//! label and thresholds the raw prediction. The output is *not* a
//! calibrated probability: it routinely leaves `[0, 1]` and its decision
//! boundary is sensitive to class imbalance and group-level feature
//! distributions. We preserve that behaviour (clamping only for the score
//! interface), because it is exactly what makes LinRegMatcher the unfair
//! matcher in the paper's Figure 4 story.

use crate::linalg::ridge_normal_equations;
use crate::matrix::Matrix;
use crate::{validate_fit_inputs, Classifier};

/// Ordinary least squares on binary labels, with a tiny ridge for
/// numerical robustness. Scores are raw predictions clamped to `[0, 1]`.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    lambda: f64,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LinearRegression {
    /// Create an untrained model with ridge `lambda` (use a small value
    /// like `1e-6` for plain OLS behaviour).
    pub fn new(lambda: f64) -> LinearRegression {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        LinearRegression {
            lambda,
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }

    /// Raw (unclamped) regression output for a feature row.
    pub fn raw_prediction(&self, row: &[f64]) -> f64 {
        assert!(self.fitted, "LinearRegression used before fit");
        self.bias
            + row
                .iter()
                .zip(&self.weights)
                .map(|(a, w)| a * w)
                .sum::<f64>()
    }

    /// Trained weight vector (empty before fit).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Classifier for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        validate_fit_inputs(x, y);
        // Append a bias column.
        let n = x.rows();
        let d = x.cols();
        let mut aug = Matrix::zeros(n, d + 1);
        for r in 0..n {
            let dst = aug.row_mut(r);
            dst[..d].copy_from_slice(x.row(r));
            dst[d] = 1.0;
        }
        // A singular system can only arise from pathological all-constant
        // features; grow the ridge until it solves.
        let mut lambda = self.lambda.max(1e-12);
        let w = loop {
            match ridge_normal_equations(&aug, y, lambda) {
                Ok(w) => break w,
                Err(_) if lambda < 1.0 => lambda *= 100.0,
                // fairem: allow(panic) — documented # Panics contract: singular even after ridge escalation
                Err(e) => panic!("linear regression could not be solved: {e}"),
            }
        };
        self.bias = w[d];
        self.weights = w[..d].to_vec();
        self.fitted = true;
    }

    fn score_one(&self, row: &[f64]) -> f64 {
        self.raw_prediction(row).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_separable_data() {
        let rows = vec![
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![0.3],
            vec![0.7],
            vec![0.8],
            vec![0.9],
            vec![1.0],
        ];
        let y = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let x = Matrix::from_rows(&rows);
        let mut m = LinearRegression::new(1e-9);
        m.fit(&x, &y);
        assert!(m.score_one(&[0.05]) < 0.5);
        assert!(m.score_one(&[0.95]) > 0.5);
    }

    #[test]
    fn raw_predictions_can_leave_unit_interval() {
        let rows = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 1.0];
        let x = Matrix::from_rows(&rows);
        let mut m = LinearRegression::new(1e-9);
        m.fit(&x, &y);
        // Extrapolation overshoots — the uncalibrated behaviour we keep.
        assert!(m.raw_prediction(&[2.0]) > 1.5);
        assert_eq!(m.score_one(&[2.0]), 1.0); // but the score clamps
        assert!(m.raw_prediction(&[-1.0]) < -0.5);
        assert_eq!(m.score_one(&[-1.0]), 0.0);
    }

    #[test]
    fn survives_constant_feature() {
        let rows = vec![
            vec![1.0, 0.0],
            vec![1.0, 0.5],
            vec![1.0, 1.0],
            vec![1.0, 0.9],
        ];
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let x = Matrix::from_rows(&rows);
        let mut m = LinearRegression::new(1e-9);
        m.fit(&x, &y); // constant col + bias col are collinear → ridge rescue
        assert!(m.score_one(&[1.0, 1.0]) > m.score_one(&[1.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn raw_before_fit_panics() {
        let m = LinearRegression::new(0.0);
        let _ = m.raw_prediction(&[1.0]);
    }
}
