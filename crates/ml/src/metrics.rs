//! Binary-classification evaluation metrics.

fn validate(preds: &[bool], truths: &[bool]) {
    assert_eq!(
        preds.len(),
        truths.len(),
        "predictions and truths must align"
    );
}

/// Fraction of correct predictions; `NaN` for empty input.
pub fn accuracy(preds: &[bool], truths: &[bool]) -> f64 {
    validate(preds, truths);
    if preds.is_empty() {
        return f64::NAN;
    }
    preds.iter().zip(truths).filter(|(p, t)| p == t).count() as f64 / preds.len() as f64
}

/// Precision = TP / (TP + FP); `NaN` when nothing was predicted positive.
pub fn precision(preds: &[bool], truths: &[bool]) -> f64 {
    validate(preds, truths);
    let tp = preds.iter().zip(truths).filter(|(&p, &t)| p && t).count();
    let pp = preds.iter().filter(|&&p| p).count();
    if pp == 0 {
        f64::NAN
    } else {
        tp as f64 / pp as f64
    }
}

/// Recall = TP / (TP + FN); `NaN` when there are no true positives to find.
pub fn recall(preds: &[bool], truths: &[bool]) -> f64 {
    validate(preds, truths);
    let tp = preds.iter().zip(truths).filter(|(&p, &t)| p && t).count();
    let pos = truths.iter().filter(|&&t| t).count();
    if pos == 0 {
        f64::NAN
    } else {
        tp as f64 / pos as f64
    }
}

/// F1 = harmonic mean of precision and recall; `NaN` when undefined.
pub fn f1_score(preds: &[bool], truths: &[bool]) -> f64 {
    let p = precision(preds, truths);
    let r = recall(preds, truths);
    if p.is_nan() || r.is_nan() || p + r == 0.0 {
        return f64::NAN;
    }
    2.0 * p * r / (p + r)
}

/// Area under the ROC curve computed from scores via the rank statistic
/// (equivalent to the Mann-Whitney U), with midrank handling for ties.
/// `NaN` when either class is absent.
pub fn auc_roc(scores: &[f64], truths: &[bool]) -> f64 {
    assert_eq!(scores.len(), truths.len(), "scores and truths must align");
    let n_pos = truths.iter().filter(|&&t| t).count();
    let n_neg = truths.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return f64::NAN;
    }
    // Rank scores ascending with midranks for ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = truths
        .iter()
        .zip(&ranks)
        .filter_map(|(&t, &r)| t.then_some(r))
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts() {
        let p = [true, false, true, true];
        let t = [true, false, false, true];
        assert_eq!(accuracy(&p, &t), 0.75);
        assert!(accuracy(&[], &[]).is_nan());
    }

    #[test]
    fn precision_recall_f1() {
        let p = [true, true, false, false];
        let t = [true, false, true, false];
        assert_eq!(precision(&p, &t), 0.5);
        assert_eq!(recall(&p, &t), 0.5);
        assert_eq!(f1_score(&p, &t), 0.5);
    }

    #[test]
    fn undefined_cases_are_nan() {
        let t = [true, true];
        assert!(precision(&[false, false], &t).is_nan());
        assert!(recall(&[false, false], &[false, false]).is_nan());
        assert!(f1_score(&[false, false], &t).is_nan());
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let truths = [false, false, true, true];
        assert_eq!(auc_roc(&scores, &truths), 1.0);
        let inverted = [true, true, false, false];
        assert_eq!(auc_roc(&scores, &inverted), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // Scores identical → ties everywhere → AUC exactly 0.5.
        let scores = [0.5; 6];
        let truths = [true, false, true, false, true, false];
        assert!((auc_roc(&scores, &truths) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_value_with_ties() {
        let scores = [0.2, 0.5, 0.5, 0.9];
        let truths = [false, false, true, true];
        // Pairs: (0.5 vs 0.2)=1, (0.5 vs 0.5)=0.5, (0.9 vs 0.2)=1, (0.9 vs 0.5)=1 → 3.5/4
        assert!((auc_roc(&scores, &truths) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_nan() {
        assert!(auc_roc(&[0.5, 0.6], &[true, true]).is_nan());
    }
}
