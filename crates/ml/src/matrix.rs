//! A dense row-major `f64` matrix, the feature container for all models.

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Create from a flat row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "flat buffer size mismatch");
        Matrix { data, rows, cols }
    }

    /// Create from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// If rows are ragged or the input is empty with unknown width.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let n = rows.len();
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            data,
            rows: n,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// The whole buffer, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Build a new matrix from a subset of this one's rows.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            rows: idx.len(),
            cols: self.cols,
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// If `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn from_flat_and_set() {
        let mut m = Matrix::from_flat(2, 3, vec![0.0; 6]);
        m.set(1, 2, 9.0);
        assert_eq!(m.get(1, 2), 9.0);
        m.row_mut(0)[1] = 5.0;
        assert_eq!(m.get(0, 1), 5.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn select_rows_copies_subset() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
        assert_eq!(s.row(2), &[3.0]);
    }

    #[test]
    fn matvec_and_transpose() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        let t = m.transpose();
        assert_eq!(t.row(0), &[1.0, 3.0]);
        assert_eq!(t.row(1), &[2.0, 4.0]);
    }
}
