//! Logistic regression trained by full-batch gradient descent — LogRegMatcher.

use fairem_par::{CancelToken, Interrupt};

use crate::matrix::Matrix;
use crate::{validate_fit_inputs, Classifier};

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// L2-regularized logistic regression; scores are calibrated
/// probabilities `σ(wᵀx + b)`.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    learning_rate: f64,
    epochs: usize,
    l2: f64,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LogisticRegression {
    /// Create an untrained model. `l2` is the ridge penalty per example.
    pub fn new(learning_rate: f64, epochs: usize, l2: f64) -> LogisticRegression {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(epochs >= 1, "need at least one epoch");
        assert!(l2 >= 0.0, "l2 must be non-negative");
        LogisticRegression {
            learning_rate,
            epochs,
            l2,
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }

    /// Trained weight vector (empty before fit).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Trained intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        // An inert token never trips, so this cannot fail.
        let _ = self.fit_within(x, y, &CancelToken::inert());
    }

    /// One checkpoint per gradient-descent epoch.
    fn step_unit(&self) -> &'static str {
        "per-epoch"
    }

    fn fit_within(&mut self, x: &Matrix, y: &[f64], token: &CancelToken) -> Result<(), Interrupt> {
        validate_fit_inputs(x, y);
        let n = x.rows();
        let d = x.cols();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        self.fitted = false;
        let inv_n = 1.0 / n as f64;
        let mut grad = vec![0.0; d];
        for _ in 0..self.epochs {
            token.checkpoint()?;
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0;
            #[allow(clippy::needless_range_loop)]
            for r in 0..n {
                let row = x.row(r);
                let z = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, w)| a * w)
                        .sum::<f64>();
                let err = sigmoid(z) - y[r];
                for (g, &xi) in grad.iter_mut().zip(row) {
                    *g += err * xi;
                }
                grad_b += err;
            }
            for (w, g) in self.weights.iter_mut().zip(&grad) {
                *w -= self.learning_rate * (g * inv_n + self.l2 * *w);
            }
            self.bias -= self.learning_rate * grad_b * inv_n;
        }
        self.fitted = true;
        Ok(())
    }

    fn score_one(&self, row: &[f64]) -> f64 {
        assert!(self.fitted, "LogisticRegression used before fit");
        let z = self.bias
            + row
                .iter()
                .zip(&self.weights)
                .map(|(a, w)| a * w)
                .sum::<f64>();
        sigmoid(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let v = i as f64 / 50.0;
            rows.push(vec![v, 1.0 - v]);
            y.push(if v > 0.5 { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_linear_boundary() {
        let (x, y) = linear_data();
        let mut m = LogisticRegression::new(1.0, 2000, 0.0);
        m.fit(&x, &y);
        let acc = (0..x.rows())
            .filter(|&r| (m.score_one(x.row(r)) >= 0.5) == (y[r] == 1.0))
            .count() as f64
            / x.rows() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = linear_data();
        let mut m = LogisticRegression::new(0.5, 500, 0.001);
        m.fit(&x, &y);
        for r in 0..x.rows() {
            let s = m.score_one(x.row(r));
            assert!((0.0..=1.0).contains(&s));
        }
        // Extreme input saturates toward the class.
        assert!(m.score_one(&[5.0, -5.0]) > 0.9);
        assert!(m.score_one(&[-5.0, 5.0]) < 0.1);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = linear_data();
        let mut free = LogisticRegression::new(0.5, 1000, 0.0);
        let mut reg = LogisticRegression::new(0.5, 1000, 0.1);
        free.fit(&x, &y);
        reg.fit(&x, &y);
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(reg.weights()) < norm(free.weights()));
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let m = LogisticRegression::new(0.1, 10, 0.0);
        let _ = m.score_one(&[0.0]);
    }

    #[test]
    fn step_budget_cuts_training_per_epoch_and_leaves_model_unfitted() {
        use fairem_par::{Budget, CancelCause};
        let (x, y) = linear_data();
        let mut m = LogisticRegression::new(0.5, 500, 0.0);
        let token = CancelToken::with_budget(Budget::steps(3));
        let i = m.fit_within(&x, &y, &token).expect_err("3 < 500 epochs");
        assert_eq!(i.cause, CancelCause::StepLimit);
        assert_eq!(i.steps, 3, "exactly three epochs completed");
        assert!(!m.fitted, "interrupted model must not claim to be fitted");
    }

    #[test]
    fn fit_within_on_an_inert_token_matches_fit_bit_for_bit() {
        let (x, y) = linear_data();
        let mut plain = LogisticRegression::new(0.5, 300, 0.001);
        plain.fit(&x, &y);
        let mut within = LogisticRegression::new(0.5, 300, 0.001);
        within
            .fit_within(&x, &y, &CancelToken::inert())
            .expect("inert token");
        assert_eq!(plain.bias().to_bits(), within.bias().to_bits());
        for (a, b) in plain.weights().iter().zip(within.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
