//! Gradient-boosted regression trees for binary classification — the
//! from-scratch counterpart of Magellan's XGBoost-backed matcher.
//!
//! Boosting minimizes the logistic loss: each round fits a small
//! regression tree (variance-reduction splits) to the negative gradient
//! (residual `y − p`), and leaf values take a Newton step
//! `Σr / Σp(1−p)`. Scores are `σ(F(x))`.

use fairem_par::{CancelToken, Interrupt};

use crate::matrix::Matrix;
use crate::{validate_fit_inputs, Classifier};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A regression tree fit to (residual, hessian) targets with variance-
/// reduction splits — the weak learner inside [`GradientBoostedTrees`].
#[derive(Debug, Clone)]
struct RegressionTree {
    root: Node,
}

impl RegressionTree {
    /// Fit on residuals `r` with hessians `h` (Newton leaf values).
    fn fit(
        x: &Matrix,
        r: &[f64],
        h: &[f64],
        max_depth: usize,
        min_samples: usize,
    ) -> RegressionTree {
        let mut idx: Vec<usize> = (0..x.rows()).collect();
        let root = RegressionTree::build(x, r, h, &mut idx, max_depth, min_samples);
        RegressionTree { root }
    }

    fn leaf_value(r: &[f64], h: &[f64], idx: &[usize]) -> f64 {
        let num: f64 = idx.iter().map(|&i| r[i]).sum();
        let den: f64 = idx.iter().map(|&i| h[i]).sum::<f64>() + 1e-9;
        num / den
    }

    fn build(
        x: &Matrix,
        r: &[f64],
        h: &[f64],
        idx: &mut [usize],
        depth: usize,
        min_samples: usize,
    ) -> Node {
        if depth == 0 || idx.len() < min_samples {
            return Node::Leaf {
                value: RegressionTree::leaf_value(r, h, idx),
            };
        }
        // Best split by squared-residual reduction. Gain plateaus (e.g.
        // XOR-shaped residuals, where every first split has zero
        // first-order gain) are broken toward the most balanced split so
        // deeper levels can expose the interaction — mirroring the CART
        // tree's tie-break in `crate::tree`.
        let total_sum: f64 = idx.iter().map(|&i| r[i]).sum();
        let n = idx.len() as f64;
        let mut best: Option<(usize, f64, f64, f64)> = None; // (feature, threshold, gain, balance)
        let mut vals: Vec<(f64, f64)> = Vec::with_capacity(idx.len());
        for f in 0..x.cols() {
            vals.clear();
            vals.extend(idx.iter().map(|&i| (x.get(i, f), r[i])));
            vals.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut left_sum = 0.0;
            let mut left_n = 0.0;
            for w in 0..vals.len() - 1 {
                left_sum += vals[w].1;
                left_n += 1.0;
                if vals[w].0 == vals[w + 1].0 {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_n = n - left_n;
                // Variance-reduction proxy: split gain of squared sums.
                let gain = left_sum * left_sum / left_n + right_sum * right_sum / right_n
                    - total_sum * total_sum / n;
                let balance = left_n.min(right_n);
                let better = match best {
                    None => true,
                    Some((_, _, g, bal)) => {
                        gain > g + 1e-12 || ((gain - g).abs() <= 1e-12 && balance > bal)
                    }
                };
                if better {
                    best = Some((f, 0.5 * (vals[w].0 + vals[w + 1].0), gain, balance));
                }
            }
        }
        let Some((feature, threshold, _, _)) = best else {
            return Node::Leaf {
                value: RegressionTree::leaf_value(r, h, idx),
            };
        };
        let mut mid = 0;
        for i in 0..idx.len() {
            if x.get(idx[i], feature) <= threshold {
                idx.swap(i, mid);
                mid += 1;
            }
        }
        if mid == 0 || mid == idx.len() {
            return Node::Leaf {
                value: RegressionTree::leaf_value(r, h, idx),
            };
        }
        let (li, ri) = idx.split_at_mut(mid);
        Node::Split {
            feature,
            threshold,
            left: Box::new(RegressionTree::build(x, r, h, li, depth - 1, min_samples)),
            right: Box::new(RegressionTree::build(x, r, h, ri, depth - 1, min_samples)),
        }
    }

    fn predict(&self, row: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

/// Gradient-boosted trees with logistic loss.
#[derive(Debug, Clone)]
pub struct GradientBoostedTrees {
    n_rounds: usize,
    max_depth: usize,
    learning_rate: f64,
    base: f64,
    trees: Vec<RegressionTree>,
}

impl GradientBoostedTrees {
    /// Create an untrained booster.
    ///
    /// # Panics
    /// If hyperparameters are degenerate.
    pub fn new(n_rounds: usize, max_depth: usize, learning_rate: f64) -> GradientBoostedTrees {
        assert!(n_rounds >= 1, "need at least one boosting round");
        assert!(max_depth >= 1, "trees need depth >= 1");
        assert!(
            learning_rate > 0.0 && learning_rate <= 1.0,
            "learning rate in (0,1]"
        );
        GradientBoostedTrees {
            n_rounds,
            max_depth,
            learning_rate,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Number of fitted rounds.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    fn raw(&self, row: &[f64]) -> f64 {
        self.base
            + self
                .trees
                .iter()
                .map(|t| self.learning_rate * t.predict(row))
                .sum::<f64>()
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Classifier for GradientBoostedTrees {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        // An inert token never trips, so this cannot fail.
        let _ = self.fit_within(x, y, &CancelToken::inert());
    }

    /// One checkpoint per boosting round. On interrupt the partial
    /// ensemble is discarded — fewer rounds means a different model.
    fn step_unit(&self) -> &'static str {
        "per-round"
    }

    fn fit_within(&mut self, x: &Matrix, y: &[f64], token: &CancelToken) -> Result<(), Interrupt> {
        validate_fit_inputs(x, y);
        let n = x.rows();
        // Base score: log-odds of the positive rate (clamped).
        let pos = y.iter().sum::<f64>() / n as f64;
        let p0 = pos.clamp(1e-6, 1.0 - 1e-6);
        self.base = (p0 / (1.0 - p0)).ln();
        self.trees.clear();
        let mut raw: Vec<f64> = vec![self.base; n];
        let mut residual = vec![0.0; n];
        let mut hessian = vec![0.0; n];
        for _ in 0..self.n_rounds {
            if let Err(i) = token.checkpoint() {
                self.trees.clear();
                return Err(i);
            }
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                let p = sigmoid(raw[i]);
                residual[i] = y[i] - p;
                hessian[i] = (p * (1.0 - p)).max(1e-9);
            }
            let tree = RegressionTree::fit(x, &residual, &hessian, self.max_depth, 4);
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                raw[i] += self.learning_rate * tree.predict(x.row(i));
            }
            self.trees.push(tree);
        }
        Ok(())
    }

    fn score_one(&self, row: &[f64]) -> f64 {
        assert!(
            !self.trees.is_empty(),
            "GradientBoostedTrees used before fit"
        );
        sigmoid(self.raw(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = f64::from(i % 2 == 0);
            let b = f64::from((i / 2) % 2 == 0);
            let jitter = (i % 5) as f64 * 0.01;
            rows.push(vec![a + jitter, b - jitter]);
            y.push(f64::from((a > 0.5) != (b > 0.5)));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn boosting_learns_xor() {
        let (x, y) = xor_data();
        let mut m = GradientBoostedTrees::new(30, 3, 0.3);
        m.fit(&x, &y);
        assert_eq!(m.n_trees(), 30);
        let acc = (0..x.rows())
            .filter(|&r| (m.score_one(x.row(r)) >= 0.5) == (y[r] == 1.0))
            .count() as f64
            / x.rows() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn more_rounds_reduce_training_loss() {
        let (x, y) = xor_data();
        let loss = |m: &GradientBoostedTrees| -> f64 {
            (0..x.rows())
                .map(|r| {
                    let p = m.score_one(x.row(r)).clamp(1e-9, 1.0 - 1e-9);
                    -(y[r] * p.ln() + (1.0 - y[r]) * (1.0 - p).ln())
                })
                .sum()
        };
        let mut small = GradientBoostedTrees::new(3, 3, 0.3);
        small.fit(&x, &y);
        let mut big = GradientBoostedTrees::new(40, 3, 0.3);
        big.fit(&x, &y);
        assert!(
            loss(&big) < loss(&small),
            "{} vs {}",
            loss(&big),
            loss(&small)
        );
    }

    #[test]
    fn scores_bounded_and_base_reflects_prior() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![0.9]]);
        let y = vec![0.0, 0.0, 0.0, 1.0];
        let mut m = GradientBoostedTrees::new(5, 2, 0.2);
        m.fit(&x, &y);
        for r in 0..x.rows() {
            let s = m.score_one(x.row(r));
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn pure_class_training_is_stable() {
        let x = Matrix::from_rows(&[vec![0.1], vec![0.2], vec![0.3]]);
        let y = vec![1.0, 1.0, 1.0];
        let mut m = GradientBoostedTrees::new(5, 2, 0.5);
        m.fit(&x, &y);
        assert!(m.score_one(&[0.2]) > 0.9);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let m = GradientBoostedTrees::new(3, 2, 0.1);
        let _ = m.score_one(&[0.0]);
    }

    #[test]
    fn step_budget_cuts_boosting_per_round_and_discards_partial_rounds() {
        use fairem_par::{Budget, CancelCause};
        let (x, y) = xor_data();
        let mut m = GradientBoostedTrees::new(30, 3, 0.3);
        let token = CancelToken::with_budget(Budget::steps(4));
        let i = m.fit_within(&x, &y, &token).expect_err("4 < 30 rounds");
        assert_eq!(i.cause, CancelCause::StepLimit);
        assert_eq!(i.steps, 4, "exactly four rounds completed before the cut");
        assert_eq!(m.n_trees(), 0, "partial ensemble must be discarded");
    }
}
