//! # fairem-ml
//!
//! Classic machine-learning substrate for FairEM360's six non-neural
//! matchers (paper §2.2: DTMatcher, SVMMatcher, RFMatcher, LogRegMatcher,
//! LinRegMatcher, NBMatcher — the Magellan family), implemented from
//! scratch: CART decision trees, random forests, Pegasos linear SVM,
//! logistic/linear regression, Gaussian naive Bayes, and k-NN, plus the
//! dense linear algebra, feature scaling, evaluation metrics and k-fold
//! utilities they need.
//!
//! All models implement [`Classifier`]: `fit` on a feature matrix with
//! binary labels, then produce match scores in `[0, 1]` (the matcher
//! threshold is applied downstream by the suite).

pub mod boosting;
pub mod calibration;
pub mod crossval;
pub mod forest;
pub mod knn;
pub mod linalg;
pub mod linreg;
pub mod logreg;
pub mod matrix;
pub mod metrics;
pub mod naive_bayes;
pub mod scaler;
pub mod svm;
pub mod tree;

pub use boosting::GradientBoostedTrees;
pub use calibration::{IsotonicCalibrator, PlattScaler};
pub use crossval::{cross_val_f1, kfold_indices};
pub use forest::RandomForest;
pub use knn::KnnClassifier;
pub use linreg::LinearRegression;
pub use logreg::LogisticRegression;
pub use matrix::Matrix;
pub use metrics::{accuracy, auc_roc, f1_score, precision, recall};
pub use naive_bayes::GaussianNb;
pub use scaler::StandardScaler;
pub use svm::LinearSvm;
pub use tree::DecisionTree;

/// A binary classifier producing match scores in `[0, 1]`.
///
/// Labels passed to [`Classifier::fit`] must be `0.0` or `1.0`. Scores
/// are *not* required to be calibrated probabilities — e.g. the linear
/// regression matcher clamps a raw regression output, mirroring how
/// Magellan's LinRegMatcher behaves (and why it is threshold-sensitive).
pub trait Classifier {
    /// Train on a feature matrix (one row per example) and binary labels.
    ///
    /// # Panics
    /// Implementations panic if `x.rows() != y.len()` or `x` is empty.
    fn fit(&mut self, x: &Matrix, y: &[f64]);

    /// Cancellable [`Classifier::fit`]: polls `token` at the model's
    /// natural checkpoints (per epoch / per tree / per round) and bails
    /// with the [`Interrupt`] record when it trips, leaving the model
    /// unfitted. With an untripped token this is bit-for-bit `fit`.
    ///
    /// The default implementation checkpoints once and then trains
    /// atomically — right for non-iterative models (trees, k-NN, naive
    /// Bayes, closed-form regression); iterative trainers override it.
    fn fit_within(
        &mut self,
        x: &Matrix,
        y: &[f64],
        token: &fairem_par::CancelToken,
    ) -> Result<(), fairem_par::Interrupt> {
        token.checkpoint()?;
        self.fit(x, y);
        Ok(())
    }

    /// The checkpoint granularity of [`Classifier::fit_within`] as a
    /// human-readable unit (e.g. `"per-epoch"`, `"per-tree"`), surfaced
    /// in observability span annotations. The default matches the
    /// default `fit_within`: one checkpoint, then an atomic fit.
    fn step_unit(&self) -> &'static str {
        "per-fit"
    }

    /// Score one feature row; higher means more likely a match.
    fn score_one(&self, row: &[f64]) -> f64;

    /// Score every row of a matrix.
    fn score_all(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.score_one(x.row(r))).collect()
    }

    /// Hard prediction at a decision threshold.
    fn predict(&self, row: &[f64], threshold: f64) -> bool {
        self.score_one(row) >= threshold
    }
}

pub(crate) fn validate_fit_inputs(x: &Matrix, y: &[f64]) {
    assert!(x.rows() > 0, "cannot fit on an empty matrix");
    assert_eq!(x.rows(), y.len(), "feature rows and labels must align");
    assert!(
        y.iter().all(|&v| v == 0.0 || v == 1.0),
        "labels must be 0.0 or 1.0"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny linearly separable dataset: class 1 iff x0 + x1 > 1.
    fn toy() -> (Matrix, Vec<f64>) {
        let rows = vec![
            vec![0.1, 0.2],
            vec![0.2, 0.1],
            vec![0.3, 0.3],
            vec![0.4, 0.2],
            vec![0.9, 0.8],
            vec![0.8, 0.9],
            vec![0.7, 0.7],
            vec![0.6, 0.9],
        ];
        let y = vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn every_model_learns_the_toy_problem() {
        let (x, y) = toy();
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(DecisionTree::new(4, 2)),
            Box::new(RandomForest::new(15, 4, 7)),
            Box::new(LinearSvm::new(0.01, 200, 11)),
            Box::new(LogisticRegression::new(0.5, 500, 0.001)),
            Box::new(LinearRegression::new(1e-6)),
            Box::new(GaussianNb::new()),
            Box::new(KnnClassifier::new(3)),
        ];
        for mut m in models {
            m.fit(&x, &y);
            let scores = m.score_all(&x);
            for (s, &t) in scores.iter().zip(&y) {
                assert!((0.0..=1.0).contains(s), "score out of range: {s}");
                let pred = *s >= 0.5;
                assert_eq!(pred, t == 1.0, "misclassified with score {s} target {t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn fit_rejects_soft_labels() {
        let (x, _) = toy();
        let mut m = GaussianNb::new();
        m.fit(&x, &vec![0.5; x.rows()]);
    }
}
