//! Gaussian naive Bayes — NBMatcher.

use crate::matrix::Matrix;
use crate::{validate_fit_inputs, Classifier};

const VAR_FLOOR: f64 = 1e-9;

#[derive(Debug, Clone)]
struct ClassStats {
    prior_ln: f64,
    means: Vec<f64>,
    vars: Vec<f64>,
}

/// Gaussian naive Bayes over continuous similarity features; the score is
/// the posterior probability of the match class.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    classes: Option<[ClassStats; 2]>,
}

impl GaussianNb {
    /// Create an untrained model.
    pub fn new() -> GaussianNb {
        GaussianNb::default()
    }

    fn class_stats(x: &Matrix, y: &[f64], label: f64, n_total: usize) -> ClassStats {
        let d = x.cols();
        let idx: Vec<usize> = (0..x.rows()).filter(|&r| y[r] == label).collect();
        let n = idx.len();
        // Laplace-style prior smoothing avoids log(0) for absent classes.
        let prior_ln = ((n as f64 + 1.0) / (n_total as f64 + 2.0)).ln();
        let mut means = vec![0.0; d];
        let mut vars = vec![0.0; d];
        if n > 0 {
            for &r in &idx {
                for (m, &v) in means.iter_mut().zip(x.row(r)) {
                    *m += v;
                }
            }
            for m in means.iter_mut() {
                *m /= n as f64;
            }
            for &r in &idx {
                for ((var, &v), &m) in vars.iter_mut().zip(x.row(r)).zip(&means) {
                    *var += (v - m) * (v - m);
                }
            }
            for var in vars.iter_mut() {
                *var = (*var / n as f64).max(VAR_FLOOR);
            }
        } else {
            vars.iter_mut().for_each(|v| *v = 1.0);
        }
        ClassStats {
            prior_ln,
            means,
            vars,
        }
    }

    fn log_likelihood(stats: &ClassStats, row: &[f64]) -> f64 {
        let mut ll = stats.prior_ln;
        for ((&v, &m), &var) in row.iter().zip(&stats.means).zip(&stats.vars) {
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + (v - m) * (v - m) / var);
        }
        ll
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        validate_fit_inputs(x, y);
        let n = x.rows();
        self.classes = Some([
            GaussianNb::class_stats(x, y, 0.0, n),
            GaussianNb::class_stats(x, y, 1.0, n),
        ]);
    }

    fn score_one(&self, row: &[f64]) -> f64 {
        let Some(classes) = self.classes.as_ref() else {
            // fairem: allow(panic) — documented fit-before-score contract on Classifier
            panic!("GaussianNb used before fit")
        };
        let ll0 = GaussianNb::log_likelihood(&classes[0], row);
        let ll1 = GaussianNb::log_likelihood(&classes[1], row);
        // Posterior via the log-sum-exp trick.
        let max = ll0.max(ll1);
        let e0 = (ll0 - max).exp();
        let e1 = (ll1 - max).exp();
        e1 / (e0 + e1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussians() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let j = (i % 5) as f64 * 0.03;
            rows.push(vec![0.2 + j, 0.3 - j]);
            y.push(0.0);
            rows.push(vec![0.8 - j, 0.7 + j]);
            y.push(1.0);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn separates_gaussian_classes() {
        let (x, y) = gaussians();
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        let acc = (0..x.rows())
            .filter(|&r| (m.score_one(x.row(r)) >= 0.5) == (y[r] == 1.0))
            .count() as f64
            / x.rows() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn posterior_sums_to_one_implicitly() {
        let (x, y) = gaussians();
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        let s = m.score_one(&[0.5, 0.5]);
        assert!((0.0..=1.0).contains(&s));
        // Point nearer class 1 mean gets higher posterior.
        assert!(m.score_one(&[0.8, 0.7]) > m.score_one(&[0.2, 0.3]));
    }

    #[test]
    fn handles_single_class_training() {
        let x = Matrix::from_rows(&[vec![0.5], vec![0.6], vec![0.7]]);
        let y = vec![1.0, 1.0, 1.0];
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        // Missing negative class: smoothed prior keeps posterior finite,
        // and positive inputs should still be scored as matches.
        let s = m.score_one(&[0.6]);
        assert!(s.is_finite());
        assert!(s > 0.5, "{s}");
    }

    #[test]
    fn variance_floor_prevents_degenerate_density() {
        // Constant feature within a class.
        let x = Matrix::from_rows(&[vec![0.5], vec![0.5], vec![0.9], vec![0.9]]);
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        let s = m.score_one(&[0.9]);
        assert!(s.is_finite() && s > 0.5);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let m = GaussianNb::new();
        let _ = m.score_one(&[0.0]);
    }
}
