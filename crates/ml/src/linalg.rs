//! Small dense linear algebra: linear-system solving for the regression
//! models (normal equations with ridge regularization).

// Index-based loops are the clearest idiom for these dense kernels.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;

/// Error for singular / ill-posed linear systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
///
/// `a` is consumed as a dense square matrix; `b` is the right-hand side.
///
/// # Panics
/// If `a` is not square or dimensions disagree with `b`.
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>, SingularMatrix> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs length must match matrix size");
    for col in 0..n {
        // Partial pivot: find the largest magnitude entry at/below the diagonal.
        let mut pivot = col;
        let mut best = a.get(col, col).abs();
        for r in (col + 1)..n {
            let v = a.get(r, col).abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-12 {
            return Err(SingularMatrix);
        }
        if pivot != col {
            for c in 0..n {
                let tmp = a.get(col, c);
                a.set(col, c, a.get(pivot, c));
                a.set(pivot, c, tmp);
            }
            b.swap(col, pivot);
        }
        let diag = a.get(col, col);
        for r in (col + 1)..n {
            let factor = a.get(r, col) / diag;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = a.get(r, c) - factor * a.get(col, c);
                a.set(r, c, v);
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut s = b[r];
        for c in (r + 1)..n {
            s -= a.get(r, c) * x[c];
        }
        x[r] = s / a.get(r, r);
    }
    Ok(x)
}

/// Solve the ridge-regularized normal equations
/// `(XᵀX + λI) w = Xᵀ y` for least-squares weights.
///
/// `x` should already include a bias column if an intercept is wanted.
pub fn ridge_normal_equations(
    x: &Matrix,
    y: &[f64],
    lambda: f64,
) -> Result<Vec<f64>, SingularMatrix> {
    assert_eq!(x.rows(), y.len(), "rows and targets must align");
    let d = x.cols();
    let mut xtx = Matrix::zeros(d, d);
    for r in 0..x.rows() {
        let row = x.row(r);
        for i in 0..d {
            let xi = row[i];
            if xi == 0.0 {
                continue;
            }
            for j in i..d {
                let v = xtx.get(i, j) + xi * row[j];
                xtx.set(i, j, v);
            }
        }
    }
    // Mirror the upper triangle and add the ridge.
    for i in 0..d {
        for j in (i + 1)..d {
            let v = xtx.get(i, j);
            xtx.set(j, i, v);
        }
        let v = xtx.get(i, i) + lambda;
        xtx.set(i, i, v);
    }
    let mut xty = vec![0.0; d];
    for r in 0..x.rows() {
        let row = x.row(r);
        let t = y[r];
        if t == 0.0 {
            continue;
        }
        for i in 0..d {
            xty[i] += row[i] * t;
        }
    }
    solve(xtx, xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(solve(a, vec![1.0, 2.0]).unwrap_err(), SingularMatrix);
    }

    #[test]
    fn ridge_recovers_linear_relationship() {
        // y = 2*x0 - 1*x1 + 0.5, with a bias column appended.
        let raw = [
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (1.0, 1.0),
            (0.5, 0.25),
            (0.2, 0.9),
        ];
        let rows: Vec<Vec<f64>> = raw.iter().map(|&(a, b)| vec![a, b, 1.0]).collect();
        let y: Vec<f64> = raw.iter().map(|&(a, b)| 2.0 * a - b + 0.5).collect();
        let x = Matrix::from_rows(&rows);
        let w = ridge_normal_equations(&x, &y, 1e-9).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6, "{w:?}");
        assert!((w[1] + 1.0).abs() < 1e-6, "{w:?}");
        assert!((w[2] - 0.5).abs() < 1e-6, "{w:?}");
    }

    #[test]
    fn ridge_shrinks_weights() {
        let rows = vec![vec![1.0, 1.0], vec![2.0, 2.0 + 1e-9], vec![3.0, 3.0]];
        let x = Matrix::from_rows(&rows);
        let y = vec![1.0, 2.0, 3.0];
        // Nearly collinear columns: tiny ridge keeps it solvable.
        let w = ridge_normal_equations(&x, &y, 1e-3).unwrap();
        assert!(w.iter().all(|v| v.abs() < 10.0), "{w:?}");
    }
}
