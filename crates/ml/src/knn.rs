//! k-nearest-neighbors classifier (an extra matcher beyond the Magellan
//! six, useful as an ensemble member and in tests).

use crate::matrix::Matrix;
use crate::{validate_fit_inputs, Classifier};

/// k-NN with Euclidean distance; the score is the fraction of positive
/// neighbors, distance-weighted.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    x: Option<Matrix>,
    y: Vec<f64>,
}

impl KnnClassifier {
    /// Create an untrained classifier with `k` neighbors.
    pub fn new(k: usize) -> KnnClassifier {
        assert!(k >= 1, "k must be at least 1");
        KnnClassifier {
            k,
            x: None,
            y: Vec::new(),
        }
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        validate_fit_inputs(x, y);
        self.x = Some(x.clone());
        self.y = y.to_vec();
    }

    fn score_one(&self, row: &[f64]) -> f64 {
        let Some(x) = self.x.as_ref() else {
            // fairem: allow(panic) — documented fit-before-score contract on Classifier
            panic!("KnnClassifier used before fit")
        };
        let k = self.k.min(x.rows());
        // Collect (distance², label), partial-select the k smallest.
        let mut dists: Vec<(f64, f64)> = (0..x.rows())
            .map(|r| {
                let d2: f64 = x
                    .row(r)
                    .iter()
                    .zip(row)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d2, self.y[r])
            })
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbors = &dists[..k];
        // Inverse-distance weighting with an epsilon for exact hits.
        let mut num = 0.0;
        let mut den = 0.0;
        for &(d2, label) in neighbors {
            let w = 1.0 / (d2.sqrt() + 1e-9);
            num += w * label;
            den += w;
        }
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> (Matrix, Vec<f64>) {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![1.0, 1.0],
            vec![0.9, 1.0],
            vec![1.0, 0.9],
        ];
        let y = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn classifies_by_proximity() {
        let (x, y) = data();
        let mut m = KnnClassifier::new(3);
        m.fit(&x, &y);
        assert!(m.score_one(&[0.05, 0.05]) < 0.5);
        assert!(m.score_one(&[0.95, 0.95]) > 0.5);
    }

    #[test]
    fn exact_hit_dominates() {
        let (x, y) = data();
        let mut m = KnnClassifier::new(3);
        m.fit(&x, &y);
        let s = m.score_one(&[1.0, 1.0]);
        assert!(s > 0.99, "{s}");
    }

    #[test]
    fn k_larger_than_dataset_is_capped() {
        let (x, y) = data();
        let mut m = KnnClassifier::new(100);
        m.fit(&x, &y);
        let s = m.score_one(&[0.5, 0.5]);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let m = KnnClassifier::new(1);
        let _ = m.score_one(&[0.0]);
    }
}
