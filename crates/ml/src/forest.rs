//! Random forest (bagged CART trees with feature subsampling) — RFMatcher.

use fairem_par::{CancelToken, Interrupt};
use fairem_rng::rngs::StdRng;
use fairem_rng::seq::SliceRandom;
use fairem_rng::{Rng, SeedableRng};

use crate::matrix::Matrix;
use crate::tree::DecisionTree;
use crate::{validate_fit_inputs, Classifier};

/// A random forest: bootstrap-sampled trees over random feature subsets,
/// scoring by averaging leaf positive-rates.
#[derive(Debug, Clone)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Create an untrained forest of `n_trees` trees of height
    /// `max_depth`, seeded deterministically.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> RandomForest {
        assert!(n_trees >= 1, "forest needs at least one tree");
        RandomForest {
            n_trees,
            max_depth,
            seed,
            trees: Vec::new(),
        }
    }

    /// Number of trained trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        // An inert token never trips, so this cannot fail.
        let _ = self.fit_within(x, y, &CancelToken::inert());
    }

    /// One checkpoint per bagged tree. On interrupt the partial forest
    /// is discarded — a half-grown forest would score differently from
    /// the configured one.
    fn step_unit(&self) -> &'static str {
        "per-tree"
    }

    fn fit_within(&mut self, x: &Matrix, y: &[f64], token: &CancelToken) -> Result<(), Interrupt> {
        validate_fit_inputs(x, y);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = x.rows();
        let d = x.cols();
        // sqrt(d) features per tree, the standard classification default.
        let m = ((d as f64).sqrt().round() as usize).clamp(1, d);
        self.trees = Vec::with_capacity(self.n_trees);
        let all_features: Vec<usize> = (0..d).collect();
        for _ in 0..self.n_trees {
            if let Err(i) = token.checkpoint() {
                self.trees.clear();
                return Err(i);
            }
            let boot: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let mut feats = all_features.clone();
            feats.shuffle(&mut rng);
            feats.truncate(m);
            let xb = x.select_rows(&boot);
            let yb: Vec<f64> = boot.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTree::new(self.max_depth, 2).with_feature_subset(feats);
            tree.fit(&xb, &yb);
            self.trees.push(tree);
        }
        Ok(())
    }

    fn score_one(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "RandomForest used before fit");
        let total: f64 = self.trees.iter().map(|t| t.score_one(row)).sum();
        total / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> (Matrix, Vec<f64>) {
        // Two Gaussian-ish blobs on a deterministic lattice.
        let mut rows = Vec::with_capacity(2 * n);
        let mut y = Vec::with_capacity(2 * n);
        for i in 0..n {
            let jitter = (i % 7) as f64 * 0.02;
            rows.push(vec![0.2 + jitter, 0.25 - jitter, 0.3]);
            y.push(0.0);
            rows.push(vec![0.8 - jitter, 0.75 + jitter, 0.7]);
            y.push(1.0);
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs(40);
        let mut f = RandomForest::new(20, 4, 3);
        f.fit(&x, &y);
        assert_eq!(f.n_trees(), 20);
        let acc = (0..x.rows())
            .filter(|&r| (f.score_one(x.row(r)) >= 0.5) == (y[r] == 1.0))
            .count() as f64
            / x.rows() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(20);
        let mut a = RandomForest::new(10, 3, 99);
        let mut b = RandomForest::new(10, 3, 99);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for r in 0..x.rows() {
            assert_eq!(a.score_one(x.row(r)), b.score_one(x.row(r)));
        }
    }

    #[test]
    fn scores_average_trees_into_unit_interval() {
        let (x, y) = blobs(10);
        let mut f = RandomForest::new(7, 2, 1);
        f.fit(&x, &y);
        for r in 0..x.rows() {
            let s = f.score_one(x.row(r));
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let f = RandomForest::new(3, 2, 0);
        let _ = f.score_one(&[0.0]);
    }

    #[test]
    fn step_budget_cuts_growth_per_tree_and_discards_the_partial_forest() {
        use fairem_par::{Budget, CancelCause};
        let (x, y) = blobs(20);
        let mut f = RandomForest::new(20, 3, 7);
        let token = CancelToken::with_budget(Budget::steps(5));
        let i = f.fit_within(&x, &y, &token).expect_err("5 < 20 trees");
        assert_eq!(i.cause, CancelCause::StepLimit);
        assert_eq!(i.steps, 5, "exactly five trees were grown before the cut");
        assert_eq!(f.n_trees(), 0, "partial forest must be discarded");
    }
}
