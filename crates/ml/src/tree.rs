//! CART decision tree with Gini impurity — the DTMatcher model.

use crate::matrix::Matrix;
use crate::{validate_fit_inputs, Classifier};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Fraction of positive examples in this leaf (the match score).
        positive_rate: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A binary CART decision tree trained with Gini impurity.
///
/// Leaves output the positive-class fraction of their training examples,
/// so scores are piecewise-constant probabilities.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples_split: usize,
    root: Option<Node>,
    /// Restrict candidate split features to this set (used by the forest).
    feature_subset: Option<Vec<usize>>,
}

impl DecisionTree {
    /// Create an untrained tree.
    ///
    /// `max_depth` bounds tree height (1 = a stump); `min_samples_split`
    /// is the minimum node size eligible for splitting.
    pub fn new(max_depth: usize, min_samples_split: usize) -> DecisionTree {
        assert!(max_depth >= 1, "max_depth must be at least 1");
        assert!(
            min_samples_split >= 2,
            "min_samples_split must be at least 2"
        );
        DecisionTree {
            max_depth,
            min_samples_split,
            root: None,
            feature_subset: None,
        }
    }

    /// Restrict split search to a feature subset (random-forest use).
    pub fn with_feature_subset(mut self, subset: Vec<usize>) -> DecisionTree {
        self.feature_subset = Some(subset);
        self
    }

    /// Number of leaves (0 before training) — useful for tests/diagnostics.
    pub fn n_leaves(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    fn build(&self, x: &Matrix, y: &[f64], idx: &mut [usize], depth: usize) -> Node {
        let n = idx.len();
        let positives: f64 = idx.iter().map(|&i| y[i]).sum();
        let positive_rate = positives / n as f64;
        let pure = positive_rate == 0.0 || positive_rate == 1.0;
        if depth >= self.max_depth || n < self.min_samples_split || pure {
            return Node::Leaf { positive_rate };
        }
        let Some((feature, threshold)) = self.best_split(x, y, idx) else {
            return Node::Leaf { positive_rate };
        };
        // Partition indices in place around the threshold.
        let mut mid = 0;
        for i in 0..n {
            if x.get(idx[i], feature) <= threshold {
                idx.swap(i, mid);
                mid += 1;
            }
        }
        if mid == 0 || mid == n {
            return Node::Leaf { positive_rate };
        }
        let (left_idx, right_idx) = idx.split_at_mut(mid);
        let left = self.build(x, y, left_idx, depth + 1);
        let right = self.build(x, y, right_idx, depth + 1);
        Node::Split {
            feature,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Exhaustive best split by Gini gain over candidate features.
    fn best_split(&self, x: &Matrix, y: &[f64], idx: &[usize]) -> Option<(usize, f64)> {
        let n = idx.len() as f64;
        let total_pos: f64 = idx.iter().map(|&i| y[i]).sum();
        let features: Vec<usize> = match &self.feature_subset {
            Some(s) => s.clone(),
            None => (0..x.cols()).collect(),
        };
        // (feature, threshold, weighted gini, balance). Ties on gini are
        // broken toward the more balanced split — without this, plateaus
        // like XOR pick degenerate one-off splits and stall.
        let mut best: Option<(usize, f64, f64, f64)> = None;
        // Reusable sort buffer of (value, label).
        let mut vals: Vec<(f64, f64)> = Vec::with_capacity(idx.len());
        for f in features {
            vals.clear();
            vals.extend(idx.iter().map(|&i| (x.get(i, f), y[i])));
            vals.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut left_n = 0.0;
            let mut left_pos = 0.0;
            for w in 0..vals.len() - 1 {
                left_n += 1.0;
                left_pos += vals[w].1;
                // Only split between distinct values.
                if vals[w].0 == vals[w + 1].0 {
                    continue;
                }
                let right_n = n - left_n;
                let right_pos = total_pos - left_pos;
                let gini = |cnt: f64, pos: f64| {
                    if cnt == 0.0 {
                        0.0
                    } else {
                        let p = pos / cnt;
                        2.0 * p * (1.0 - p)
                    }
                };
                let weighted =
                    left_n / n * gini(left_n, left_pos) + right_n / n * gini(right_n, right_pos);
                let threshold = 0.5 * (vals[w].0 + vals[w + 1].0);
                let balance = left_n.min(right_n);
                let better = match best {
                    None => true,
                    Some((_, _, g, bal)) => {
                        weighted < g - 1e-12 || ((weighted - g).abs() <= 1e-12 && balance > bal)
                    }
                };
                if better {
                    best = Some((f, threshold, weighted, balance));
                }
            }
        }
        best.map(|(f, t, _, _)| (f, t))
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        validate_fit_inputs(x, y);
        let mut idx: Vec<usize> = (0..x.rows()).collect();
        self.root = Some(self.build(x, y, &mut idx, 0));
    }

    fn score_one(&self, row: &[f64]) -> f64 {
        let Some(mut node) = self.root.as_ref() else {
            // fairem: allow(panic) — documented fit-before-score contract on Classifier
            panic!("DecisionTree used before fit")
        };
        loop {
            match node {
                Node::Leaf { positive_rate } => return *positive_rate,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<f64>) {
        // XOR is not linearly separable; a depth-2 tree nails it.
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.1, 0.1],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
            vec![0.9, 0.9],
        ];
        let y = vec![0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0];
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(3, 2);
        t.fit(&x, &y);
        #[allow(clippy::needless_range_loop)]
        for r in 0..x.rows() {
            let s = t.score_one(x.row(r));
            assert_eq!(s >= 0.5, y[r] == 1.0, "row {r} score {s}");
        }
        assert!(t.n_leaves() >= 3);
    }

    #[test]
    fn depth_one_is_a_stump() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(1, 2);
        t.fit(&x, &y);
        assert!(t.n_leaves() <= 2);
    }

    #[test]
    fn pure_node_stops_early() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![1.0, 1.0, 1.0];
        let mut t = DecisionTree::new(5, 2);
        t.fit(&x, &y);
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.score_one(&[9.0]), 1.0);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let mut t = DecisionTree::new(5, 2);
        t.fit(&x, &y);
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.score_one(&[1.0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let t = DecisionTree::new(2, 2);
        let _ = t.score_one(&[0.0]);
    }

    #[test]
    fn feature_subset_restricts_splits() {
        let (x, y) = xor_data();
        // Only feature 0 allowed: cannot learn XOR.
        let mut t = DecisionTree::new(3, 2).with_feature_subset(vec![0]);
        t.fit(&x, &y);
        let wrong = (0..x.rows())
            .filter(|&r| (t.score_one(x.row(r)) >= 0.5) != (y[r] == 1.0))
            .count();
        assert!(wrong > 0, "single-feature tree should fail XOR");
    }
}
