//! Linear SVM trained with Pegasos (primal stochastic sub-gradient
//! descent) — SVMMatcher.

use fairem_par::{CancelToken, Interrupt};
use fairem_rng::rngs::StdRng;
use fairem_rng::{Rng, SeedableRng};

use crate::matrix::Matrix;
use crate::{validate_fit_inputs, Classifier};

/// Linear soft-margin SVM (hinge loss, L2 regularization) trained with
/// the Pegasos algorithm. Match scores squash the signed margin through
/// a logistic link (a fixed Platt-style calibration).
#[derive(Debug, Clone)]
pub struct LinearSvm {
    lambda: f64,
    epochs: usize,
    seed: u64,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LinearSvm {
    /// Create an untrained SVM. `lambda` is the regularization strength,
    /// `epochs` the number of passes, `seed` drives example sampling.
    pub fn new(lambda: f64, epochs: usize, seed: u64) -> LinearSvm {
        assert!(lambda > 0.0, "lambda must be positive");
        assert!(epochs >= 1, "need at least one epoch");
        LinearSvm {
            lambda,
            epochs,
            seed,
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }

    /// Signed margin `wᵀx + b` for a feature row.
    pub fn margin(&self, row: &[f64]) -> f64 {
        assert!(self.fitted, "LinearSvm used before fit");
        self.bias
            + row
                .iter()
                .zip(&self.weights)
                .map(|(a, w)| a * w)
                .sum::<f64>()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        // An inert token never trips, so this cannot fail.
        let _ = self.fit_within(x, y, &CancelToken::inert());
    }

    /// One checkpoint per Pegasos pass (every `n` sub-gradient steps).
    fn step_unit(&self) -> &'static str {
        "per-pass"
    }

    fn fit_within(&mut self, x: &Matrix, y: &[f64], token: &CancelToken) -> Result<(), Interrupt> {
        validate_fit_inputs(x, y);
        let n = x.rows();
        let d = x.cols();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        self.fitted = false;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total_steps = self.epochs * n;
        for t in 1..=total_steps {
            if (t - 1) % n == 0 {
                token.checkpoint()?;
            }
            let i = rng.gen_range(0..n);
            let row = x.row(i);
            let target = if y[i] == 1.0 { 1.0 } else { -1.0 };
            let eta = 1.0 / (self.lambda * t as f64);
            let margin = self.bias
                + row
                    .iter()
                    .zip(&self.weights)
                    .map(|(a, w)| a * w)
                    .sum::<f64>();
            // Regularization shrink (weights only; bias unregularized).
            let shrink = 1.0 - eta * self.lambda;
            for w in self.weights.iter_mut() {
                *w *= shrink;
            }
            if target * margin < 1.0 {
                for (w, &xi) in self.weights.iter_mut().zip(row) {
                    *w += eta * target * xi;
                }
                self.bias += eta * target;
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn score_one(&self, row: &[f64]) -> f64 {
        let m = self.margin(row);
        // Fixed logistic link: margin 0 → 0.5, margin ±2 → ~0.88/0.12.
        1.0 / (1.0 + (-2.0 * m).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band_data() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let v = i as f64 / 60.0;
            let noise = ((i * 13) % 7) as f64 * 0.01;
            rows.push(vec![v + noise, 0.5 - v]);
            y.push(if v > 0.5 { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_linear_separator() {
        let (x, y) = band_data();
        let mut m = LinearSvm::new(0.01, 100, 5);
        m.fit(&x, &y);
        let acc = (0..x.rows())
            .filter(|&r| (m.score_one(x.row(r)) >= 0.5) == (y[r] == 1.0))
            .count() as f64
            / x.rows() as f64;
        assert!(acc >= 0.9, "accuracy {acc}");
    }

    #[test]
    fn margins_have_correct_sign() {
        let (x, y) = band_data();
        let mut m = LinearSvm::new(0.01, 200, 5);
        m.fit(&x, &y);
        assert!(m.margin(&[1.0, -0.5]) > 0.0);
        assert!(m.margin(&[0.0, 0.5]) < 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = band_data();
        let mut a = LinearSvm::new(0.01, 50, 42);
        let mut b = LinearSvm::new(0.01, 50, 42);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn scores_bounded() {
        let (x, y) = band_data();
        let mut m = LinearSvm::new(0.1, 20, 1);
        m.fit(&x, &y);
        for r in 0..x.rows() {
            let s = m.score_one(x.row(r));
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn margin_before_fit_panics() {
        let m = LinearSvm::new(0.1, 10, 0);
        let _ = m.margin(&[0.0]);
    }

    #[test]
    fn step_budget_cuts_training_per_pass() {
        use fairem_par::{Budget, CancelCause};
        let (x, y) = band_data();
        let mut m = LinearSvm::new(0.01, 100, 5);
        let token = CancelToken::with_budget(Budget::steps(2));
        let i = m.fit_within(&x, &y, &token).expect_err("2 < 100 passes");
        assert_eq!(i.cause, CancelCause::StepLimit);
        assert_eq!(i.steps, 2, "exactly two passes completed");
        assert!(!m.fitted);
    }
}
