//! k-fold cross-validation utilities for model selection.

use fairem_rng::rngs::StdRng;
use fairem_rng::seq::SliceRandom;
use fairem_rng::SeedableRng;

use crate::matrix::Matrix;
use crate::metrics::f1_score;
use crate::Classifier;

/// Deterministic k-fold split: returns `k` (train, test) index pairs
/// partitioning `0..n`.
///
/// # Panics
/// If `k < 2` or `k > n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(k <= n, "k cannot exceed the sample count");
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let test: Vec<usize> = order.iter().copied().skip(f).step_by(k).collect();
        let test_set: std::collections::HashSet<usize> = test.iter().copied().collect();
        let train: Vec<usize> = order
            .iter()
            .copied()
            .filter(|i| !test_set.contains(i))
            .collect();
        folds.push((train, test));
    }
    folds
}

/// Cross-validated F1 of a model factory at a decision threshold:
/// trains a fresh model per fold and returns the per-fold scores.
pub fn cross_val_f1(
    make_model: impl Fn() -> Box<dyn Classifier>,
    x: &Matrix,
    y: &[f64],
    k: usize,
    threshold: f64,
    seed: u64,
) -> Vec<f64> {
    assert_eq!(x.rows(), y.len(), "features and labels must align");
    let folds = kfold_indices(x.rows(), k, seed);
    folds
        .into_iter()
        .map(|(train, test)| {
            let xt = x.select_rows(&train);
            let yt: Vec<f64> = train.iter().map(|&i| y[i]).collect();
            let mut model = make_model();
            model.fit(&xt, &yt);
            let preds: Vec<bool> = test
                .iter()
                .map(|&i| model.score_one(x.row(i)) >= threshold)
                .collect();
            let truths: Vec<bool> = test.iter().map(|&i| y[i] == 1.0).collect();
            f1_score(&preds, &truths)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecisionTree;

    #[test]
    fn folds_partition_the_range() {
        let folds = kfold_indices(25, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..25).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 25);
            assert!(train.iter().all(|i| !test.contains(i)));
        }
    }

    #[test]
    fn folds_are_deterministic() {
        assert_eq!(kfold_indices(10, 2, 7), kfold_indices(10, 2, 7));
        assert_ne!(kfold_indices(10, 2, 7), kfold_indices(10, 2, 8));
    }

    #[test]
    fn cross_val_scores_a_learnable_problem() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64 / 60.0, 1.0 - i as f64 / 60.0])
            .collect();
        let y: Vec<f64> = (0..60).map(|i| f64::from(i >= 30)).collect();
        let x = Matrix::from_rows(&rows);
        let scores = cross_val_f1(|| Box::new(DecisionTree::new(3, 2)), &x, &y, 4, 0.5, 1);
        assert_eq!(scores.len(), 4);
        for s in scores {
            assert!(s.is_nan() || s > 0.8, "fold f1 {s}");
        }
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_single_fold() {
        let _ = kfold_indices(10, 1, 0);
    }
}
