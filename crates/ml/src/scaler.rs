//! Feature standardization (zero mean, unit variance).

use crate::matrix::Matrix;

/// A fitted standardizer: `z = (x - mean) / std` per column.
/// Columns with zero variance pass through unshifted-scale (std treated
/// as 1) so constant features do not explode.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit column statistics on a training matrix.
    ///
    /// # Panics
    /// If `x` has no rows.
    pub fn fit(x: &Matrix) -> StandardScaler {
        assert!(x.rows() > 0, "cannot fit scaler on empty matrix");
        let d = x.cols();
        let n = x.rows() as f64;
        let mut means = vec![0.0; d];
        for r in 0..x.rows() {
            for (m, &v) in means.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        means.iter_mut().for_each(|m| *m /= n);
        let mut stds = vec![0.0; d];
        for r in 0..x.rows() {
            for ((s, &v), &m) in stds.iter_mut().zip(x.row(r)).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in stds.iter_mut() {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        StandardScaler { means, stds }
    }

    /// Transform a matrix out of place.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        self.transform_in_place(&mut out);
        out
    }

    /// Transform a matrix in place.
    pub fn transform_in_place(&self, x: &mut Matrix) {
        assert_eq!(x.cols(), self.means.len(), "column count mismatch");
        for r in 0..x.rows() {
            let row = x.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
            }
        }
    }

    /// Transform a single feature row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "column count mismatch");
        for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]);
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        for c in 0..2 {
            let mean: f64 = (0..3).map(|r| t.get(r, c)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            let var: f64 = (0..3).map(|r| t.get(r, c).powi(2)).sum::<f64>() / 3.0;
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_passes_through_centered() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0]]);
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(1, 0), 0.0);
    }

    #[test]
    fn row_transform_matches_matrix_transform() {
        let x = Matrix::from_rows(&[vec![1.0, 4.0], vec![3.0, 8.0]]);
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        let mut row = x.row(1).to_vec();
        sc.transform_row(&mut row);
        assert_eq!(row, t.row(1));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn transform_rejects_wrong_width() {
        let x = Matrix::from_rows(&[vec![1.0]]);
        let sc = StandardScaler::fit(&x);
        sc.transform_row(&mut [1.0, 2.0]);
    }
}
