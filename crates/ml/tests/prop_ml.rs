//! Property tests on the ML substrate: score ranges, scaler algebra,
//! metric bounds, calibration monotonicity, k-fold partitioning. Runs on
//! the in-workspace `fairem_rng::check` harness.

use fairem_ml::{
    accuracy, auc_roc, f1_score, kfold_indices, precision, recall, Classifier, DecisionTree,
    GaussianNb, IsotonicCalibrator, KnnClassifier, LinearRegression, LinearSvm, LogisticRegression,
    Matrix, PlattScaler, RandomForest, StandardScaler,
};
use fairem_rng::check::{cases, Gen};

fn gen_dataset(g: &mut Gen) -> (Matrix, Vec<f64>) {
    let n = g.usize_in(2, 30);
    let d = g.usize_in(1, 4);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| g.f64_in(-3.0, 3.0)).collect())
        .collect();
    let labels: Vec<f64> = (0..n).map(|_| f64::from(g.bool(0.5))).collect();
    (Matrix::from_rows(&rows), labels)
}

#[test]
fn every_model_scores_in_unit_interval() {
    cases(48, 0x3101, |g| {
        let (x, y) = gen_dataset(g);
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(DecisionTree::new(4, 2)),
            Box::new(RandomForest::new(5, 3, 1)),
            Box::new(LinearSvm::new(0.05, 5, 1)),
            Box::new(LogisticRegression::new(0.3, 20, 0.01)),
            Box::new(LinearRegression::new(1e-6)),
            Box::new(GaussianNb::new()),
            Box::new(KnnClassifier::new(3)),
        ];
        for mut m in models {
            m.fit(&x, &y);
            for r in 0..x.rows() {
                let s = m.score_one(x.row(r));
                assert!((0.0..=1.0).contains(&s), "score {s}");
            }
        }
    });
}

#[test]
fn scaler_transform_is_affine_invertible() {
    cases(48, 0x3102, |g| {
        let (x, _) = gen_dataset(g);
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        assert_eq!(t.rows(), x.rows());
        // Column means ~ 0 after transform (or exactly 0 for constants).
        for c in 0..t.cols() {
            let mean: f64 = (0..t.rows()).map(|r| t.get(r, c)).sum::<f64>() / t.rows() as f64;
            assert!(mean.abs() < 1e-6, "col {c} mean {mean}");
        }
    });
}

#[test]
fn metrics_are_bounded() {
    cases(48, 0x3103, |g| {
        let preds = g.vec_len(1, 40, |g| g.bool(0.5));
        let truths: Vec<bool> = preds.iter().map(|&p| p ^ g.bool(0.5)).collect();
        for v in [
            accuracy(&preds, &truths),
            precision(&preds, &truths),
            recall(&preds, &truths),
            f1_score(&preds, &truths),
        ] {
            assert!(v.is_nan() || (0.0..=1.0).contains(&v), "{v}");
        }
    });
}

#[test]
fn auc_is_invariant_to_monotone_score_transforms() {
    cases(48, 0x3104, |g| {
        let scores = g.vec_len(4, 30, Gen::unit_f64);
        let truths: Vec<bool> = scores.iter().map(|_| g.bool(0.5)).collect();
        let a = auc_roc(&scores, &truths);
        let squashed: Vec<f64> = scores.iter().map(|&s| s * s * 0.5).collect();
        let b = auc_roc(&squashed, &truths);
        if a.is_nan() {
            assert!(b.is_nan());
        } else {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    });
}

#[test]
fn platt_is_monotone_everywhere() {
    cases(48, 0x3105, |g| {
        let scores = g.vec_len(4, 40, Gen::unit_f64);
        let labels: Vec<f64> = scores.iter().map(|_| f64::from(g.bool(0.5))).collect();
        let p = PlattScaler::fit(&scores, &labels);
        let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let out: Vec<f64> = grid.iter().map(|&s| p.transform(s)).collect();
        let increasing = out.windows(2).all(|w| w[0] <= w[1] + 1e-12);
        let decreasing = out.windows(2).all(|w| w[0] >= w[1] - 1e-12);
        assert!(increasing || decreasing);
        assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
    });
}

#[test]
fn isotonic_output_is_monotone_and_bounded() {
    cases(48, 0x3106, |g| {
        let scores = g.vec_len(2, 40, Gen::unit_f64);
        let labels: Vec<f64> = scores.iter().map(|_| f64::from(g.bool(0.5))).collect();
        let iso = IsotonicCalibrator::fit(&scores, &labels);
        let mut prev = -1.0;
        for i in 0..=20 {
            let v = iso.transform(i as f64 / 20.0);
            assert!((0.0..=1.0).contains(&v));
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    });
}

#[test]
fn kfold_is_a_partition() {
    cases(48, 0x3107, |g| {
        let n = g.usize_in(4, 60);
        let k = g.usize_in(2, 5).min(n);
        let folds = kfold_indices(n, k, g.u64());
        let mut all: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    });
}
