//! Property tests on the ML substrate: score ranges, scaler algebra,
//! metric bounds, calibration monotonicity, k-fold partitioning.

use fairem_ml::{
    accuracy, auc_roc, f1_score, kfold_indices, precision, recall, Classifier, DecisionTree,
    GaussianNb, IsotonicCalibrator, KnnClassifier, LinearRegression, LinearSvm, LogisticRegression,
    Matrix, PlattScaler, RandomForest, StandardScaler,
};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (2usize..30, 1usize..4).prop_flat_map(|(n, d)| {
        (
            proptest::collection::vec(proptest::collection::vec(-3.0f64..3.0, d..=d), n..=n),
            proptest::collection::vec(prop_oneof![Just(0.0f64), Just(1.0f64)], n..=n),
        )
            .prop_map(|(rows, labels)| (Matrix::from_rows(&rows), labels))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_model_scores_in_unit_interval((x, y) in arb_dataset()) {
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(DecisionTree::new(4, 2)),
            Box::new(RandomForest::new(5, 3, 1)),
            Box::new(LinearSvm::new(0.05, 5, 1)),
            Box::new(LogisticRegression::new(0.3, 20, 0.01)),
            Box::new(LinearRegression::new(1e-6)),
            Box::new(GaussianNb::new()),
            Box::new(KnnClassifier::new(3)),
        ];
        for mut m in models {
            m.fit(&x, &y);
            for r in 0..x.rows() {
                let s = m.score_one(x.row(r));
                prop_assert!((0.0..=1.0).contains(&s), "score {s}");
            }
        }
    }

    #[test]
    fn scaler_transform_is_affine_invertible((x, _) in arb_dataset()) {
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        prop_assert_eq!(t.rows(), x.rows());
        // Column means ~ 0 after transform (or exactly 0 for constants).
        for c in 0..t.cols() {
            let mean: f64 = (0..t.rows()).map(|r| t.get(r, c)).sum::<f64>() / t.rows() as f64;
            prop_assert!(mean.abs() < 1e-6, "col {c} mean {mean}");
        }
    }

    #[test]
    fn metrics_are_bounded(preds in proptest::collection::vec(any::<bool>(), 1..40),
                           seed in any::<u64>()) {
        let truths: Vec<bool> = preds.iter().enumerate()
            .map(|(i, &p)| p ^ ((seed >> (i % 60)) & 1 == 1))
            .collect();
        for v in [accuracy(&preds, &truths), precision(&preds, &truths),
                  recall(&preds, &truths), f1_score(&preds, &truths)] {
            prop_assert!(v.is_nan() || (0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn auc_is_invariant_to_monotone_score_transforms(
        scores in proptest::collection::vec(0.0f64..1.0, 4..30),
        seed in any::<u64>(),
    ) {
        let truths: Vec<bool> = scores.iter().enumerate()
            .map(|(i, _)| (seed >> (i % 60)) & 1 == 1)
            .collect();
        let a = auc_roc(&scores, &truths);
        let squashed: Vec<f64> = scores.iter().map(|&s| s * s * 0.5).collect();
        let b = auc_roc(&squashed, &truths);
        if a.is_nan() {
            prop_assert!(b.is_nan());
        } else {
            prop_assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn platt_is_monotone_everywhere(
        scores in proptest::collection::vec(0.0f64..1.0, 4..40),
        seed in any::<u64>(),
    ) {
        let labels: Vec<f64> = scores.iter().enumerate()
            .map(|(i, _)| f64::from((seed >> (i % 60)) & 1 == 1))
            .collect();
        let p = PlattScaler::fit(&scores, &labels);
        let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let out: Vec<f64> = grid.iter().map(|&s| p.transform(s)).collect();
        let increasing = out.windows(2).all(|w| w[0] <= w[1] + 1e-12);
        let decreasing = out.windows(2).all(|w| w[0] >= w[1] - 1e-12);
        prop_assert!(increasing || decreasing);
        prop_assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn isotonic_output_is_monotone_and_bounded(
        scores in proptest::collection::vec(0.0f64..1.0, 2..40),
        seed in any::<u64>(),
    ) {
        let labels: Vec<f64> = scores.iter().enumerate()
            .map(|(i, _)| f64::from((seed >> (i % 60)) & 1 == 1))
            .collect();
        let iso = IsotonicCalibrator::fit(&scores, &labels);
        let mut prev = -1.0;
        for i in 0..=20 {
            let v = iso.transform(i as f64 / 20.0);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn kfold_is_a_partition(n in 4usize..60, k in 2usize..5, seed in any::<u64>()) {
        prop_assume!(k <= n);
        let folds = kfold_indices(n, k, seed);
        let mut all: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
