//! Robustness tests for the Lite neural matchers: class imbalance,
//! out-of-vocabulary inputs, degenerate attribute shapes.

use fairem_neural::{
    DeepMatcherLite, DittoLite, HashVocab, HierMatcherLite, McanLite, NeuralMatcher, TokenPair,
    TrainConfig,
};

fn vocab() -> HashVocab {
    HashVocab::new(128)
}

fn pair(v: &HashVocab, l: &str, r: &str) -> TokenPair {
    TokenPair {
        left: vec![v.encode_words(l)],
        right: vec![v.encode_words(r)],
    }
}

/// 1:9 imbalanced training set (EM's natural regime).
fn imbalanced(v: &HashVocab) -> (Vec<TokenPair>, Vec<f64>) {
    let names = [
        "wei li",
        "john smith",
        "ana garcia",
        "hans muller",
        "raj patel",
    ];
    let mut pairs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..100 {
        let n = names[i % names.len()];
        if i % 10 == 0 {
            pairs.push(pair(v, n, n));
            labels.push(1.0);
        } else {
            let other = names[(i + 1 + i % 3) % names.len()];
            pairs.push(pair(v, n, other));
            labels.push(0.0);
        }
    }
    (pairs, labels)
}

fn models() -> Vec<(&'static str, Box<dyn NeuralMatcher>)> {
    let cfg = TrainConfig::fast();
    vec![
        (
            "deepmatcher",
            Box::new(DeepMatcherLite::new(cfg)) as Box<dyn NeuralMatcher>,
        ),
        (
            "ditto",
            Box::new(DittoLite::new(TrainConfig { epochs: 15, ..cfg })),
        ),
        ("hiermatcher", Box::new(HierMatcherLite::new(cfg))),
        ("mcan", Box::new(McanLite::new(cfg))),
    ]
}

#[test]
fn all_models_survive_class_imbalance() {
    let v = vocab();
    let (pairs, labels) = imbalanced(&v);
    for (name, mut m) in models() {
        m.fit(&pairs, &labels);
        // The positive-weighting must keep recall alive: the duplicated
        // pairs should score above the mismatched ones on average.
        let pos: f64 = pairs
            .iter()
            .zip(&labels)
            .filter(|(_, &y)| y == 1.0)
            .map(|(p, _)| m.score(p))
            .sum::<f64>()
            / 10.0;
        let neg: f64 = pairs
            .iter()
            .zip(&labels)
            .filter(|(_, &y)| y == 0.0)
            .map(|(p, _)| m.score(p))
            .sum::<f64>()
            / 90.0;
        assert!(pos > neg + 0.1, "{name}: pos {pos} vs neg {neg}");
    }
}

#[test]
fn oov_tokens_score_without_panicking() {
    let v = vocab();
    let (pairs, labels) = imbalanced(&v);
    for (name, mut m) in models() {
        m.fit(&pairs, &labels);
        // Entirely unseen tokens (hashing maps them to shared buckets).
        let unseen = pair(&v, "zyx qwv", "zyx qwv");
        let s = m.score(&unseen);
        assert!((0.0..=1.0).contains(&s), "{name}: {s}");
        // Empty attribute values use the reserved empty marker.
        let empty = pair(&v, "", "");
        let s = m.score(&empty);
        assert!((0.0..=1.0).contains(&s), "{name} empty: {s}");
    }
}

#[test]
fn single_token_attributes_work() {
    let v = vocab();
    let mk = |l: &str, r: &str| pair(&v, l, r);
    let pairs = vec![
        mk("li", "li"),
        mk("li", "smith"),
        mk("smith", "smith"),
        mk("smith", "li"),
        mk("garcia", "garcia"),
        mk("garcia", "muller"),
        mk("muller", "muller"),
        mk("muller", "garcia"),
    ];
    let labels = vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
    for (name, mut m) in models() {
        m.fit(&pairs, &labels);
        let acc = pairs
            .iter()
            .zip(&labels)
            .filter(|(p, &y)| (m.score(p) >= 0.5) == (y == 1.0))
            .count();
        assert!(acc >= 6, "{name}: {acc}/8");
    }
}

#[test]
fn score_all_matches_individual_scores() {
    let v = vocab();
    let (pairs, labels) = imbalanced(&v);
    let mut m = DeepMatcherLite::new(TrainConfig::fast());
    m.fit(&pairs, &labels);
    let batch = m.score_all(&pairs[..5]);
    for (i, p) in pairs[..5].iter().enumerate() {
        assert_eq!(batch[i], m.score(p));
    }
}
