//! Dense 2-D `f32` tensors — the value type flowing through the autograd
//! graph. Vectors are represented as `1×n` (row) or `n×1` (column).

/// A dense row-major 2-D tensor of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// If the buffer length is not `rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "flat buffer size mismatch");
        Tensor { rows, cols, data }
    }

    /// A `1×n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Tensor {
        let n = data.len();
        Tensor {
            rows: 1,
            cols: n,
            data,
        }
    }

    /// A `1×1` scalar tensor.
    pub fn scalar(v: f32) -> Tensor {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    /// The single element of a `1×1` tensor.
    ///
    /// # Panics
    /// If the tensor is not `1×1`.
    pub fn item(&self) -> f32 {
        assert!(
            self.rows == 1 && self.cols == 1,
            "item() on non-scalar tensor"
        );
        self.data[0]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// If inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product with the second operand transposed: `self · otherᵀ`.
    ///
    /// # Panics
    /// If `self.cols != other.cols`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let dot: f32 = arow.iter().zip(brow).map(|(a, b)| a * b).sum();
                out.row_mut(i)[j] = dot;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.get(r, c);
            }
        }
        out
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_flat(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(0), &[1., 2., 3.]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_flat(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::from_flat(2, 2, vec![5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_t_equals_matmul_of_transpose() {
        let a = Tensor::from_flat(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_flat(4, 3, (0..12).map(|i| i as f32).collect());
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_flat(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn scalar_and_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn item_rejects_matrices() {
        let _ = Tensor::zeros(2, 2).item();
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::row_vector(vec![1., 2.]);
        a.add_assign(&Tensor::row_vector(vec![3., 4.]));
        a.scale_assign(2.0);
        assert_eq!(a.data, vec![8., 12.]);
        assert!((Tensor::row_vector(vec![3., 4.]).norm() - 5.0).abs() < 1e-6);
    }
}
