//! # fairem-neural
//!
//! Neural-network substrate for FairEM360's four neural matchers
//! (paper §2.2: DeepMatcher, Ditto, HierMatcher, MCAN).
//!
//! The original systems are PyTorch models over pretrained language
//! models; this crate substitutes from-scratch *Lite* architectures that
//! mirror each design's structure — attribute summarize-and-compare
//! (DeepMatcher), serialized-sequence encoding with attention pooling
//! (Ditto), hierarchical token→attribute alignment (HierMatcher), and
//! multi-context attention with gated fusion (MCAN) — trained end-to-end
//! with a reverse-mode tape autograd implemented here.
//!
//! Components:
//! - [`tensor::Tensor`] — dense 2-D `f32` tensors.
//! - [`graph::Graph`] — define-by-run autograd tape with the op set the
//!   Lite models need (matmul, attention softmax, embedding lookup, ...).
//! - [`params::ParamStore`] / [`params::Adam`] — parameter storage and
//!   the Adam optimizer.
//! - [`token`] — deterministic hashing vocabulary for token ids.
//! - [`models`] — the four Lite matcher architectures behind the
//!   [`models::NeuralMatcher`] trait.

pub mod graph;
pub mod models;
pub mod params;
pub mod tensor;
pub mod token;

pub use graph::Graph;
pub use models::{
    DeepMatcherLite, DittoLite, HierMatcherLite, McanLite, NeuralMatcher, TokenPair, TrainConfig,
};
pub use params::{Adam, ParamStore};
pub use tensor::Tensor;
pub use token::HashVocab;
