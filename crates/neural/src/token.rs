//! Deterministic hashing vocabulary.
//!
//! The Lite models map word tokens to embedding rows via the hashing
//! trick (FNV-1a modulo a fixed vocabulary size). This avoids building a
//! dictionary, handles out-of-vocabulary tokens at inference uniformly,
//! and — unlike `std`'s `DefaultHasher` — is stable across runs and
//! platforms, keeping training deterministic.

/// A fixed-size hashing vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashVocab {
    size: u32,
}

/// Number of ids reserved at the front of the vocabulary for special
/// tokens (e.g. attribute separators). Hashed tokens never collide with
/// reserved ids.
pub const RESERVED_TOKENS: u32 = 8;

impl HashVocab {
    /// Create a vocabulary with `size` total ids (including the
    /// [`RESERVED_TOKENS`] specials).
    ///
    /// # Panics
    /// If `size` does not exceed the reserved range.
    pub fn new(size: u32) -> HashVocab {
        assert!(size > RESERVED_TOKENS, "vocab must exceed reserved range");
        HashVocab { size }
    }

    /// Total number of ids (the embedding table height to allocate).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Map a token string to an id in `[RESERVED_TOKENS, size)`.
    pub fn id(&self, token: &str) -> u32 {
        RESERVED_TOKENS + fnv1a(token.as_bytes()) % (self.size - RESERVED_TOKENS)
    }

    /// A reserved special-token id.
    ///
    /// # Panics
    /// If `k >= RESERVED_TOKENS`.
    pub fn special(&self, k: u32) -> u32 {
        assert!(k < RESERVED_TOKENS, "only {RESERVED_TOKENS} specials exist");
        k
    }

    /// Map a full string to ids via lowercase word tokens; empty strings
    /// produce the single special id 0 (an "empty" marker) so every
    /// attribute has at least one token.
    pub fn encode_words(&self, text: &str) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::new();
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                for lc in ch.to_lowercase() {
                    cur.push(lc);
                }
            } else if !cur.is_empty() {
                ids.push(self.id(&cur));
                cur.clear();
            }
        }
        if !cur.is_empty() {
            ids.push(self.id(&cur));
        }
        if ids.is_empty() {
            ids.push(self.special(0));
        }
        ids
    }

    /// Encode a cell whose word tokens were already interned upstream:
    /// `word_ids` are the cell's tokens (occurrence order) as interner
    /// ids, and `codes[interned_id]` must hold `self.id(token_string)`
    /// for that interned token (build it once per vocabulary with
    /// [`HashVocab::id`] over the interner's strings).
    ///
    /// Token splitting in [`HashVocab::encode_words`] is byte-for-byte
    /// the word tokenizer the interner consumed, so this produces the
    /// exact `encode_words` output — including the empty-cell marker
    /// (no tokens → the single special id 0) — without re-tokenizing.
    pub fn encode_interned(&self, word_ids: &[u32], codes: &[u32]) -> Vec<u32> {
        if word_ids.is_empty() {
            return vec![self.special(0)];
        }
        word_ids.iter().map(|&id| codes[id as usize]).collect()
    }
}

/// FNV-1a over bytes (32-bit).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_in_range() {
        let v = HashVocab::new(256);
        let a = v.id("smith");
        assert_eq!(a, v.id("smith"));
        assert!((RESERVED_TOKENS..256).contains(&a));
    }

    #[test]
    fn specials_are_disjoint_from_hashed() {
        let v = HashVocab::new(64);
        for token in ["a", "b", "zz", "smith", "wang"] {
            assert!(v.id(token) >= RESERVED_TOKENS);
        }
        assert_eq!(v.special(3), 3);
    }

    #[test]
    fn encode_words_tokenizes_and_handles_empty() {
        let v = HashVocab::new(128);
        let ids = v.encode_words("Li, Wei");
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], v.id("li"));
        assert_eq!(ids[1], v.id("wei"));
        assert_eq!(v.encode_words(""), vec![0]);
        assert_eq!(v.encode_words("--"), vec![0]);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xe40c292c.
        assert_eq!(fnv1a(b""), 0x811c9dc5);
        assert_eq!(fnv1a(b"a"), 0xe40c292c);
    }

    #[test]
    #[should_panic(expected = "exceed reserved")]
    fn tiny_vocab_rejected() {
        let _ = HashVocab::new(4);
    }

    #[test]
    #[should_panic(expected = "specials exist")]
    fn special_out_of_range() {
        let v = HashVocab::new(64);
        let _ = v.special(99);
    }
}
