//! DeepMatcher-Lite: attribute summarize-and-compare.
//!
//! Mirrors the *attribute-summarization* design of Mudgal et al.'s
//! DeepMatcher (SIGMOD'18): each attribute's token embeddings are
//! summarized into a fixed vector per side, the two sides are compared
//! elementwise, and a classifier consumes the concatenated per-attribute
//! comparison vectors.

use fairem_rng::rngs::StdRng;
use fairem_rng::SeedableRng;

use crate::graph::{Graph, NodeId};
use crate::params::ParamStore;

use super::{
    compare, train_loop, validate_training_inputs, MlpHead, NeuralMatcher, TokenPair, TrainConfig,
};

#[derive(Debug, Clone)]
struct Arch {
    embedding: usize,
    head: MlpHead,
    n_attrs: usize,
}

impl Arch {
    fn forward_logit(&self, g: &mut Graph, store: &ParamStore, pair: &TokenPair) -> NodeId {
        let table = g.param(store, self.embedding);
        let mut comps = Vec::with_capacity(self.n_attrs);
        for k in 0..self.n_attrs {
            let el = g.embed(table, &pair.left[k]);
            let el = g.mean_rows(el);
            let er = g.embed(table, &pair.right[k]);
            let er = g.mean_rows(er);
            comps.push(compare(g, el, er));
        }
        let features = g.concat_cols(&comps);
        self.head.forward(g, store, features)
    }
}

/// DeepMatcher-Lite model (see module docs).
#[derive(Debug)]
pub struct DeepMatcherLite {
    config: TrainConfig,
    store: ParamStore,
    arch: Option<Arch>,
}

impl DeepMatcherLite {
    /// Create an untrained model.
    pub fn new(config: TrainConfig) -> DeepMatcherLite {
        DeepMatcherLite {
            config,
            store: ParamStore::new(),
            arch: None,
        }
    }
}

impl NeuralMatcher for DeepMatcherLite {
    fn fit(&mut self, pairs: &[TokenPair], labels: &[f64]) {
        // An inert token never trips, so this cannot fail.
        let _ = self.fit_within(pairs, labels, &fairem_par::CancelToken::inert());
    }

    /// One checkpoint per training step; an interrupted fit leaves the
    /// model untrained (the partly-updated parameters are discarded).
    fn step_unit(&self) -> &'static str {
        "per-example"
    }

    fn fit_within(
        &mut self,
        pairs: &[TokenPair],
        labels: &[f64],
        token: &fairem_par::CancelToken,
    ) -> Result<(), fairem_par::Interrupt> {
        let n_attrs = validate_training_inputs(pairs, labels);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut store = ParamStore::new();
        let embedding = store.add_xavier(
            "embedding",
            self.config.vocab_size as usize,
            self.config.embed_dim,
            &mut rng,
        );
        let input_dim = 2 * self.config.embed_dim * n_attrs;
        let head = MlpHead::init(&mut store, "head", input_dim, self.config.hidden, &mut rng);
        let arch = Arch {
            embedding,
            head,
            n_attrs,
        };
        train_loop(
            &mut store,
            &self.config,
            pairs,
            labels,
            token,
            |g, s, pair, target| {
                let logit = arch.forward_logit(g, s, pair);
                g.bce_with_logit(logit, target)
            },
        )?;
        self.store = store;
        self.arch = Some(arch);
        Ok(())
    }

    fn score(&self, pair: &TokenPair) -> f64 {
        let Some(arch) = self.arch.as_ref() else {
            // fairem: allow(panic) — documented fit-before-score contract on the model API
            panic!("DeepMatcherLite used before fit")
        };
        assert_eq!(
            pair.n_attrs(),
            arch.n_attrs,
            "attribute count changed since fit"
        );
        let mut g = Graph::new();
        let logit = arch.forward_logit(&mut g, &self.store, pair);
        let prob = g.sigmoid(logit);
        g.value(prob).item() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{assert_learns, synthetic_pairs};
    use crate::token::HashVocab;

    #[test]
    fn learns_synthetic_matching() {
        let mut m = DeepMatcherLite::new(TrainConfig::fast());
        assert_learns(&mut m, 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let vocab = HashVocab::new(128);
        let (pairs, labels) = synthetic_pairs(40, &vocab);
        let mut a = DeepMatcherLite::new(TrainConfig::fast());
        let mut b = DeepMatcherLite::new(TrainConfig::fast());
        a.fit(&pairs, &labels);
        b.fit(&pairs, &labels);
        for p in &pairs {
            assert_eq!(a.score(p), b.score(p));
        }
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let m = DeepMatcherLite::new(TrainConfig::fast());
        let _ = m.score(&TokenPair {
            left: vec![vec![0]],
            right: vec![vec![0]],
        });
    }

    #[test]
    #[should_panic(expected = "attribute count changed")]
    fn score_checks_attr_count() {
        let vocab = HashVocab::new(128);
        let (pairs, labels) = synthetic_pairs(10, &vocab);
        let mut m = DeepMatcherLite::new(TrainConfig::fast());
        m.fit(&pairs, &labels);
        let _ = m.score(&TokenPair {
            left: vec![vec![0]],
            right: vec![vec![0]],
        });
    }
}
