//! HierMatcher-Lite: hierarchical token→attribute→record matching.
//!
//! Mirrors Fu et al.'s HierMatcher (IJCAI'21): tokens of each attribute
//! on one side attend over the tokens of the *other* side (cross-record
//! token alignment), the aligned comparisons are pooled per attribute,
//! and attribute-level vectors are aggregated into a record-level
//! representation for classification. Unlike DeepMatcher-Lite's blind
//! per-side summarization, token-level alignment lets the model tolerate
//! token-order and surface-form variation inside attributes.

use fairem_rng::rngs::StdRng;
use fairem_rng::SeedableRng;

use crate::graph::{Graph, NodeId};
use crate::params::ParamStore;

use super::{
    cross_attend, train_loop, validate_training_inputs, MlpHead, NeuralMatcher, TokenPair,
    TrainConfig,
};

#[derive(Debug, Clone)]
struct Arch {
    embedding: usize,
    head: MlpHead,
    n_attrs: usize,
}

impl Arch {
    /// Align-and-compare one direction: each token of `a` attends over
    /// `b`; pooled mean of `|eₐ − attended|` → `1×D`.
    fn aligned_comparison(&self, g: &mut Graph, ea: NodeId, eb: NodeId) -> NodeId {
        let attended = cross_attend(g, ea, eb); // T×D
        let diff = g.sub(ea, attended);
        let diff = g.abs(diff);
        g.mean_rows(diff) // 1×D
    }

    fn forward_logit(&self, g: &mut Graph, store: &ParamStore, pair: &TokenPair) -> NodeId {
        let table = g.param(store, self.embedding);
        let mut attr_vecs = Vec::with_capacity(self.n_attrs);
        for k in 0..self.n_attrs {
            let el = g.embed(table, &pair.left[k]);
            let er = g.embed(table, &pair.right[k]);
            let lr = self.aligned_comparison(g, el, er);
            let rl = self.aligned_comparison(g, er, el);
            // Symmetric attribute vector: average of both directions.
            let sum = g.add(lr, rl);
            attr_vecs.push(g.scale(sum, 0.5));
        }
        let record = g.concat_cols(&attr_vecs); // 1×(D·K)
        self.head.forward(g, store, record)
    }
}

/// HierMatcher-Lite model (see module docs).
#[derive(Debug)]
pub struct HierMatcherLite {
    config: TrainConfig,
    store: ParamStore,
    arch: Option<Arch>,
}

impl HierMatcherLite {
    /// Create an untrained model.
    pub fn new(config: TrainConfig) -> HierMatcherLite {
        HierMatcherLite {
            config,
            store: ParamStore::new(),
            arch: None,
        }
    }
}

impl NeuralMatcher for HierMatcherLite {
    fn fit(&mut self, pairs: &[TokenPair], labels: &[f64]) {
        // An inert token never trips, so this cannot fail.
        let _ = self.fit_within(pairs, labels, &fairem_par::CancelToken::inert());
    }

    /// One checkpoint per training step; an interrupted fit leaves the
    /// model untrained (the partly-updated parameters are discarded).
    fn step_unit(&self) -> &'static str {
        "per-example"
    }

    fn fit_within(
        &mut self,
        pairs: &[TokenPair],
        labels: &[f64],
        token: &fairem_par::CancelToken,
    ) -> Result<(), fairem_par::Interrupt> {
        let n_attrs = validate_training_inputs(pairs, labels);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(2));
        let mut store = ParamStore::new();
        let embedding = store.add_xavier(
            "embedding",
            self.config.vocab_size as usize,
            self.config.embed_dim,
            &mut rng,
        );
        let head = MlpHead::init(
            &mut store,
            "head",
            self.config.embed_dim * n_attrs,
            self.config.hidden,
            &mut rng,
        );
        let arch = Arch {
            embedding,
            head,
            n_attrs,
        };
        train_loop(
            &mut store,
            &self.config,
            pairs,
            labels,
            token,
            |g, s, pair, target| {
                let logit = arch.forward_logit(g, s, pair);
                g.bce_with_logit(logit, target)
            },
        )?;
        self.store = store;
        self.arch = Some(arch);
        Ok(())
    }

    fn score(&self, pair: &TokenPair) -> f64 {
        let Some(arch) = self.arch.as_ref() else {
            // fairem: allow(panic) — documented fit-before-score contract on the model API
            panic!("HierMatcherLite used before fit")
        };
        assert_eq!(
            pair.n_attrs(),
            arch.n_attrs,
            "attribute count changed since fit"
        );
        let mut g = Graph::new();
        let logit = arch.forward_logit(&mut g, &self.store, pair);
        let prob = g.sigmoid(logit);
        g.value(prob).item() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{assert_learns, synthetic_pairs};
    use crate::token::HashVocab;

    #[test]
    fn learns_synthetic_matching() {
        let mut m = HierMatcherLite::new(TrainConfig::fast());
        assert_learns(&mut m, 0.85);
    }

    #[test]
    fn token_order_invariance_from_alignment() {
        // Train, then check that flipping token order within an attribute
        // barely changes the score (alignment should absorb it).
        let vocab = HashVocab::new(128);
        let (pairs, labels) = synthetic_pairs(60, &vocab);
        let mut m = HierMatcherLite::new(TrainConfig::fast());
        m.fit(&pairs, &labels);
        let a = vocab.encode_words("wei li");
        let b = vocab.encode_words("li wei");
        let affil = vocab.encode_words("uic");
        let straight = TokenPair {
            left: vec![a.clone(), affil.clone()],
            right: vec![a.clone(), affil.clone()],
        };
        let flipped = TokenPair {
            left: vec![a, affil.clone()],
            right: vec![b, affil],
        };
        let ds = m.score(&straight);
        let df = m.score(&flipped);
        assert!(
            (ds - df).abs() < 0.2,
            "alignment should tolerate order: {ds} vs {df}"
        );
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let m = HierMatcherLite::new(TrainConfig::fast());
        let _ = m.score(&TokenPair {
            left: vec![vec![0]],
            right: vec![vec![0]],
        });
    }
}
