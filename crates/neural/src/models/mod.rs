//! The four neural matcher architectures (Lite reproductions of
//! DeepMatcher, Ditto, HierMatcher and MCAN) plus the shared training
//! machinery.
//!
//! Each model consumes [`TokenPair`]s — a record pair tokenized per
//! attribute into hashing-vocabulary ids — and is trained end-to-end with
//! binary cross-entropy through the tape autograd in [`crate::graph`].

mod deepmatcher;
mod ditto;
mod hiermatcher;
mod mcan;

pub use deepmatcher::DeepMatcherLite;
pub use ditto::DittoLite;
pub use hiermatcher::HierMatcherLite;
pub use mcan::McanLite;

use fairem_rng::rngs::StdRng;
use fairem_rng::seq::SliceRandom;
use fairem_rng::SeedableRng;

use crate::graph::{Graph, NodeId};
use crate::params::{Adam, ParamStore};

/// A tokenized record pair: `left[k]` / `right[k]` hold the token ids of
/// attribute `k`. Both sides must have the same number of attributes, and
/// every attribute has at least one token (the vocabulary's empty marker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenPair {
    /// Token ids per attribute of the left record.
    pub left: Vec<Vec<u32>>,
    /// Token ids per attribute of the right record.
    pub right: Vec<Vec<u32>>,
}

impl TokenPair {
    /// Number of attributes (validated equal on both sides).
    ///
    /// # Panics
    /// If the two sides have different attribute counts.
    pub fn n_attrs(&self) -> usize {
        assert_eq!(
            self.left.len(),
            self.right.len(),
            "attribute count mismatch"
        );
        self.left.len()
    }
}

/// Hyperparameters shared by all Lite models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Embedding-table height (hashing vocabulary size).
    pub vocab_size: u32,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Hidden width of the classification MLP.
    pub hidden: usize,
    /// Training passes over the data.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            vocab_size: 512,
            embed_dim: 12,
            hidden: 16,
            epochs: 8,
            lr: 0.02,
            seed: 7,
        }
    }
}

impl TrainConfig {
    /// A smaller, faster configuration for unit tests.
    pub fn fast() -> TrainConfig {
        TrainConfig {
            vocab_size: 128,
            embed_dim: 8,
            hidden: 8,
            epochs: 5,
            lr: 0.05,
            seed: 7,
        }
    }
}

/// A trainable neural entity matcher over tokenized pairs.
pub trait NeuralMatcher {
    /// Train on pairs with 0/1 labels.
    ///
    /// # Panics
    /// If inputs are empty, lengths disagree, labels are not 0/1, or the
    /// pairs have inconsistent attribute counts.
    fn fit(&mut self, pairs: &[TokenPair], labels: &[f64]);

    /// Cancellable [`NeuralMatcher::fit`]: polls `token` once per
    /// training step (one example forward/backward/Adam update) and
    /// bails with the [`fairem_par::Interrupt`] record when it trips,
    /// leaving the model unfitted. With an untripped token this is
    /// bit-for-bit `fit`. All four Lite models override this; the
    /// default checkpoints once and trains atomically.
    fn fit_within(
        &mut self,
        pairs: &[TokenPair],
        labels: &[f64],
        token: &fairem_par::CancelToken,
    ) -> Result<(), fairem_par::Interrupt> {
        token.checkpoint()?;
        self.fit(pairs, labels);
        Ok(())
    }

    /// The checkpoint granularity of [`NeuralMatcher::fit_within`] as a
    /// human-readable unit, surfaced in observability span annotations.
    /// The default matches the default `fit_within`: one checkpoint,
    /// then an atomic fit. The Lite models override it to
    /// `"per-example"`, matching their per-step polling.
    fn step_unit(&self) -> &'static str {
        "per-fit"
    }

    /// Match score in `[0, 1]` for one pair.
    fn score(&self, pair: &TokenPair) -> f64;

    /// Scores for a batch of pairs.
    fn score_all(&self, pairs: &[TokenPair]) -> Vec<f64> {
        pairs.iter().map(|p| self.score(p)).collect()
    }
}

pub(crate) fn validate_training_inputs(pairs: &[TokenPair], labels: &[f64]) -> usize {
    assert!(!pairs.is_empty(), "cannot fit on an empty pair set");
    assert_eq!(pairs.len(), labels.len(), "pairs and labels must align");
    assert!(
        labels.iter().all(|&v| v == 0.0 || v == 1.0),
        "labels must be 0.0 or 1.0"
    );
    let n_attrs = pairs[0].n_attrs();
    assert!(n_attrs > 0, "pairs must have at least one attribute");
    for p in pairs {
        assert_eq!(p.n_attrs(), n_attrs, "inconsistent attribute counts");
    }
    n_attrs
}

/// Positive-class loss weight `min(n_neg / n_pos, 8)` to counter the
/// class imbalance inherent to EM workloads; 1.0 when a class is absent.
pub(crate) fn positive_weight(labels: &[f64]) -> f32 {
    let pos = labels.iter().filter(|&&v| v == 1.0).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        1.0
    } else {
        (neg as f32 / pos as f32).clamp(1.0, 8.0)
    }
}

/// Shared SGD loop: per-example forward/backward through `forward_loss`,
/// one Adam step per example, shuffled each epoch. Polls `token` before
/// every step — the finest checkpoint granularity in the suite, so even
/// a single-epoch fit on a large workload is cut within one example of
/// the deadline.
pub(crate) fn train_loop(
    store: &mut ParamStore,
    config: &TrainConfig,
    pairs: &[TokenPair],
    labels: &[f64],
    token: &fairem_par::CancelToken,
    mut forward_loss: impl FnMut(&mut Graph, &ParamStore, &TokenPair, f32) -> NodeId,
) -> Result<(), fairem_par::Interrupt> {
    let pos_w = positive_weight(labels);
    let mut opt = Adam::new(store, config.lr);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9);
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for &i in &order {
            token.checkpoint()?;
            let mut g = Graph::new();
            let target = labels[i] as f32;
            let loss = forward_loss(&mut g, store, &pairs[i], target);
            let loss = if target == 1.0 && pos_w > 1.0 {
                g.scale(loss, pos_w)
            } else {
                loss
            };
            let grads = g.backward(loss, store.len());
            opt.step(store, &grads);
        }
    }
    Ok(())
}

/// Two-layer MLP head: `logit = W₂·relu(x·W₁ + b₁) + b₂` for a `1×D` input.
#[derive(Debug, Clone)]
pub(crate) struct MlpHead {
    pub w1: usize,
    pub b1: usize,
    pub w2: usize,
    pub b2: usize,
}

impl MlpHead {
    pub(crate) fn init(
        store: &mut ParamStore,
        prefix: &str,
        input_dim: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> MlpHead {
        MlpHead {
            w1: store.add_xavier(format!("{prefix}.w1"), input_dim, hidden, rng),
            b1: store.add_zeros(format!("{prefix}.b1"), 1, hidden),
            w2: store.add_xavier(format!("{prefix}.w2"), hidden, 1, rng),
            b2: store.add_zeros(format!("{prefix}.b2"), 1, 1),
        }
    }

    /// Apply the head to a `1×D` node, returning the `1×1` logit node.
    pub(crate) fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w1 = g.param(store, self.w1);
        let b1 = g.param(store, self.b1);
        let w2 = g.param(store, self.w2);
        let b2 = g.param(store, self.b2);
        let h = g.matmul(x, w1);
        let h = g.add_row(h, b1);
        let h = g.relu(h);
        let out = g.matmul(h, w2);
        g.add_row(out, b2)
    }
}

/// Attention pooling of a `T×D` embedding block with a learned `D×1`
/// query: `softmax(E·q)ᵀ · E`, returning `1×D`.
pub(crate) fn attention_pool(g: &mut Graph, emb: NodeId, query: NodeId) -> NodeId {
    let scores = g.matmul(emb, query); // T×1
    let row = g.transpose(scores); // 1×T
    let alpha = g.softmax_rows(row); // 1×T
    g.matmul(alpha, emb) // 1×D
}

/// Cross-attention: every row of `a` (T×D) attends over `b` (S×D),
/// returning the attended `T×D` representation `softmax(a·bᵀ)·b`.
pub(crate) fn cross_attend(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let scores = g.matmul_t(a, b); // T×S
    let alpha = g.softmax_rows(scores);
    g.matmul(alpha, b)
}

/// Elementwise comparison vector `[|a−b| ; a⊙b]` of two `1×D` nodes → `1×2D`.
pub(crate) fn compare(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let diff = g.sub(a, b);
    let adiff = g.abs(diff);
    let prod = g.mul(a, b);
    g.concat_cols(&[adiff, prod])
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::token::HashVocab;

    /// Synthetic pair dataset: matching pairs share most name tokens,
    /// non-matching pairs don't. Two attributes (name, affiliation).
    pub fn synthetic_pairs(n: usize, vocab: &HashVocab) -> (Vec<TokenPair>, Vec<f64>) {
        let names = [
            "wei li",
            "li wei",
            "john smith",
            "jane doe",
            "hans muller",
            "maria garcia",
            "raj patel",
            "chen wang",
            "anna schmidt",
            "luo yang",
        ];
        let affils = ["uic", "rochester", "att labs", "tsinghua", "munich"];
        let mut pairs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let name = names[i % names.len()];
            let affil = affils[i % affils.len()];
            if i % 2 == 0 {
                // Match: same name (token order possibly flipped), same affil.
                pairs.push(TokenPair {
                    left: vec![vocab.encode_words(name), vocab.encode_words(affil)],
                    right: vec![vocab.encode_words(name), vocab.encode_words(affil)],
                });
                labels.push(1.0);
            } else {
                let other = names[(i + 3) % names.len()];
                let other_affil = affils[(i + 2) % affils.len()];
                pairs.push(TokenPair {
                    left: vec![vocab.encode_words(name), vocab.encode_words(affil)],
                    right: vec![vocab.encode_words(other), vocab.encode_words(other_affil)],
                });
                labels.push(0.0);
            }
        }
        (pairs, labels)
    }

    /// Train `m` on the synthetic set and assert train accuracy ≥ `min_acc`.
    pub fn assert_learns(m: &mut dyn NeuralMatcher, min_acc: f64) {
        let vocab = HashVocab::new(128);
        let (pairs, labels) = synthetic_pairs(80, &vocab);
        m.fit(&pairs, &labels);
        let correct = pairs
            .iter()
            .zip(&labels)
            .filter(|(p, &y)| (m.score(p) >= 0.5) == (y == 1.0))
            .count();
        let acc = correct as f64 / pairs.len() as f64;
        assert!(acc >= min_acc, "train accuracy {acc} < {min_acc}");
        for p in &pairs {
            let s = m.score(p);
            assert!((0.0..=1.0).contains(&s), "score out of range: {s}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_weight_balances() {
        assert_eq!(positive_weight(&[1.0, 0.0, 0.0, 0.0]), 3.0);
        assert_eq!(positive_weight(&[1.0, 1.0]), 1.0);
        assert_eq!(positive_weight(&[0.0, 0.0]), 1.0);
        // Clamped at 8.
        let mut labels = vec![0.0; 100];
        labels.push(1.0);
        assert_eq!(positive_weight(&labels), 8.0);
    }

    #[test]
    fn step_budget_cuts_training_per_example_and_leaves_model_unfitted() {
        use crate::token::HashVocab;
        use fairem_par::{Budget, CancelCause, CancelToken};
        let vocab = HashVocab::new(128);
        let (pairs, labels) = testutil::synthetic_pairs(40, &vocab);
        let mut m = DeepMatcherLite::new(TrainConfig::fast());
        let token = CancelToken::with_budget(Budget::steps(10));
        let i = m
            .fit_within(&pairs, &labels, &token)
            .expect_err("10 steps < 5 epochs x 40 examples");
        assert_eq!(i.cause, CancelCause::StepLimit);
        assert_eq!(i.steps, 10, "exactly ten examples were stepped");
        // The interrupted model never becomes scoreable.
        let r = std::panic::catch_unwind(|| m.score(&pairs[0]));
        assert!(r.is_err(), "interrupted model must not score");
    }

    #[test]
    fn fit_within_on_an_inert_token_matches_fit_bit_for_bit() {
        use crate::token::HashVocab;
        use fairem_par::CancelToken;
        let vocab = HashVocab::new(128);
        let (pairs, labels) = testutil::synthetic_pairs(30, &vocab);
        let mut plain = DittoLite::new(TrainConfig::fast());
        plain.fit(&pairs, &labels);
        let mut within = DittoLite::new(TrainConfig::fast());
        within
            .fit_within(&pairs, &labels, &CancelToken::inert())
            .expect("inert token");
        for p in &pairs {
            assert_eq!(plain.score(p).to_bits(), within.score(p).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "attribute count mismatch")]
    fn token_pair_validates_sides() {
        let p = TokenPair {
            left: vec![vec![1]],
            right: vec![vec![1], vec![2]],
        };
        let _ = p.n_attrs();
    }
}
