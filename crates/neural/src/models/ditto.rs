//! Ditto-Lite: serialized-sequence matching.
//!
//! Mirrors the *serialize-then-encode* design of Li et al.'s Ditto
//! (PVLDB'20): the record pair is flattened into one token sequence with
//! special separator tokens (`[COL]`-style attribute markers and a
//! `[SEP]` between the two records), encoded as embeddings, pooled with
//! learned attention (standing in for the pretrained transformer), and
//! classified from the pooled representation.

use fairem_rng::rngs::StdRng;
use fairem_rng::SeedableRng;

use crate::graph::{Graph, NodeId};
use crate::params::ParamStore;
use crate::token::RESERVED_TOKENS;

use super::{
    attention_pool, train_loop, validate_training_inputs, MlpHead, NeuralMatcher, TokenPair,
    TrainConfig,
};

/// Special id used as the `[COL]` attribute marker.
const COL: u32 = 1;
/// Special id used as the `[SEP]` record separator.
const SEP: u32 = 2;

#[derive(Debug, Clone)]
struct Arch {
    embedding: usize,
    query: usize,
    head: MlpHead,
    n_attrs: usize,
}

impl Arch {
    fn serialize(&self, pair: &TokenPair) -> Vec<u32> {
        let total: usize = pair
            .left
            .iter()
            .chain(pair.right.iter())
            .map(|a| a.len() + 1)
            .sum::<usize>()
            + 1;
        let mut seq = Vec::with_capacity(total);
        for attr in &pair.left {
            seq.push(COL);
            seq.extend_from_slice(attr);
        }
        seq.push(SEP);
        for attr in &pair.right {
            seq.push(COL);
            seq.extend_from_slice(attr);
        }
        seq
    }

    fn forward_logit(&self, g: &mut Graph, store: &ParamStore, pair: &TokenPair) -> NodeId {
        let seq = self.serialize(pair);
        let table = g.param(store, self.embedding);
        let emb = g.embed(table, &seq); // T×D
                                        // One self-attention interaction layer over the joint sequence —
                                        // the stand-in for Ditto's transformer encoder. The diagonal is
                                        // masked so a token must find support among the *other* tokens,
                                        // which is what lets the model notice cross-record agreement.
        let t = seq.len();
        let scores = g.matmul_t(emb, emb); // T×T
                                           // Sharpen: Xavier-scale embeddings give near-zero dot products at
                                           // init, which makes the masked softmax uniform and starves the
                                           // alignment signal of gradient; a fixed temperature fixes that.
        let scores = g.scale(scores, 8.0);
        let mut mask = crate::tensor::Tensor::zeros(t, t);
        for i in 0..t {
            mask.row_mut(i)[i] = -1e9;
        }
        let mask = g.input(mask);
        let masked = g.add(scores, mask);
        let alpha = g.softmax_rows(masked);
        let ctx = g.matmul(alpha, emb); // T×D: best non-self support per token
        let residual = g.sub(emb, ctx);
        let residual = g.abs(residual);
        let residual = g.mean_rows(residual); // 1×D alignment residual
        let q = g.param(store, self.query);
        let attended = attention_pool(g, emb, q); // 1×D
        let mean = g.mean_rows(emb); // 1×D
        let features = g.concat_cols(&[attended, mean, residual]); // 1×3D
        self.head.forward(g, store, features)
    }
}

/// Ditto-Lite model (see module docs).
#[derive(Debug)]
pub struct DittoLite {
    config: TrainConfig,
    store: ParamStore,
    arch: Option<Arch>,
}

impl DittoLite {
    /// Create an untrained model.
    ///
    /// # Panics
    /// If the configured vocabulary cannot hold the reserved specials.
    pub fn new(config: TrainConfig) -> DittoLite {
        assert!(
            config.vocab_size > RESERVED_TOKENS,
            "vocab too small for specials"
        );
        DittoLite {
            config,
            store: ParamStore::new(),
            arch: None,
        }
    }
}

impl NeuralMatcher for DittoLite {
    fn fit(&mut self, pairs: &[TokenPair], labels: &[f64]) {
        // An inert token never trips, so this cannot fail.
        let _ = self.fit_within(pairs, labels, &fairem_par::CancelToken::inert());
    }

    /// One checkpoint per training step; an interrupted fit leaves the
    /// model untrained (the partly-updated parameters are discarded).
    fn step_unit(&self) -> &'static str {
        "per-example"
    }

    fn fit_within(
        &mut self,
        pairs: &[TokenPair],
        labels: &[f64],
        token: &fairem_par::CancelToken,
    ) -> Result<(), fairem_par::Interrupt> {
        let n_attrs = validate_training_inputs(pairs, labels);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut store = ParamStore::new();
        let embedding = store.add_xavier(
            "embedding",
            self.config.vocab_size as usize,
            self.config.embed_dim,
            &mut rng,
        );
        let query = store.add_xavier("attn_query", self.config.embed_dim, 1, &mut rng);
        let head = MlpHead::init(
            &mut store,
            "head",
            3 * self.config.embed_dim,
            self.config.hidden,
            &mut rng,
        );
        let arch = Arch {
            embedding,
            query,
            head,
            n_attrs,
        };
        train_loop(
            &mut store,
            &self.config,
            pairs,
            labels,
            token,
            |g, s, pair, target| {
                let logit = arch.forward_logit(g, s, pair);
                g.bce_with_logit(logit, target)
            },
        )?;
        self.store = store;
        self.arch = Some(arch);
        Ok(())
    }

    fn score(&self, pair: &TokenPair) -> f64 {
        let Some(arch) = self.arch.as_ref() else {
            // fairem: allow(panic) — documented fit-before-score contract on the model API
            panic!("DittoLite used before fit")
        };
        assert_eq!(
            pair.n_attrs(),
            arch.n_attrs,
            "attribute count changed since fit"
        );
        let mut g = Graph::new();
        let logit = arch.forward_logit(&mut g, &self.store, pair);
        let prob = g.sigmoid(logit);
        g.value(prob).item() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{assert_learns, synthetic_pairs};
    use crate::token::HashVocab;

    #[test]
    fn learns_synthetic_matching() {
        // Ditto-Lite has no hand-built comparison features (the real
        // Ditto leans on its transformer for token interaction), so it
        // needs more epochs than the compare-style architectures.
        let mut m = DittoLite::new(TrainConfig {
            epochs: 20,
            ..TrainConfig::fast()
        });
        assert_learns(&mut m, 0.85);
    }

    #[test]
    fn serialization_interleaves_specials() {
        let arch = Arch {
            embedding: 0,
            query: 0,
            head: MlpHead {
                w1: 0,
                b1: 0,
                w2: 0,
                b2: 0,
            },
            n_attrs: 2,
        };
        let pair = TokenPair {
            left: vec![vec![10, 11], vec![12]],
            right: vec![vec![13], vec![14, 15]],
        };
        let seq = arch.serialize(&pair);
        assert_eq!(seq, vec![COL, 10, 11, COL, 12, SEP, COL, 13, COL, 14, 15]);
    }

    #[test]
    fn deterministic_given_seed() {
        let vocab = HashVocab::new(128);
        let (pairs, labels) = synthetic_pairs(30, &vocab);
        let mut a = DittoLite::new(TrainConfig::fast());
        let mut b = DittoLite::new(TrainConfig::fast());
        a.fit(&pairs, &labels);
        b.fit(&pairs, &labels);
        for p in &pairs {
            assert_eq!(a.score(p), b.score(p));
        }
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let m = DittoLite::new(TrainConfig::fast());
        let _ = m.score(&TokenPair {
            left: vec![vec![0]],
            right: vec![vec![0]],
        });
    }
}
