//! MCAN-Lite: multi-context attention with gated fusion.
//!
//! Mirrors Zhang et al.'s MCAN (WWW'20): each record side is encoded
//! under multiple attention contexts — a *self* context (learned-query
//! attention over the record's own tokens), a *cross* context (attention
//! over the other record's tokens) and a *global* context (mean pool) —
//! and a learned sigmoid gate fuses the self and cross views before the
//! two sides are compared and classified.

use fairem_rng::rngs::StdRng;
use fairem_rng::SeedableRng;

use crate::graph::{Graph, NodeId};
use crate::params::ParamStore;

use super::{
    attention_pool, compare, cross_attend, train_loop, validate_training_inputs, MlpHead,
    NeuralMatcher, TokenPair, TrainConfig,
};

#[derive(Debug, Clone)]
struct Arch {
    embedding: usize,
    self_query: usize,
    gate_w: usize,
    gate_b: usize,
    head: MlpHead,
    n_attrs: usize,
}

impl Arch {
    fn flatten(pair_side: &[Vec<u32>]) -> Vec<u32> {
        let total: usize = pair_side.iter().map(Vec::len).sum();
        let mut seq = Vec::with_capacity(total);
        for attr in pair_side {
            seq.extend_from_slice(attr);
        }
        seq
    }

    /// Encode one side against the other: returns the fused `1×2D`
    /// representation `[gate ⊙ self + (1−gate) ⊙ cross ; global]`.
    fn encode_side(&self, g: &mut Graph, store: &ParamStore, own: NodeId, other: NodeId) -> NodeId {
        let q = g.param(store, self.self_query);
        let self_ctx = attention_pool(g, own, q); // 1×D
        let crossed = cross_attend(g, own, other); // T×D
        let cross_ctx = g.mean_rows(crossed); // 1×D
        let global_ctx = g.mean_rows(own); // 1×D
                                           // Gate from all three contexts.
        let gate_in = g.concat_cols(&[self_ctx, cross_ctx, global_ctx]); // 1×3D
        let gw = g.param(store, self.gate_w);
        let gb = g.param(store, self.gate_b);
        let gate = g.matmul(gate_in, gw); // 1×D
        let gate = g.add_row(gate, gb);
        let gate = g.sigmoid(gate);
        let gated_self = g.mul(gate, self_ctx);
        let one = g.input(crate::tensor::Tensor::from_flat(
            1,
            g.value(gate).cols,
            vec![1.0; g.value(gate).cols],
        ));
        let inv_gate = g.sub(one, gate);
        let gated_cross = g.mul(inv_gate, cross_ctx);
        let fused = g.add(gated_self, gated_cross); // 1×D
        g.concat_cols(&[fused, global_ctx]) // 1×2D
    }

    fn forward_logit(&self, g: &mut Graph, store: &ParamStore, pair: &TokenPair) -> NodeId {
        let table = g.param(store, self.embedding);
        let left_seq = Arch::flatten(&pair.left);
        let right_seq = Arch::flatten(&pair.right);
        let el = g.embed(table, &left_seq);
        let er = g.embed(table, &right_seq);
        let repr_l = self.encode_side(g, store, el, er);
        let repr_r = self.encode_side(g, store, er, el);
        let features = compare(g, repr_l, repr_r); // 1×4D
        self.head.forward(g, store, features)
    }
}

/// MCAN-Lite model (see module docs).
#[derive(Debug)]
pub struct McanLite {
    config: TrainConfig,
    store: ParamStore,
    arch: Option<Arch>,
}

impl McanLite {
    /// Create an untrained model.
    pub fn new(config: TrainConfig) -> McanLite {
        McanLite {
            config,
            store: ParamStore::new(),
            arch: None,
        }
    }
}

impl NeuralMatcher for McanLite {
    fn fit(&mut self, pairs: &[TokenPair], labels: &[f64]) {
        // An inert token never trips, so this cannot fail.
        let _ = self.fit_within(pairs, labels, &fairem_par::CancelToken::inert());
    }

    /// One checkpoint per training step; an interrupted fit leaves the
    /// model untrained (the partly-updated parameters are discarded).
    fn step_unit(&self) -> &'static str {
        "per-example"
    }

    fn fit_within(
        &mut self,
        pairs: &[TokenPair],
        labels: &[f64],
        token: &fairem_par::CancelToken,
    ) -> Result<(), fairem_par::Interrupt> {
        let n_attrs = validate_training_inputs(pairs, labels);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(3));
        let mut store = ParamStore::new();
        let d = self.config.embed_dim;
        let embedding = store.add_xavier("embedding", self.config.vocab_size as usize, d, &mut rng);
        let self_query = store.add_xavier("self_query", d, 1, &mut rng);
        let gate_w = store.add_xavier("gate_w", 3 * d, d, &mut rng);
        let gate_b = store.add_zeros("gate_b", 1, d);
        let head = MlpHead::init(&mut store, "head", 4 * d, self.config.hidden, &mut rng);
        let arch = Arch {
            embedding,
            self_query,
            gate_w,
            gate_b,
            head,
            n_attrs,
        };
        train_loop(
            &mut store,
            &self.config,
            pairs,
            labels,
            token,
            |g, s, pair, target| {
                let logit = arch.forward_logit(g, s, pair);
                g.bce_with_logit(logit, target)
            },
        )?;
        self.store = store;
        self.arch = Some(arch);
        Ok(())
    }

    fn score(&self, pair: &TokenPair) -> f64 {
        let Some(arch) = self.arch.as_ref() else {
            // fairem: allow(panic) — documented fit-before-score contract on the model API
            panic!("McanLite used before fit")
        };
        assert_eq!(
            pair.n_attrs(),
            arch.n_attrs,
            "attribute count changed since fit"
        );
        let mut g = Graph::new();
        let logit = arch.forward_logit(&mut g, &self.store, pair);
        let prob = g.sigmoid(logit);
        g.value(prob).item() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{assert_learns, synthetic_pairs};
    use crate::token::HashVocab;

    #[test]
    fn learns_synthetic_matching() {
        let mut m = McanLite::new(TrainConfig::fast());
        assert_learns(&mut m, 0.85);
    }

    #[test]
    fn flatten_concatenates_attributes() {
        assert_eq!(Arch::flatten(&[vec![1, 2], vec![3]]), vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let vocab = HashVocab::new(128);
        let (pairs, labels) = synthetic_pairs(30, &vocab);
        let mut a = McanLite::new(TrainConfig::fast());
        let mut b = McanLite::new(TrainConfig::fast());
        a.fit(&pairs, &labels);
        b.fit(&pairs, &labels);
        for p in &pairs {
            assert_eq!(a.score(p), b.score(p));
        }
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let m = McanLite::new(TrainConfig::fast());
        let _ = m.score(&TokenPair {
            left: vec![vec![0]],
            right: vec![vec![0]],
        });
    }
}
