//! Parameter storage, initialization, and the Adam optimizer.

use fairem_rng::rngs::StdRng;
use fairem_rng::Rng;

use crate::tensor::Tensor;

/// Named storage for trainable parameters, addressed by dense ids.
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    values: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// Create an empty store.
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Register a parameter; returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> usize {
        self.values.push(value);
        self.names.push(name.into());
        self.values.len() - 1
    }

    /// Register a Xavier/Glorot-uniform initialized `rows×cols` parameter.
    pub fn add_xavier(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut StdRng,
    ) -> usize {
        let limit = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        self.add(name, Tensor::from_flat(rows, cols, data))
    }

    /// Register an all-zeros parameter (biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> usize {
        self.add(name, Tensor::zeros(rows, cols))
    }

    /// Number of parameters registered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters have been registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow a parameter value.
    pub fn value(&self, id: usize) -> &Tensor {
        &self.values[id]
    }

    /// Mutably borrow a parameter value.
    pub fn value_mut(&mut self, id: usize) -> &mut Tensor {
        &mut self.values[id]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Total number of scalar weights across all parameters.
    pub fn n_weights(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }
}

/// Adam optimizer state over a [`ParamStore`].
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Create optimizer state matching a store's parameter shapes, with
    /// the standard betas (0.9, 0.999).
    pub fn new(store: &ParamStore, lr: f32) -> Adam {
        assert!(lr > 0.0, "learning rate must be positive");
        let m = (0..store.len())
            .map(|i| Tensor::zeros(store.value(i).rows, store.value(i).cols))
            .collect::<Vec<_>>();
        let v = m.clone();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m,
            v,
        }
    }

    /// Apply one Adam update given per-parameter gradients (ids align
    /// with the store; `None` means zero gradient this step).
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Option<Tensor>]) {
        assert_eq!(
            grads.len(),
            store.len(),
            "gradient/parameter count mismatch"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (id, grad) in grads.iter().enumerate() {
            let Some(g) = grad else { continue };
            let m = &mut self.m[id];
            let v = &mut self.v[id];
            let w = store.value_mut(id);
            for ((wi, (&gi, mi)), vi) in w
                .data
                .iter_mut()
                .zip(g.data.iter().zip(m.data.iter_mut()))
                .zip(v.data.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let mhat = *mi / b1t;
                let vhat = *vi / b2t;
                *wi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_rng::SeedableRng;

    #[test]
    fn store_registration_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.add("w", Tensor::scalar(1.0));
        let b = s.add_zeros("b", 1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(a), "w");
        assert_eq!(s.value(b).cols, 3);
        assert_eq!(s.n_weights(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn xavier_respects_limit_and_seed() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = ParamStore::new();
        let id = s.add_xavier("w", 10, 10, &mut rng);
        let limit = (6.0f64 / 20.0).sqrt() as f32;
        assert!(s.value(id).data.iter().all(|v| v.abs() <= limit));
        // Same seed → same init.
        let mut rng2 = StdRng::seed_from_u64(3);
        let mut s2 = ParamStore::new();
        let id2 = s2.add_xavier("w", 10, 10, &mut rng2);
        assert_eq!(s.value(id), s2.value(id2));
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        // Minimize f(w) = (w - 3)² by feeding grad = 2(w - 3).
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::scalar(0.0));
        let mut opt = Adam::new(&s, 0.1);
        for _ in 0..500 {
            let w = s.value(id).item();
            let grad = Tensor::scalar(2.0 * (w - 3.0));
            opt.step(&mut s, &[Some(grad)]);
        }
        assert!((s.value(id).item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_skips_missing_gradients() {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::scalar(1.0));
        let b = s.add("b", Tensor::scalar(2.0));
        let mut opt = Adam::new(&s, 0.5);
        opt.step(&mut s, &[Some(Tensor::scalar(1.0)), None]);
        assert!(s.value(a).item() < 1.0);
        assert_eq!(s.value(b).item(), 2.0);
    }
}
