//! Define-by-run reverse-mode autograd over [`Tensor`]s.
//!
//! A [`Graph`] is a tape: every op appends a node holding its forward
//! value and enough structure to compute vector-Jacobian products in
//! reverse. Nodes only reference earlier nodes, so reverse index order is
//! a valid topological order for backpropagation. Parameters are leaves
//! tagged with their [`crate::params::ParamStore`] id; `backward`
//! returns the accumulated gradient per parameter id.

use crate::params::ParamStore;
use crate::tensor::Tensor;

/// Handle to a node in the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant input (no gradient).
    Input,
    /// Parameter leaf; gradient accumulates under this store id.
    Param(usize),
    /// `a · b`
    MatMul(usize, usize),
    /// `a · bᵀ`
    MatMulT(usize, usize),
    /// Elementwise `a + b` (same shape).
    Add(usize, usize),
    /// `a + row` where `row` is `1×C` broadcast over `a`'s rows.
    AddRow(usize, usize),
    /// Elementwise `a - b`.
    Sub(usize, usize),
    /// Elementwise `a ⊙ b`.
    Mul(usize, usize),
    /// `a * c` for a constant.
    Scale(usize, f32),
    /// Elementwise max(0, a).
    Relu(usize),
    /// Elementwise logistic sigmoid.
    Sigmoid(usize),
    /// Elementwise tanh.
    Tanh(usize),
    /// Elementwise |a|.
    Abs(usize),
    /// Transposed copy.
    Transpose(usize),
    /// Row-wise softmax.
    SoftmaxRows(usize),
    /// Mean over rows: `R×C → 1×C`.
    MeanRows(usize),
    /// Horizontal concatenation of same-row-count nodes.
    ConcatCols(Vec<usize>),
    /// Rows of a parameter embedding table selected by token ids.
    Embed { table: usize, ids: Vec<u32> },
    /// Binary cross-entropy with logits against a constant target; the
    /// node value is the scalar loss, and `sigmoid(logit)` is cached.
    BceLogit { logit: usize, target: f32 },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

/// A reverse-mode autodiff tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Create an empty tape.
    pub fn new() -> Graph {
        Graph::default()
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node { value, op });
        NodeId(self.nodes.len() - 1)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Add a constant input leaf.
    pub fn input(&mut self, t: Tensor) -> NodeId {
        self.push(t, Op::Input)
    }

    /// Add a parameter leaf: copies the current value from the store and
    /// remembers the id for gradient accumulation.
    pub fn param(&mut self, store: &ParamStore, id: usize) -> NodeId {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a.0, b.0))
    }

    /// `a · bᵀ`.
    pub fn matmul_t(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul_t(&self.nodes[b.0].value);
        self.push(v, Op::MatMulT(a.0, b.0))
    }

    /// Elementwise sum of two same-shape nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!((va.rows, va.cols), (vb.rows, vb.cols), "add shape mismatch");
        let mut v = va.clone();
        v.add_assign(vb);
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Broadcast-add a `1×C` row vector to every row of `a`.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (va, vr) = (&self.nodes[a.0].value, &self.nodes[row.0].value);
        assert_eq!(vr.rows, 1, "add_row expects a 1×C row vector");
        assert_eq!(va.cols, vr.cols, "add_row width mismatch");
        let mut v = va.clone();
        for r in 0..v.rows {
            for (x, &b) in v.row_mut(r).iter_mut().zip(&vr.data) {
                *x += b;
            }
        }
        self.push(v, Op::AddRow(a.0, row.0))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!((va.rows, va.cols), (vb.rows, vb.cols), "sub shape mismatch");
        let data = va.data.iter().zip(&vb.data).map(|(x, y)| x - y).collect();
        let v = Tensor::from_flat(va.rows, va.cols, data);
        self.push(v, Op::Sub(a.0, b.0))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (va, vb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!((va.rows, va.cols), (vb.rows, vb.cols), "mul shape mismatch");
        let data = va.data.iter().zip(&vb.data).map(|(x, y)| x * y).collect();
        let v = Tensor::from_flat(va.rows, va.cols, data);
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// Multiply by a constant.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let mut v = self.nodes[a.0].value.clone();
        v.scale_assign(c);
        self.push(v, Op::Scale(a.0, c))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let data = va.data.iter().map(|&x| x.max(0.0)).collect();
        let v = Tensor::from_flat(va.rows, va.cols, data);
        self.push(v, Op::Relu(a.0))
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let data = va.data.iter().map(|&x| stable_sigmoid(x)).collect();
        let v = Tensor::from_flat(va.rows, va.cols, data);
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let data = va.data.iter().map(|&x| x.tanh()).collect();
        let v = Tensor::from_flat(va.rows, va.cols, data);
        self.push(v, Op::Tanh(a.0))
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let data = va.data.iter().map(|&x| x.abs()).collect();
        let v = Tensor::from_flat(va.rows, va.cols, data);
        self.push(v, Op::Abs(a.0))
    }

    /// Transposed copy of a node.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.transpose();
        self.push(v, Op::Transpose(a.0))
    }

    /// Row-wise softmax (each row sums to 1).
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let mut v = va.clone();
        for r in 0..v.rows {
            let row = v.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        self.push(v, Op::SoftmaxRows(a.0))
    }

    /// Mean over rows, producing a `1×C` vector.
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a.0].value;
        let mut v = Tensor::zeros(1, va.cols);
        for r in 0..va.rows {
            for (o, &x) in v.data.iter_mut().zip(va.row(r)) {
                *o += x;
            }
        }
        let inv = 1.0 / va.rows as f32;
        v.scale_assign(inv);
        self.push(v, Op::MeanRows(a.0))
    }

    /// Concatenate nodes horizontally (all must share the row count).
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols needs at least one node");
        let rows = self.nodes[parts[0].0].value.rows;
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.cols).sum();
        let mut v = Tensor::zeros(rows, total);
        let mut offset = 0;
        for p in parts {
            let t = &self.nodes[p.0].value;
            assert_eq!(t.rows, rows, "concat_cols row mismatch");
            for r in 0..rows {
                v.row_mut(r)[offset..offset + t.cols].copy_from_slice(t.row(r));
            }
            offset += t.cols;
        }
        self.push(v, Op::ConcatCols(parts.iter().map(|p| p.0).collect()))
    }

    /// Look up embedding rows by token id from a parameter table node.
    ///
    /// # Panics
    /// If `ids` is empty or any id exceeds the table height.
    pub fn embed(&mut self, table: NodeId, ids: &[u32]) -> NodeId {
        assert!(!ids.is_empty(), "embed needs at least one token id");
        let t = &self.nodes[table.0].value;
        let mut v = Tensor::zeros(ids.len(), t.cols);
        for (r, &id) in ids.iter().enumerate() {
            let id = id as usize;
            assert!(id < t.rows, "token id {id} out of vocabulary ({})", t.rows);
            v.row_mut(r).copy_from_slice(t.row(id));
        }
        self.push(
            v,
            Op::Embed {
                table: table.0,
                ids: ids.to_vec(),
            },
        )
    }

    /// Binary cross-entropy loss on a `1×1` logit node against a 0/1
    /// target; returns a scalar loss node.
    pub fn bce_with_logit(&mut self, logit: NodeId, target: f32) -> NodeId {
        let z = self.nodes[logit.0].value.item();
        // Numerically stable: max(z,0) - z*t + ln(1 + e^{-|z|}).
        let loss = z.max(0.0) - z * target + (-z.abs()).exp().ln_1p();
        self.push(
            Tensor::scalar(loss),
            Op::BceLogit {
                logit: logit.0,
                target,
            },
        )
    }

    /// Backpropagate from a scalar node; returns per-parameter gradients
    /// indexed by parameter-store id (length `n_params`).
    ///
    /// # Panics
    /// If `root` is not `1×1`.
    pub fn backward(&self, root: NodeId, n_params: usize) -> Vec<Option<Tensor>> {
        let root_val = &self.nodes[root.0].value;
        assert!(
            root_val.rows == 1 && root_val.cols == 1,
            "backward needs a scalar root"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[root.0] = Some(Tensor::scalar(1.0));
        let mut param_grads: Vec<Option<Tensor>> = (0..n_params).map(|_| None).collect();

        for i in (0..=root.0).rev() {
            let Some(gy) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(pid) => accumulate_opt(&mut param_grads[*pid], &gy),
                Op::MatMul(a, b) => {
                    let va = &self.nodes[*a].value;
                    let vb = &self.nodes[*b].value;
                    // dA = gy · Bᵀ ; dB = Aᵀ · gy
                    let da = gy.matmul_t(vb);
                    let db = va.transpose().matmul(&gy);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::MatMulT(a, b) => {
                    let va = &self.nodes[*a].value;
                    let vb = &self.nodes[*b].value;
                    // y = A·Bᵀ → dA = gy·B ; dB = gyᵀ·A
                    let da = gy.matmul(vb);
                    let db = gy.transpose().matmul(va);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, gy.clone());
                    accumulate(&mut grads, *b, gy);
                }
                Op::AddRow(a, row) => {
                    // Row grad: column sums of gy.
                    let mut gr = Tensor::zeros(1, gy.cols);
                    for r in 0..gy.rows {
                        for (o, &x) in gr.data.iter_mut().zip(gy.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *a, gy);
                    accumulate(&mut grads, *row, gr);
                }
                Op::Sub(a, b) => {
                    let mut neg = gy.clone();
                    neg.scale_assign(-1.0);
                    accumulate(&mut grads, *a, gy);
                    accumulate(&mut grads, *b, neg);
                }
                Op::Mul(a, b) => {
                    let va = &self.nodes[*a].value;
                    let vb = &self.nodes[*b].value;
                    let da = elementwise(&gy, vb, |g, v| g * v);
                    let db = elementwise(&gy, va, |g, v| g * v);
                    accumulate(&mut grads, *a, da);
                    accumulate(&mut grads, *b, db);
                }
                Op::Scale(a, c) => {
                    let mut g = gy;
                    g.scale_assign(*c);
                    accumulate(&mut grads, *a, g);
                }
                Op::Relu(a) => {
                    let va = &self.nodes[*a].value;
                    let g = elementwise(&gy, va, |g, v| if v > 0.0 { g } else { 0.0 });
                    accumulate(&mut grads, *a, g);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let g = elementwise(&gy, y, |g, s| g * s * (1.0 - s));
                    accumulate(&mut grads, *a, g);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let g = elementwise(&gy, y, |g, t| g * (1.0 - t * t));
                    accumulate(&mut grads, *a, g);
                }
                Op::Abs(a) => {
                    let va = &self.nodes[*a].value;
                    let g = elementwise(&gy, va, |g, v| {
                        if v > 0.0 {
                            g
                        } else if v < 0.0 {
                            -g
                        } else {
                            0.0
                        }
                    });
                    accumulate(&mut grads, *a, g);
                }
                Op::Transpose(a) => {
                    accumulate(&mut grads, *a, gy.transpose());
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    // dX_r = (gy_r - (gy_r·y_r)) ⊙ y_r, rowwise.
                    let mut g = Tensor::zeros(y.rows, y.cols);
                    for r in 0..y.rows {
                        let yr = y.row(r);
                        let gr = gy.row(r);
                        let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                        for ((o, &yv), &gv) in g.row_mut(r).iter_mut().zip(yr).zip(gr) {
                            *o = (gv - dot) * yv;
                        }
                    }
                    accumulate(&mut grads, *a, g);
                }
                Op::MeanRows(a) => {
                    let va = &self.nodes[*a].value;
                    let inv = 1.0 / va.rows as f32;
                    let mut g = Tensor::zeros(va.rows, va.cols);
                    for r in 0..va.rows {
                        for (o, &x) in g.row_mut(r).iter_mut().zip(&gy.data) {
                            *o = x * inv;
                        }
                    }
                    accumulate(&mut grads, *a, g);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let t = &self.nodes[p].value;
                        let mut g = Tensor::zeros(t.rows, t.cols);
                        for r in 0..t.rows {
                            g.row_mut(r)
                                .copy_from_slice(&gy.row(r)[offset..offset + t.cols]);
                        }
                        offset += t.cols;
                        accumulate(&mut grads, p, g);
                    }
                }
                Op::Embed { table, ids } => {
                    let t = &self.nodes[*table].value;
                    let mut g = Tensor::zeros(t.rows, t.cols);
                    for (r, &id) in ids.iter().enumerate() {
                        let dst = g.row_mut(id as usize);
                        for (o, &x) in dst.iter_mut().zip(gy.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *table, g);
                }
                Op::BceLogit { logit, target } => {
                    let z = self.nodes[*logit].value.item();
                    let dz = (stable_sigmoid(z) - target) * gy.item();
                    accumulate(&mut grads, *logit, Tensor::scalar(dz));
                }
            }
        }
        param_grads
    }
}

fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn elementwise(g: &Tensor, v: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    debug_assert_eq!((g.rows, g.cols), (v.rows, v.cols));
    let data = g.data.iter().zip(&v.data).map(|(&a, &b)| f(a, b)).collect();
    Tensor::from_flat(g.rows, g.cols, data)
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: Tensor) {
    accumulate_opt(&mut grads[idx], &g);
}

fn accumulate_opt(slot: &mut Option<Tensor>, g: &Tensor) {
    match slot {
        Some(existing) => existing.add_assign(g),
        None => *slot = Some(g.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    /// Finite-difference gradient check for a scalar function of params.
    fn grad_check(store: &mut ParamStore, f: impl Fn(&mut Graph, &ParamStore) -> NodeId, tol: f32) {
        let n = store.len();
        // Analytic gradients.
        let mut g = Graph::new();
        let loss = f(&mut g, store);
        let analytic = g.backward(loss, n);
        // Numeric gradients per parameter element.
        let eps = 1e-3f32;
        #[allow(clippy::needless_range_loop)]
        for pid in 0..n {
            let len = store.value(pid).data.len();
            for e in 0..len {
                let orig = store.value(pid).data[e];
                store.value_mut(pid).data[e] = orig + eps;
                let mut g1 = Graph::new();
                let l1 = f(&mut g1, store);
                let f1 = g1.value(l1).item();
                store.value_mut(pid).data[e] = orig - eps;
                let mut g2 = Graph::new();
                let l2 = f(&mut g2, store);
                let f2 = g2.value(l2).item();
                store.value_mut(pid).data[e] = orig;
                let numeric = (f1 - f2) / (2.0 * eps);
                let ana = analytic[pid].as_ref().map_or(0.0, |t| t.data[e]);
                assert!(
                    (numeric - ana).abs() < tol * (1.0 + numeric.abs().max(ana.abs())),
                    "param {pid} elem {e}: numeric {numeric} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn gradcheck_linear_sigmoid_bce() {
        let mut store = ParamStore::new();
        let w = store.add(
            "w",
            Tensor::from_flat(3, 2, vec![0.1, -0.2, 0.3, 0.05, -0.4, 0.25]),
        );
        let b = store.add("b", Tensor::row_vector(vec![0.02, -0.03]));
        let v = store.add("v", Tensor::from_flat(2, 1, vec![0.5, -0.6]));
        let x = Tensor::row_vector(vec![0.7, -0.1, 0.4]);
        grad_check(
            &mut store,
            move |g, s| {
                let xin = g.input(x.clone());
                let wp = g.param(s, w);
                let bp = g.param(s, b);
                let vp = g.param(s, v);
                let h = g.matmul(xin, wp);
                let h = g.add_row(h, bp);
                let h = g.tanh(h);
                let logit = g.matmul(h, vp);
                g.bce_with_logit(logit, 1.0)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_softmax_attention_pooling() {
        let mut store = ParamStore::new();
        let e = store.add(
            "emb",
            Tensor::from_flat(
                4,
                3,
                vec![
                    0.1, 0.2, -0.1, 0.0, -0.3, 0.2, 0.4, 0.1, 0.0, -0.2, 0.25, 0.15,
                ],
            ),
        );
        let q = store.add("q", Tensor::from_flat(3, 1, vec![0.3, -0.2, 0.5]));
        let v = store.add("v", Tensor::from_flat(3, 1, vec![0.2, 0.4, -0.3]));
        grad_check(
            &mut store,
            move |g, s| {
                let table = g.param(s, e);
                let emb = g.embed(table, &[0, 2, 3, 1]); // T×3
                let qp = g.param(s, q);
                let scores = g.matmul(emb, qp); // T×1
                let scores_row = g.transpose(scores); // 1×T
                let alpha = g.softmax_rows(scores_row); // 1×T, sums to 1
                let pooled = g.matmul(alpha, emb); // 1×3
                let vp = g.param(s, v);
                let logit = g.matmul(pooled, vp); // 1×1
                g.bce_with_logit(logit, 0.0)
            },
            2e-2,
        );
    }

    #[test]
    fn embed_repeated_ids_accumulate_gradient() {
        let mut store = ParamStore::new();
        let e = store.add("emb", Tensor::from_flat(2, 2, vec![0.5, -0.1, 0.2, 0.3]));
        let mut g = Graph::new();
        let table = g.param(&store, e);
        let emb = g.embed(table, &[0, 0, 1]); // row 0 used twice
        let pooled = g.mean_rows(emb);
        let ones = g.input(Tensor::from_flat(2, 1, vec![1.0, 1.0]));
        let loss = g.matmul(pooled, ones);
        let grads = g.backward(loss, store.len());
        let ge = grads[0].as_ref().unwrap();
        // d pooled/d row0 counted twice: 2/3 each element; row1 once: 1/3.
        assert!((ge.get(0, 0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((ge.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn forward_values_are_correct() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_flat(1, 2, vec![1.0, -2.0]));
        let r = g.relu(a);
        assert_eq!(g.value(r).data, vec![1.0, 0.0]);
        let sm = g.softmax_rows(a);
        let v = g.value(sm);
        assert!((v.data[0] + v.data[1] - 1.0).abs() < 1e-6);
        assert!(v.data[0] > v.data[1]);
        let t = g.transpose(a);
        assert_eq!(g.value(t).rows, 2);
    }

    #[test]
    #[should_panic(expected = "scalar root")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let a = g.input(Tensor::zeros(2, 2));
        g.backward(a, 0);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn embed_checks_vocab_bounds() {
        let store = {
            let mut s = ParamStore::new();
            s.add("emb", Tensor::zeros(2, 2));
            s
        };
        let mut g = Graph::new();
        let table = g.param(&store, 0);
        let _ = g.embed(table, &[5]);
    }

    #[test]
    fn gradcheck_mul_abs_mean() {
        let mut store = ParamStore::new();
        let a = store.add(
            "a",
            Tensor::from_flat(2, 3, vec![0.5, -0.2, 0.3, 0.1, -0.7, 0.2]),
        );
        let b = store.add(
            "b",
            Tensor::from_flat(2, 3, vec![-0.3, 0.4, 0.2, 0.6, 0.1, -0.5]),
        );
        grad_check(
            &mut store,
            move |g, s| {
                let pa = g.param(s, a);
                let pb = g.param(s, b);
                let d = g.sub(pa, pb);
                let d = g.abs(d);
                let m = g.mul(d, pa);
                let pooled = g.mean_rows(m); // 1×3
                let ones = g.input(Tensor::from_flat(3, 1, vec![1.0, 1.0, 1.0]));
                let s1 = g.matmul(pooled, ones); // 1×1
                g.scale(s1, 0.5)
            },
            2e-2,
        );
    }
}
