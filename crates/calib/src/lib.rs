//! fairem-calib: per-group score calibration (the suite's answer to the
//! paper's Fig. 4 threshold-sensitivity story).
//!
//! An uncalibrated matcher can look fair at one matching threshold and
//! unfair at the next, because its raw scores mean different things for
//! different sensitive groups. "Threshold-Independent Fair Matching
//! through Score Calibration" (Moslemi & Milani 2024, the paper's ref
//! \[10\]) fixes this by fitting a calibrator *per group* so that a score
//! of `p` means "probability `p` of a true match" for every group at
//! once; fairness can then be audited on the score distributions over
//! the whole threshold range instead of at a single point.
//!
//! This crate owns the group-wise fitting layer on top of the plain
//! [`PlattScaler`]/[`IsotonicCalibrator`] calibrators in `fairem-ml`:
//!
//! - [`CalibrationSpec`] names a calibrator family plus the minimum
//!   per-group support below which a group falls back to the global fit;
//! - [`GroupCalibrator::try_fit`] fits the global calibrator and every
//!   eligible group calibrator as independent work items on a
//!   [`WorkerPool`], so the result is bit-for-bit identical under every
//!   `Parallelism` policy and the fit honors the session's cancellation
//!   tree;
//! - [`GroupCalibrator::transform`] maps a (group, raw score) pair to a
//!   calibrated probability, routing groups without their own fit to the
//!   global calibrator.
//!
//! The crate is deliberately core-agnostic: callers pass plain slices
//! (scores, labels, group slot per item), so `fairem-core` can adapt its
//! `Workload`/`GroupSpace` model without a dependency cycle.

use fairem_ml::{IsotonicCalibrator, PlattScaler};
use fairem_obs::Recorder;
use fairem_par::{CancelToken, Interrupt, WorkerPool};

/// Calibrator family to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibratorKind {
    /// Platt scaling: logistic link `σ(a·s + b)` fit by gradient descent.
    Platt,
    /// Isotonic regression: monotone step function fit by PAVA.
    Isotonic,
}

impl CalibratorKind {
    /// Stable lowercase name (CLI flag value, report label, cache key).
    pub fn name(self) -> &'static str {
        match self {
            CalibratorKind::Platt => "platt",
            CalibratorKind::Isotonic => "isotonic",
        }
    }
}

/// A calibration policy: which calibrator family to fit per group, and
/// the minimum number of fitting samples a group needs (with both
/// classes present) before it earns its own calibrator instead of the
/// global fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationSpec {
    /// Calibrator family.
    pub kind: CalibratorKind,
    /// Minimum per-group sample count for a dedicated fit.
    pub min_support: usize,
}

impl CalibrationSpec {
    /// Default minimum support, matching the audit's small-group floor.
    pub const DEFAULT_MIN_SUPPORT: usize = 10;

    /// Platt scaling with the default support floor.
    pub fn platt() -> CalibrationSpec {
        CalibrationSpec {
            kind: CalibratorKind::Platt,
            min_support: Self::DEFAULT_MIN_SUPPORT,
        }
    }

    /// Isotonic regression with the default support floor.
    pub fn isotonic() -> CalibrationSpec {
        CalibrationSpec {
            kind: CalibratorKind::Isotonic,
            min_support: Self::DEFAULT_MIN_SUPPORT,
        }
    }

    /// Override the support floor.
    pub fn with_min_support(mut self, min_support: usize) -> CalibrationSpec {
        self.min_support = min_support.max(1);
        self
    }

    /// Parse a CLI-style spec: `none`, `platt`, `isotonic`, optionally
    /// suffixed `:<min-support>` (e.g. `isotonic:25`). `Ok(None)` means
    /// calibration is explicitly off.
    pub fn parse(raw: &str) -> Result<Option<CalibrationSpec>, String> {
        let (name, support) = match raw.split_once(':') {
            Some((n, s)) => (n, Some(s)),
            None => (raw, None),
        };
        let base = match name {
            "none" => {
                if support.is_some() {
                    return Err("'none' takes no min-support suffix".into());
                }
                return Ok(None);
            }
            "platt" => CalibrationSpec::platt(),
            "isotonic" => CalibrationSpec::isotonic(),
            other => {
                return Err(format!(
                    "unknown calibrator '{other}' (expected none|platt|isotonic[:min-support])"
                ))
            }
        };
        match support {
            None => Ok(Some(base)),
            Some(s) => match s.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Some(base.with_min_support(n))),
                _ => Err(format!("invalid min-support '{s}' (expected integer >= 1)")),
            },
        }
    }

    /// Stable label, e.g. `platt:10` — used in reports and cache keys.
    pub fn label(&self) -> String {
        format!("{}:{}", self.kind.name(), self.min_support)
    }
}

/// One fitted calibrator (either family).
#[derive(Debug, Clone)]
enum Fitted {
    Platt(PlattScaler),
    Isotonic(IsotonicCalibrator),
}

impl Fitted {
    fn fit(kind: CalibratorKind, scores: &[f64], labels: &[f64]) -> Fitted {
        match kind {
            CalibratorKind::Platt => Fitted::Platt(PlattScaler::fit(scores, labels)),
            CalibratorKind::Isotonic => Fitted::Isotonic(IsotonicCalibrator::fit(scores, labels)),
        }
    }

    fn transform(&self, score: f64) -> f64 {
        match self {
            Fitted::Platt(p) => p.transform(score),
            Fitted::Isotonic(i) => i.transform(score),
        }
    }
}

/// Per-group calibrator: a global fit over all samples plus a dedicated
/// fit for every group that clears the support floor with both classes
/// present. Groups without a dedicated fit (and items outside every
/// group) route through the global calibrator.
#[derive(Debug, Clone)]
pub struct GroupCalibrator {
    spec: CalibrationSpec,
    global: Fitted,
    per_group: Vec<Option<Fitted>>,
}

impl GroupCalibrator {
    /// Fit with an inert cancellation token. See [`GroupCalibrator::try_fit`].
    ///
    /// # Panics
    /// If inputs are empty or lengths differ.
    pub fn fit(
        spec: CalibrationSpec,
        scores: &[f64],
        labels: &[f64],
        group_of: &[Option<usize>],
        n_groups: usize,
        pool: &WorkerPool,
    ) -> GroupCalibrator {
        match Self::try_fit(spec, scores, labels, group_of, n_groups, pool, &CancelToken::inert()) {
            Ok(c) => c,
            // fairem: allow(panic) — inert token never trips; unreachable by construction
            Err(_) => unreachable!("inert token cannot interrupt"),
        }
    }

    /// Fit the global calibrator plus one calibrator per eligible group.
    ///
    /// `group_of[i]` is item `i`'s group slot (`None` = outside every
    /// audited group; such items still feed the global fit). Each of the
    /// `n_groups + 1` fits is an independent work item on `pool`, so the
    /// stitched result is bit-for-bit identical for every worker count;
    /// a tripped `cancel` token aborts the whole fit (partial fits are
    /// never observable).
    ///
    /// # Panics
    /// If `scores` is empty or input lengths differ.
    pub fn try_fit(
        spec: CalibrationSpec,
        scores: &[f64],
        labels: &[f64],
        group_of: &[Option<usize>],
        n_groups: usize,
        pool: &WorkerPool,
        cancel: &CancelToken,
    ) -> Result<GroupCalibrator, Interrupt> {
        assert!(!scores.is_empty(), "cannot calibrate on empty data");
        assert_eq!(scores.len(), labels.len(), "scores and labels must align");
        assert_eq!(scores.len(), group_of.len(), "scores and groups must align");
        let recorder = pool.recorder().clone();
        let span = recorder.span("calib.fit");
        // Work item g < n_groups fits group g; item n_groups fits the
        // global calibrator over every sample.
        let outcome = pool.par_map_within(n_groups + 1, cancel, |g| {
            if g == n_groups {
                return Some(Fitted::fit(spec.kind, scores, labels));
            }
            let mut gs = Vec::new();
            let mut gl = Vec::new();
            for (i, slot) in group_of.iter().enumerate() {
                if *slot == Some(g) {
                    gs.push(scores[i]);
                    gl.push(labels[i]);
                }
            }
            let has_both = gl.contains(&1.0) && gl.iter().any(|&y| y != 1.0);
            if gs.len() >= spec.min_support && has_both {
                Some(Fitted::fit(spec.kind, &gs, &gl))
            } else {
                None
            }
        });
        if let Some(interrupt) = outcome.interrupt().copied() {
            span.set_status(fairem_obs::SpanStatus::Cut);
            drop(span);
            return Err(interrupt);
        }
        let mut fits = outcome.into_done();
        let global = match fits.pop().flatten() {
            Some(g) => g,
            // fairem: allow(panic) — pool contract: uninterrupted map returns all n_groups + 1 slots
            None => unreachable!("global fit always runs"),
        };
        let fallbacks = fits.iter().filter(|f| f.is_none()).count();
        recorder.add("calib.groups_fitted", (fits.len() - fallbacks) as u64);
        recorder.add("calib.fallbacks", fallbacks as u64);
        recorder.add("calib.samples", scores.len() as u64);
        drop(span);
        Ok(GroupCalibrator {
            spec,
            global,
            per_group: fits,
        })
    }

    /// The policy this calibrator was fitted under.
    pub fn spec(&self) -> CalibrationSpec {
        self.spec
    }

    /// Number of groups that earned a dedicated fit.
    pub fn groups_fitted(&self) -> usize {
        self.per_group.iter().filter(|f| f.is_some()).count()
    }

    /// Number of groups routed to the global fallback.
    pub fn fallbacks(&self) -> usize {
        self.per_group.len() - self.groups_fitted()
    }

    /// Calibrated probability for one (group, raw score) pair.
    pub fn transform(&self, group: Option<usize>, score: f64) -> f64 {
        match group.and_then(|g| self.per_group.get(g)).and_then(|f| f.as_ref()) {
            Some(fitted) => fitted.transform(score),
            None => self.global.transform(score),
        }
    }

    /// Calibrate a batch, routing each item by its group slot.
    ///
    /// # Panics
    /// If input lengths differ.
    pub fn transform_all(&self, group_of: &[Option<usize>], scores: &[f64]) -> Vec<f64> {
        assert_eq!(scores.len(), group_of.len(), "scores and groups must align");
        scores
            .iter()
            .zip(group_of)
            .map(|(&s, &g)| self.transform(g, s))
            .collect()
    }

    /// Emit the fit shape to `recorder` (used by serve's calibrator cache
    /// to attribute cached hits without refitting).
    pub fn record_shape(&self, recorder: &Recorder) {
        recorder.gauge("calib.groups_fitted", self.groups_fitted() as f64);
        recorder.gauge("calib.fallbacks", self.fallbacks() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_par::Parallelism;

    /// Two groups with systematically different score scales: group 0's
    /// scores are compressed into [0.25, 0.45], group 1's spread over
    /// [0.1, 0.9]; in both, the top half by rank are true matches.
    fn two_scale_fixture(n: usize) -> (Vec<f64>, Vec<f64>, Vec<Option<usize>>) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        let mut groups = Vec::new();
        for i in 0..n {
            let frac = i as f64 / n as f64;
            scores.push(0.25 + 0.20 * frac);
            labels.push(if frac > 0.5 { 1.0 } else { 0.0 });
            groups.push(Some(0));
            scores.push(0.1 + 0.8 * frac);
            labels.push(if frac > 0.5 { 1.0 } else { 0.0 });
            groups.push(Some(1));
        }
        (scores, labels, groups)
    }

    #[test]
    fn per_group_fit_aligns_score_scales() {
        let (scores, labels, groups) = two_scale_fixture(40);
        let pool = WorkerPool::with_parallelism(Parallelism::Off);
        let cal = GroupCalibrator::fit(
            CalibrationSpec::platt(),
            &scores,
            &labels,
            &groups,
            2,
            &pool,
        );
        assert_eq!(cal.groups_fitted(), 2);
        assert_eq!(cal.fallbacks(), 0);
        // Raw scores: group 0's best match (0.45) scores below group 1's
        // clear matches. Calibrated: both groups' matches sit above 0.5
        // and non-matches below.
        assert!(cal.transform(Some(0), 0.44) > 0.5);
        assert!(cal.transform(Some(0), 0.27) < 0.5);
        assert!(cal.transform(Some(1), 0.85) > 0.5);
        assert!(cal.transform(Some(1), 0.15) < 0.5);
    }

    #[test]
    fn small_groups_fall_back_to_global() {
        let (mut scores, mut labels, mut groups) = two_scale_fixture(40);
        // A third group with only 3 samples: below any sane floor.
        for (s, y) in [(0.2, 0.0), (0.6, 1.0), (0.8, 1.0)] {
            scores.push(s);
            labels.push(y);
            groups.push(Some(2));
        }
        let pool = WorkerPool::with_parallelism(Parallelism::Off);
        let cal = GroupCalibrator::fit(
            CalibrationSpec::isotonic(),
            &scores,
            &labels,
            &groups,
            3,
            &pool,
        );
        assert_eq!(cal.groups_fitted(), 2);
        assert_eq!(cal.fallbacks(), 1);
        // The fallback group routes through the global fit: identical to
        // an out-of-group item.
        assert_eq!(
            cal.transform(Some(2), 0.7).to_bits(),
            cal.transform(None, 0.7).to_bits()
        );
    }

    #[test]
    fn one_class_groups_fall_back_even_with_support() {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        let mut groups = Vec::new();
        for i in 0..30 {
            let frac = i as f64 / 30.0;
            scores.push(frac);
            labels.push(if frac > 0.5 { 1.0 } else { 0.0 });
            groups.push(Some(0));
            // Group 1: plenty of samples, but every one is a match.
            scores.push(0.5 + 0.4 * frac);
            labels.push(1.0);
            groups.push(Some(1));
        }
        let pool = WorkerPool::with_parallelism(Parallelism::Off);
        let cal = GroupCalibrator::fit(
            CalibrationSpec::platt(),
            &scores,
            &labels,
            &groups,
            2,
            &pool,
        );
        assert_eq!(cal.groups_fitted(), 1);
        assert_eq!(cal.fallbacks(), 1);
    }

    #[test]
    fn fit_is_bitwise_identical_across_parallelism_policies() {
        let (scores, labels, groups) = two_scale_fixture(64);
        let probes: Vec<(Option<usize>, f64)> = (0..50)
            .map(|i| (Some(i % 2), i as f64 / 50.0))
            .chain([(None, 0.3), (Some(9), 0.6)])
            .collect();
        let mut outputs: Vec<Vec<u64>> = Vec::new();
        for p in [Parallelism::Off, Parallelism::Fixed(1), Parallelism::Fixed(4)] {
            let pool = WorkerPool::with_parallelism(p);
            let cal = GroupCalibrator::fit(
                CalibrationSpec::isotonic(),
                &scores,
                &labels,
                &groups,
                2,
                &pool,
            );
            outputs.push(
                probes
                    .iter()
                    .map(|&(g, s)| cal.transform(g, s).to_bits())
                    .collect(),
            );
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn cancelled_fit_returns_interrupt() {
        let (scores, labels, groups) = two_scale_fixture(40);
        let pool = WorkerPool::with_parallelism(Parallelism::Off);
        let token = CancelToken::inert();
        token.cancel();
        let out = GroupCalibrator::try_fit(
            CalibrationSpec::platt(),
            &scores,
            &labels,
            &groups,
            2,
            &pool,
            &token,
        );
        assert!(out.is_err());
    }

    #[test]
    fn spec_parse_round_trips() {
        assert_eq!(CalibrationSpec::parse("none"), Ok(None));
        assert_eq!(
            CalibrationSpec::parse("platt"),
            Ok(Some(CalibrationSpec::platt()))
        );
        assert_eq!(
            CalibrationSpec::parse("isotonic:25"),
            Ok(Some(CalibrationSpec::isotonic().with_min_support(25)))
        );
        assert!(CalibrationSpec::parse("sigmoid").is_err());
        assert!(CalibrationSpec::parse("platt:0").is_err());
        assert!(CalibrationSpec::parse("isotonic:abc").is_err());
        assert!(CalibrationSpec::parse("none:5").is_err());
        assert_eq!(
            CalibrationSpec::isotonic().with_min_support(25).label(),
            "isotonic:25"
        );
    }

    #[test]
    fn counters_land_in_the_snapshot() {
        let (scores, labels, groups) = two_scale_fixture(40);
        let pool =
            WorkerPool::with_parallelism(Parallelism::Off).observe(Recorder::enabled());
        let cal = GroupCalibrator::fit(
            CalibrationSpec::platt(),
            &scores,
            &labels,
            &groups,
            2,
            &pool,
        );
        assert_eq!(cal.groups_fitted(), 2);
        let snap = pool.recorder().snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        };
        assert_eq!(counter("calib.groups_fitted"), Some(2));
        assert_eq!(counter("calib.fallbacks"), Some(0));
        assert!(snap.span_total("calib.fit") >= 0.0);
    }
}
