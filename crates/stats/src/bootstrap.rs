//! Bootstrap resampling: the suite's multiple-workload analysis draws k
//! workloads by sampling with replacement from a single test set.

use fairem_rng::rngs::StdRng;
use fairem_rng::{Rng, SeedableRng};

/// Draw `n` indices uniformly with replacement from `0..n` (one bootstrap
/// replicate of a length-`n` dataset).
pub fn bootstrap_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// Percentile bootstrap confidence interval of a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate (statistic on the full sample).
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of replicates used.
    pub replicates: usize,
}

/// Compute a statistic's percentile bootstrap CI.
///
/// `stat` maps a resampled dataset view (indices into `data`) to a value;
/// it receives the original data and one replicate's indices to avoid
/// materializing copies. `level` is the confidence level, e.g. `0.95`.
pub fn bootstrap_statistic<T>(
    data: &[T],
    replicates: usize,
    level: f64,
    seed: u64,
    stat: impl Fn(&[T], &[usize]) -> f64,
) -> BootstrapCi {
    assert!(!data.is_empty(), "bootstrap needs data");
    assert!(replicates >= 2, "bootstrap needs at least 2 replicates");
    assert!(level > 0.0 && level < 1.0, "confidence level in (0,1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let identity: Vec<usize> = (0..data.len()).collect();
    let estimate = stat(data, &identity);
    let mut values = Vec::with_capacity(replicates);
    for _ in 0..replicates {
        let idx = bootstrap_indices(data.len(), &mut rng);
        values.push(stat(data, &idx));
    }
    let alpha = 1.0 - level;
    let lo = crate::desc::quantile(&values, alpha / 2.0);
    let hi = crate::desc::quantile(&values, 1.0 - alpha / 2.0);
    BootstrapCi {
        estimate,
        lo,
        hi,
        replicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_cover_range_and_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = bootstrap_indices(100, &mut rng);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&i| i < 100));
        let mut rng2 = StdRng::seed_from_u64(7);
        let b = bootstrap_indices(100, &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn ci_brackets_the_mean() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_statistic(&data, 500, 0.95, 42, |d, idx| {
            idx.iter().map(|&i| d[i]).sum::<f64>() / idx.len() as f64
        });
        assert!((ci.estimate - 4.5).abs() < 1e-9);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.hi - ci.lo < 1.0, "CI too wide: {ci:?}");
    }

    #[test]
    fn ci_is_seed_deterministic() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let f = |d: &[f64], idx: &[usize]| idx.iter().map(|&i| d[i]).sum::<f64>();
        let a = bootstrap_statistic(&data, 50, 0.9, 1, f);
        let b = bootstrap_statistic(&data, 50, 0.9, 1, f);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bootstrap needs data")]
    fn rejects_empty_data() {
        let _ = bootstrap_statistic::<f64>(&[], 10, 0.9, 0, |_, _| 0.0);
    }
}
