//! Probability distributions implemented from scratch: the standard
//! normal (via a high-accuracy `erf`) and Student's t (via the regularized
//! incomplete beta function).

use std::f64::consts::PI;

/// Error function, Abramowitz & Stegun 7.1.26 refined with the
/// Winitzki-style high-precision rational approximation (|err| < 1.2e-7),
/// adequate for p-values down to ~1e-7.
pub fn erf(x: f64) -> f64 {
    // Numerical-recipes erfc approximation with relative error < 1.2e-7.
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let tau = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        1.0 - tau
    } else {
        tau - 1.0
    }
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of the standard normal CDF (Acklam's algorithm, |rel err| <
/// 1.15e-9). Panics if `p` is outside the open interval (0, 1).
pub fn normal_inv_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_inv_cdf requires p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One step of Halley refinement for full double precision.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function (Lanczos approximation).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut ser = 1.000000000190015;
    for (j, &g) in G.iter().enumerate() {
        ser += g / (x + j as f64 + 1.0);
    }
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Continued-fraction evaluation for the incomplete beta (Numerical
/// Recipes `betacf`).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function I_x(a, b).
fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "inc_beta domain");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Regularized lower incomplete gamma P(a, x) (series for `x < a+1`,
/// continued fraction otherwise — Numerical Recipes `gammp`).
fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 3e-14 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1e300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 3e-14 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma(a)).exp() * h
    }
}

/// Chi-squared cumulative distribution function with `df` degrees of
/// freedom. Panics if `df` is not positive or `x` is negative.
pub fn chi_squared_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    assert!(x >= 0.0, "chi-squared statistic must be non-negative");
    gamma_p(df / 2.0, x / 2.0)
}

/// Student-t cumulative distribution function with `df` degrees of
/// freedom. Panics if `df` is not positive.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    let p = 0.5 * inc_beta(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-5);
        assert!((normal_cdf(-1.6448536) - 0.05).abs() < 1e-5);
    }

    #[test]
    fn inv_cdf_round_trips() {
        for p in [0.001, 0.025, 0.3, 0.5, 0.8, 0.975, 0.999] {
            let x = normal_inv_cdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-9, "p={p}");
        }
        assert!((normal_inv_cdf(0.975) - 1.959964).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "normal_inv_cdf")]
    fn inv_cdf_rejects_boundary() {
        let _ = normal_inv_cdf(1.0);
    }

    #[test]
    fn t_cdf_reference_values() {
        // t_(df=10), t=1.812 → 0.95 (one-sided critical value).
        assert!((student_t_cdf(1.8124611, 10.0) - 0.95).abs() < 1e-5);
        // Symmetry around zero.
        assert!((student_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
        let a = student_t_cdf(-2.0, 7.0);
        let b = 1.0 - student_t_cdf(2.0, 7.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_approaches_normal_for_large_df() {
        for x in [-2.0, -0.5, 0.7, 1.96] {
            let t = student_t_cdf(x, 1e6);
            let n = normal_cdf(x);
            assert!((t - n).abs() < 1e-4, "x={x}: {t} vs {n}");
        }
    }

    #[test]
    fn chi_squared_reference_values() {
        // df=1: P(X ≤ 3.841) = 0.95.
        assert!((chi_squared_cdf(3.8415, 1.0) - 0.95).abs() < 1e-4);
        // df=2 is Exp(1/2): CDF(x) = 1 − e^{−x/2}.
        for x in [0.5, 1.0, 4.0] {
            let expected = 1.0 - (-x / 2.0f64).exp();
            assert!((chi_squared_cdf(x, 2.0) - expected).abs() < 1e-10, "x={x}");
        }
        // df=10: P(X ≤ 18.307) = 0.95.
        assert!((chi_squared_cdf(18.307, 10.0) - 0.95).abs() < 1e-4);
        assert_eq!(chi_squared_cdf(0.0, 3.0), 0.0);
    }

    #[test]
    fn pdf_integrates_to_one_crudely() {
        let mut s = 0.0;
        let h = 0.001;
        let mut x = -8.0;
        while x < 8.0 {
            s += normal_pdf(x) * h;
            x += h;
        }
        assert!((s - 1.0).abs() < 1e-3, "{s}");
    }
}
