//! # fairem-stats
//!
//! Statistics substrate for FairEM360's multiple-workload analysis: the
//! suite audits a matcher over `k` bootstrap workloads and asks whether
//! the observed disparity population is *significantly* unfair, using
//! z-/t-tests (paper §2.3, "Multiple-workload Analysis").
//!
//! Provides descriptive summaries, the normal and Student-t distributions
//! (via in-repo `erf` / incomplete-beta implementations), one- and
//! two-sample hypothesis tests, and bootstrap resampling with percentile
//! confidence intervals.

pub mod bootstrap;
pub mod desc;
pub mod dist;
pub mod distance;
pub mod hypothesis;

pub use bootstrap::{bootstrap_indices, bootstrap_statistic, BootstrapCi};
pub use desc::{mean, median, quantile, sample_std, sample_var, Summary};
pub use distance::{ks_distance, trapezoid, wasserstein_1};
pub use dist::{chi_squared_cdf, erf, normal_cdf, normal_inv_cdf, normal_pdf, student_t_cdf};
pub use hypothesis::{
    chi_squared_independence, one_sample_t_test, one_sample_z_test, two_sample_z_test,
    welch_t_test, Tail, TestResult,
};
