//! Hypothesis tests used by multiple-workload fairness analysis.
//!
//! The suite's null hypothesis is "the matcher is fair on group g" (its
//! mean disparity does not exceed the fairness threshold); the alternative
//! is "the matcher is unfair on g". With k bootstrap workloads the
//! disparity population is approximately normal, so z-statistics apply
//! (paper §2.3); t variants are provided for small k.

use crate::dist::{normal_cdf, student_t_cdf};

/// Which tail(s) of the distribution form the rejection region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// H1: parameter is greater than the hypothesized value.
    Greater,
    /// H1: parameter is less than the hypothesized value.
    Less,
    /// H1: parameter differs from the hypothesized value.
    TwoSided,
}

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (z or t).
    pub statistic: f64,
    /// Probability of observing a statistic at least as extreme under H0.
    pub p_value: f64,
    /// Degrees of freedom (`f64::INFINITY` for z-tests).
    pub df: f64,
    /// Sample size(s) involved.
    pub n: usize,
}

impl TestResult {
    /// Reject the null hypothesis at significance level `alpha`?
    /// Uses the standard decision rule: reject iff `p_value <= alpha`.
    /// (The paper's §2.3 prints the inequality reversed; that is a typo —
    /// rejecting when `alpha <= p` would reject *more* often as evidence
    /// weakens.)
    pub fn reject_at(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

fn tail_p(stat: f64, tail: Tail, cdf: impl Fn(f64) -> f64) -> f64 {
    match tail {
        Tail::Greater => 1.0 - cdf(stat),
        Tail::Less => cdf(stat),
        Tail::TwoSided => 2.0 * (1.0 - cdf(stat.abs())).min(0.5),
    }
}

/// One-sample z-test: is the sample mean different from `mu0`?
///
/// Uses the sample standard deviation as the population estimate, which
/// is standard for `n ≥ 30` (bootstrap workload populations easily reach
/// this). Panics if `sample.len() < 2`.
pub fn one_sample_z_test(sample: &[f64], mu0: f64, tail: Tail) -> TestResult {
    assert!(sample.len() >= 2, "z-test needs at least 2 observations");
    let n = sample.len();
    let m = crate::desc::mean(sample);
    let sd = crate::desc::sample_std(sample);
    let se = sd / (n as f64).sqrt();
    // Constant samples can show a femto-scale sd from floating-point
    // round-off; treat those as exactly degenerate.
    let degenerate = se <= 1e-12 * m.abs().max(1.0);
    let z = if degenerate {
        // Degenerate sample: all values identical. The statistic is ±inf
        // when the mean differs from mu0, 0 otherwise (again up to
        // round-off in the mean).
        let diff = m - mu0;
        if diff.abs() <= 1e-12 * m.abs().max(1.0) {
            0.0
        } else if diff > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        (m - mu0) / se
    };
    TestResult {
        statistic: z,
        p_value: tail_p(z, tail, normal_cdf),
        df: f64::INFINITY,
        n,
    }
}

/// One-sample t-test (small-sample variant of [`one_sample_z_test`]).
pub fn one_sample_t_test(sample: &[f64], mu0: f64, tail: Tail) -> TestResult {
    assert!(sample.len() >= 2, "t-test needs at least 2 observations");
    let n = sample.len();
    let df = (n - 1) as f64;
    let z = one_sample_z_test(sample, mu0, Tail::TwoSided).statistic;
    TestResult {
        statistic: z,
        p_value: tail_p(z, tail, |x| student_t_cdf(x, df)),
        df,
        n,
    }
}

/// Two-sample z-test for a difference in means (H0: mean(a) == mean(b)).
/// Panics if either sample has fewer than 2 observations.
pub fn two_sample_z_test(a: &[f64], b: &[f64], tail: Tail) -> TestResult {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "z-test needs at least 2 observations per sample"
    );
    let (ma, mb) = (crate::desc::mean(a), crate::desc::mean(b));
    let (va, vb) = (crate::desc::sample_var(a), crate::desc::sample_var(b));
    let se = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
    let z = if se == 0.0 {
        // total_cmp keeps the zero-variance branch deterministic even if
        // a NaN mean sneaks in (partial_cmp would silently collapse it
        // to the `_ => 0.0` arm on some inputs and not others).
        match ma.total_cmp(&mb) {
            std::cmp::Ordering::Greater => f64::INFINITY,
            std::cmp::Ordering::Less => f64::NEG_INFINITY,
            std::cmp::Ordering::Equal => 0.0,
        }
    } else {
        (ma - mb) / se
    };
    TestResult {
        statistic: z,
        p_value: tail_p(z, tail, normal_cdf),
        df: f64::INFINITY,
        n: a.len() + b.len(),
    }
}

/// Chi-squared test of independence on an r×c contingency table
/// (counts). H0: row and column variables are independent. Used by the
/// suite's group-representation explanations: does group membership
/// depend on the match/non-match class?
///
/// # Panics
/// If the table is ragged, smaller than 2×2, or all-zero.
pub fn chi_squared_independence(table: &[Vec<f64>]) -> TestResult {
    let rows = table.len();
    assert!(rows >= 2, "contingency table needs at least 2 rows");
    let cols = table[0].len();
    assert!(cols >= 2, "contingency table needs at least 2 columns");
    assert!(
        table.iter().all(|r| r.len() == cols),
        "ragged contingency table"
    );
    let row_sums: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<f64> = (0..cols)
        .map(|c| table.iter().map(|r| r[c]).sum())
        .collect();
    let total: f64 = row_sums.iter().sum();
    assert!(total > 0.0, "contingency table is empty");
    let mut stat = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &obs) in row.iter().enumerate() {
            let expected = row_sums[i] * col_sums[j] / total;
            if expected > 0.0 {
                stat += (obs - expected) * (obs - expected) / expected;
            }
        }
    }
    let df = ((rows - 1) * (cols - 1)) as f64;
    TestResult {
        statistic: stat,
        p_value: 1.0 - crate::dist::chi_squared_cdf(stat, df),
        df,
        n: total as usize,
    }
}

/// Welch's two-sample t-test (unequal variances).
pub fn welch_t_test(a: &[f64], b: &[f64], tail: Tail) -> TestResult {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "t-test needs at least 2 observations per sample"
    );
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (va, vb) = (crate::desc::sample_var(a), crate::desc::sample_var(b));
    let sa = va / na;
    let sb = vb / nb;
    let se = (sa + sb).sqrt();
    let t = if se == 0.0 {
        0.0
    } else {
        (crate::desc::mean(a) - crate::desc::mean(b)) / se
    };
    // Welch–Satterthwaite degrees of freedom.
    let df = if sa + sb == 0.0 {
        na + nb - 2.0
    } else {
        (sa + sb).powi(2) / (sa * sa / (na - 1.0) + sb * sb / (nb - 1.0))
    };
    TestResult {
        statistic: t,
        p_value: tail_p(t, tail, |x| student_t_cdf(x, df)),
        df,
        n: a.len() + b.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_test_detects_shifted_mean() {
        // Sample with mean 0.45, testing H0 mu = 0.2 vs greater.
        let xs: Vec<f64> = (0..40)
            .map(|i| 0.45 + 0.01 * ((i % 5) as f64 - 2.0))
            .collect();
        let r = one_sample_z_test(&xs, 0.2, Tail::Greater);
        assert!(r.statistic > 10.0);
        assert!(r.p_value < 1e-6);
        assert!(r.reject_at(0.05));
    }

    #[test]
    fn z_test_accepts_null_under_null() {
        let xs: Vec<f64> = (0..40)
            .map(|i| 0.2 + 0.02 * ((i % 7) as f64 - 3.0))
            .collect();
        let r = one_sample_z_test(&xs, 0.2, Tail::Greater);
        assert!(r.p_value > 0.3, "p={}", r.p_value);
        assert!(!r.reject_at(0.05));
    }

    #[test]
    fn z_two_sided_doubles_tail() {
        let xs: Vec<f64> = (0..30).map(|i| 0.3 + 0.01 * ((i % 3) as f64)).collect();
        let g = one_sample_z_test(&xs, 0.29, Tail::Greater);
        let two = one_sample_z_test(&xs, 0.29, Tail::TwoSided);
        assert!((two.p_value - 2.0 * g.p_value).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sample_handled() {
        let xs = [0.4, 0.4, 0.4];
        let r = one_sample_z_test(&xs, 0.2, Tail::Greater);
        assert!(r.statistic.is_infinite());
        assert_eq!(r.p_value, 0.0);
        let r0 = one_sample_z_test(&xs, 0.4, Tail::Greater);
        assert_eq!(r0.statistic, 0.0);
    }

    #[test]
    fn t_test_is_more_conservative_than_z_for_small_n() {
        let xs = [0.35, 0.42, 0.38, 0.45, 0.40];
        let z = one_sample_z_test(&xs, 0.2, Tail::Greater);
        let t = one_sample_t_test(&xs, 0.2, Tail::Greater);
        assert!((z.statistic - t.statistic).abs() < 1e-12);
        assert!(t.p_value > z.p_value);
    }

    #[test]
    fn two_sample_z_detects_difference() {
        let a: Vec<f64> = (0..50).map(|i| 0.5 + 0.005 * ((i % 4) as f64)).collect();
        let b: Vec<f64> = (0..50).map(|i| 0.3 + 0.005 * ((i % 4) as f64)).collect();
        let r = two_sample_z_test(&a, &b, Tail::Greater);
        assert!(r.reject_at(0.01));
        let same = two_sample_z_test(&a, &a, Tail::TwoSided);
        assert_eq!(same.statistic, 0.0);
        assert!((same.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn welch_reference_value() {
        // Classic Welch example: unequal variances.
        let a = [
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ];
        let b = [
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5,
            19.8,
        ];
        let r = welch_t_test(&a, &b, Tail::TwoSided);
        assert!(r.statistic < 0.0);
        assert!(r.p_value < 0.05 && r.p_value > 0.001, "p={}", r.p_value);
        assert!(r.df > 20.0 && r.df < 28.0, "df={}", r.df);
    }

    #[test]
    fn chi_squared_detects_dependence() {
        // Strongly dependent 2×2 table.
        let dependent = vec![vec![50.0, 10.0], vec![10.0, 50.0]];
        let r = chi_squared_independence(&dependent);
        assert!(r.statistic > 20.0);
        assert!(r.reject_at(0.01));
        assert_eq!(r.df, 1.0);
        // Perfectly proportional table: statistic 0.
        let independent = vec![vec![20.0, 40.0], vec![10.0, 20.0]];
        let r = chi_squared_independence(&independent);
        assert!(r.statistic < 1e-9);
        assert!(!r.reject_at(0.05));
    }

    #[test]
    fn chi_squared_handles_larger_tables() {
        let t = vec![
            vec![30.0, 20.0, 10.0],
            vec![25.0, 25.0, 10.0],
            vec![20.0, 30.0, 10.0],
        ];
        let r = chi_squared_independence(&t);
        assert_eq!(r.df, 4.0);
        assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn chi_squared_rejects_ragged() {
        let _ = chi_squared_independence(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_samples() {
        let _ = one_sample_z_test(&[1.0], 0.0, Tail::Greater);
    }
}
