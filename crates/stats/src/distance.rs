//! Distances between empirical score distributions, the substrate for
//! threshold-independent fairness audits (paper ref \[10\]): instead of
//! comparing group confusion matrices at one matching threshold, compare
//! the groups' score *distributions* directly. Two groups whose score
//! CDFs coincide receive identical treatment at *every* threshold, so a
//! small distribution distance certifies fairness over the whole
//! threshold range at once.
//!
//! All functions work on raw samples (no binning): the empirical CDFs
//! are swept jointly over the merged sorted support, which is exact and
//! `O(n log n)`. Samples are compared with `total_cmp`, so inputs with
//! non-finite values still produce a deterministic (if meaningless)
//! answer — callers are expected to clamp scores to `[0, 1]` upstream,
//! as the matcher boundary contract already guarantees.

use std::cmp::Ordering;

/// Kolmogorov–Smirnov distance: `sup_x |F_a(x) - F_b(x)|` between the
/// empirical CDFs of two samples. In `[0, 1]`; 0 iff the empirical
/// distributions coincide, 1 when the supports are disjoint.
///
/// # Panics
/// If either sample is empty.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "ks_distance needs non-empty samples");
    let (sa, sb) = (sorted(a), sorted(b));
    let (n, m) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
    while i < sa.len() || j < sb.len() {
        let x = next_breakpoint(&sa, i, &sb, j);
        while i < sa.len() && sa[i].total_cmp(&x) == Ordering::Equal {
            i += 1;
        }
        while j < sb.len() && sb[j].total_cmp(&x) == Ordering::Equal {
            j += 1;
        }
        let gap = (i as f64 / n - j as f64 / m).abs();
        if gap > d {
            d = gap;
        }
    }
    d
}

/// 1-Wasserstein (earth mover's) distance between the empirical
/// distributions of two samples: `∫ |F_a(x) - F_b(x)| dx` over the
/// merged support. For scores in `[0, 1]` the result is in `[0, 1]`;
/// unlike KS it weighs *how far* mass must move, not just whether the
/// CDFs ever separate.
///
/// # Panics
/// If either sample is empty.
pub fn wasserstein_1(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "wasserstein_1 needs non-empty samples");
    let (sa, sb) = (sorted(a), sorted(b));
    let (n, m) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j, mut total) = (0usize, 0usize, 0.0f64);
    let mut prev: Option<f64> = None;
    while i < sa.len() || j < sb.len() {
        let x = next_breakpoint(&sa, i, &sb, j);
        if let Some(p) = prev {
            // CDFs are constant on (p, x): height set by counts consumed so far.
            total += (i as f64 / n - j as f64 / m).abs() * (x - p);
        }
        while i < sa.len() && sa[i].total_cmp(&x) == Ordering::Equal {
            i += 1;
        }
        while j < sb.len() && sb[j].total_cmp(&x) == Ordering::Equal {
            j += 1;
        }
        prev = Some(x);
    }
    total
}

/// Trapezoid-rule integral of the sampled curve `(xs[k], ys[k])`:
/// `Σ (xs[k+1] - xs[k]) · (ys[k] + ys[k+1]) / 2`. The sweep behind the
/// "fairness area" audit: `ys` holds a paired-group disparity evaluated
/// on an ascending threshold grid `xs`, and the integral summarizes the
/// disparity over the whole threshold range.
///
/// # Panics
/// If lengths differ or fewer than two points are given.
pub fn trapezoid(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "trapezoid needs aligned samples");
    assert!(xs.len() >= 2, "trapezoid needs at least two points");
    let mut total = 0.0;
    for k in 0..xs.len() - 1 {
        total += (xs[k + 1] - xs[k]) * (ys[k] + ys[k + 1]) / 2.0;
    }
    total
}

/// Sort a sample ascending under the `total_cmp` order.
fn sorted(v: &[f64]) -> Vec<f64> {
    let mut s = v.to_vec();
    s.sort_by(f64::total_cmp);
    s
}

/// Smallest unconsumed value across both sorted samples.
fn next_breakpoint(sa: &[f64], i: usize, sb: &[f64], j: usize) -> f64 {
    match (sa.get(i), sb.get(j)) {
        (Some(&u), Some(&v)) => {
            if u.total_cmp(&v) == Ordering::Greater {
                v
            } else {
                u
            }
        }
        (Some(&u), None) => u,
        (None, Some(&v)) => v,
        // fairem: allow(panic) — callers loop while i or j is in bounds
        (None, None) => unreachable!("breakpoint past both samples"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = [0.1, 0.4, 0.4, 0.9];
        assert_eq!(ks_distance(&a, &a), 0.0);
        assert_eq!(wasserstein_1(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_supports_saturate_ks() {
        let a = [0.1, 0.2, 0.3];
        let b = [0.7, 0.8, 0.9];
        assert_eq!(ks_distance(&a, &b), 1.0);
        // All mass moves by 0.6.
        assert!((wasserstein_1(&a, &b) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ks_matches_hand_computation() {
        // F_a jumps at 0.2, 0.6; F_b jumps at 0.4, 0.8. Max gap is 1/2
        // (e.g. just after 0.2: F_a = 0.5, F_b = 0.0).
        let a = [0.2, 0.6];
        let b = [0.4, 0.8];
        assert!((ks_distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_equals_mean_shift_for_translated_samples() {
        let a: Vec<f64> = (0..50).map(|i| i as f64 / 100.0).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.25).collect();
        assert!((wasserstein_1(&a, &b) - 0.25).abs() < 1e-12);
        // KS saturates long before Wasserstein for a translation this big.
        assert!(ks_distance(&a, &b) > 0.5);
    }

    #[test]
    fn distances_handle_unequal_sample_sizes() {
        let a = [0.0, 0.5, 1.0];
        let b = [0.0, 0.25, 0.5, 0.75, 1.0];
        let d = ks_distance(&a, &b);
        assert!(d > 0.0 && d < 0.5, "{d}");
        let w = wasserstein_1(&a, &b);
        assert!(w > 0.0 && w < 0.25, "{w}");
    }

    #[test]
    fn distances_are_symmetric() {
        let a = [0.1, 0.3, 0.3, 0.7];
        let b = [0.2, 0.5, 0.9];
        assert_eq!(ks_distance(&a, &b).to_bits(), ks_distance(&b, &a).to_bits());
        assert_eq!(
            wasserstein_1(&a, &b).to_bits(),
            wasserstein_1(&b, &a).to_bits()
        );
    }

    #[test]
    fn trapezoid_integrates_constant_and_linear_curves() {
        let xs = [0.0, 0.25, 0.5, 0.75, 1.0];
        assert!((trapezoid(&xs, &[2.0; 5]) - 2.0).abs() < 1e-12);
        let ys: Vec<f64> = xs.to_vec();
        assert!((trapezoid(&xs, &ys) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ks_rejects_empty() {
        let _ = ks_distance(&[], &[0.5]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn trapezoid_rejects_single_point() {
        let _ = trapezoid(&[0.5], &[1.0]);
    }
}
