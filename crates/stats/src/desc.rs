//! Descriptive statistics over `f64` slices.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n-1 denominator); `NaN` for fewer than two
/// observations.
pub fn sample_var(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation; `NaN` for fewer than two observations.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_var(xs).sqrt()
}

/// Median; `NaN` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolated quantile, `q ∈ [0, 1]`; `NaN` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Empty input yields NaN fields with `n == 0`.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std: sample_std(xs),
            min: xs.iter().copied().fold(f64::NAN, f64::min),
            median: median(xs),
            max: xs.iter().copied().fold(f64::NAN, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_var() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((sample_var(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(mean(&[]).is_nan());
        assert!(sample_var(&[1.0]).is_nan());
        assert_eq!(mean(&[3.0]), 3.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!((s.std - 1.0).abs() < 1e-12);
    }
}
