//! The metric-name registry: the **single source of truth** for every
//! counter, gauge, histogram, and span name the suite emits.
//!
//! DESIGN.md §8 promises a stable snapshot schema and
//! `bench_baseline --validate` parses real snapshots against it; both
//! promises rot silently when a call site renames a metric or a new
//! stage invents a name nobody documents. `fairem-lint`'s
//! `metrics_registry` rule closes the loop: every
//! `.incr(/.add(/.gauge(/.observe(/.time(/.span(` call on a recorder
//! must pass a **string literal** that is declared here, and every
//! name declared here must be emitted by at least one call site —
//! drift in either direction is a lint finding.
//!
//! Conventions: dot-separated lowercase segments, `<subsystem>.<what>`
//! (histograms end in a unit suffix such as `_secs` or `_bytes`).
//! Span names are bare stage names (`import`, `train`, …) matching the
//! stage table rendered by `bench_baseline`. Per-matcher span
//! *children* (`train.DTMatcher`, `audit.3`, …) are dynamic by design
//! and are not registered — the registry covers the stable schema, not
//! the per-run fan-out.

// ---- spans (pipeline stages) ----------------------------------------

/// Root import stage: CSV → validated tables.
pub const SPAN_IMPORT: &str = "import";
/// Pair preparation: candidate generation + split + labels.
pub const SPAN_PREP: &str = "prep";
/// Blocking stage (token / sorted-neighborhood kernels).
pub const SPAN_BLOCKING: &str = "blocking";
/// Columnar feature build + per-split matrices.
pub const SPAN_FEATURES: &str = "features";
/// Per-matcher training fan-out parent.
pub const SPAN_TRAIN: &str = "train";
/// Per-matcher scoring fan-out parent.
pub const SPAN_SCORE: &str = "score";
/// One out-of-core shard (child per shard index).
pub const SPAN_SHARD: &str = "shard";
/// Fairness audit stage.
pub const SPAN_AUDIT: &str = "audit";
/// Calibration stage parent (suite-level).
pub const SPAN_CALIB: &str = "calib";
/// Per-group calibrator fitting (fairem-calib).
pub const SPAN_CALIB_FIT: &str = "calib.fit";
/// Ensemble Pareto-frontier enumeration.
pub const SPAN_ENSEMBLE: &str = "ensemble";

// ---- counters -------------------------------------------------------

/// Rows ingested across both tables.
pub const IMPORT_ROWS: &str = "import.rows";
/// Rows quarantined on lenient import.
pub const IMPORT_QUARANTINED: &str = "import.quarantined";
/// Candidate pairs featurized.
pub const FEATURES_PAIRS: &str = "features.pairs";
/// Blocking tokens considered eligible.
pub const BLOCKING_TOKENS: &str = "blocking.tokens";
/// Checkpoint shards skipped on resume (already committed).
pub const CKPT_SHARDS_SKIPPED: &str = "ckpt.shards_skipped";
/// Checkpoint shards written this run.
pub const CKPT_SHARDS_WRITTEN: &str = "ckpt.shards_written";
/// Checkpoint shards recomputed (stale/corrupt on disk).
pub const CKPT_SHARDS_RECOMPUTED: &str = "ckpt.shards_recomputed";
/// Parallel regions entered by the worker pool.
pub const PAR_REGIONS: &str = "par.regions";
/// Items mapped across all parallel regions.
pub const PAR_ITEMS: &str = "par.items";
/// Chunks executed by the worker pool.
pub const PAR_CHUNKS: &str = "par.chunks";
/// Calibrator groups fitted (also mirrored as a gauge).
pub const CALIB_GROUPS_FITTED: &str = "calib.groups_fitted";
/// Calibrator groups routed to the global fallback.
pub const CALIB_FALLBACKS: &str = "calib.fallbacks";
/// Validation samples consumed by calibrator fitting.
pub const CALIB_SAMPLES: &str = "calib.samples";
/// Connections accepted by the audit server.
pub const SERVE_ACCEPTED: &str = "serve.accepted";
/// Connections shed by admission control.
pub const SERVE_SHED_CONNECTIONS: &str = "serve.shed.connections";
/// Requests shed by the in-flight cap.
pub const SERVE_SHED_REQUESTS: &str = "serve.shed.requests";
/// Requests dispatched.
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Requests answered with a structured partial (deadline cut).
pub const SERVE_PARTIAL: &str = "serve.partial";
/// Requests whose handler panicked (contained per connection).
pub const SERVE_PANICS: &str = "serve.panics";
/// Connections quarantined after repeated malformed frames.
pub const SERVE_QUARANTINED: &str = "serve.quarantined";
/// Malformed-frame protocol errors.
pub const SERVE_ERRORS_PROTOCOL: &str = "serve.errors.protocol";
/// Calibrator cache hits on a served session.
pub const SERVE_CALIB_CACHE_HIT: &str = "serve.calib.cache_hit";
/// Calibrator cache misses (fit performed).
pub const SERVE_CALIB_CACHE_MISS: &str = "serve.calib.cache_miss";
/// In-flight requests severed by the drain deadline.
pub const SERVE_DRAIN_FORCED_CUTS: &str = "serve.drain.forced_cuts";
/// Source files fully analyzed by fairem-lint (cache misses).
pub const LINT_FILES_ANALYZED: &str = "lint.files_analyzed";
/// Source files served from the fairem-lint incremental cache.
pub const LINT_FILES_CACHED: &str = "lint.files_cached";

// ---- gauges ---------------------------------------------------------

/// Training-split candidate pairs.
pub const PAIRS_TRAIN: &str = "pairs.train";
/// Validation-split candidate pairs.
pub const PAIRS_VALID: &str = "pairs.valid";
/// Test-split candidate pairs.
pub const PAIRS_TEST: &str = "pairs.test";
/// Whole-run peak of the deterministic memory cost model.
pub const MEM_PEAK_BYTES: &str = "mem.peak_bytes";
/// Per-stage cost-model peak: training features.
pub const MEM_STAGE_PEAK_TRAIN: &str = "mem.stage_peak_bytes.train";
/// Per-stage cost-model peak: feature build.
pub const MEM_STAGE_PEAK_FEATURES: &str = "mem.stage_peak_bytes.features";
/// Per-stage cost-model peak: scoring.
pub const MEM_STAGE_PEAK_SCORE: &str = "mem.stage_peak_bytes.score";
/// Shards the audit ran over (1 when materialized).
pub const SHARD_COUNT: &str = "shard.count";
/// Ensemble assignments enumerated.
pub const ENSEMBLE_ASSIGNMENTS: &str = "ensemble.assignments";
/// Fleet-max per-group KS distance, uncalibrated scores.
pub const CALIB_KS_MAX_RAW: &str = "calib.ks_max.raw";
/// Fleet-max per-group KS distance, calibrated scores.
pub const CALIB_KS_MAX_CALIBRATED: &str = "calib.ks_max.calibrated";
/// Sessions resident in the serve registry.
pub const SERVE_SESSIONS_CACHED: &str = "serve.sessions.cached";

// ---- histograms -----------------------------------------------------

/// Worker-pool chunk wall time.
pub const PAR_CHUNK_SECS: &str = "par.chunk_secs";
/// Server drain wall time.
pub const SERVE_DRAIN_SECS: &str = "serve.drain_secs";
/// Per-request wall time on the audit server.
pub const SERVE_REQUEST_SECS: &str = "serve.request_secs";

/// Every registered name, for exhaustiveness checks. Kept sorted so a
/// snapshot diff against this list is itself deterministic.
pub const ALL: &[&str] = &[
    SPAN_AUDIT,
    SPAN_BLOCKING,
    BLOCKING_TOKENS,
    SPAN_CALIB,
    CALIB_FALLBACKS,
    SPAN_CALIB_FIT,
    CALIB_GROUPS_FITTED,
    CALIB_KS_MAX_CALIBRATED,
    CALIB_KS_MAX_RAW,
    CALIB_SAMPLES,
    CKPT_SHARDS_RECOMPUTED,
    CKPT_SHARDS_SKIPPED,
    CKPT_SHARDS_WRITTEN,
    SPAN_ENSEMBLE,
    ENSEMBLE_ASSIGNMENTS,
    SPAN_FEATURES,
    FEATURES_PAIRS,
    SPAN_IMPORT,
    IMPORT_QUARANTINED,
    IMPORT_ROWS,
    LINT_FILES_ANALYZED,
    LINT_FILES_CACHED,
    MEM_PEAK_BYTES,
    MEM_STAGE_PEAK_FEATURES,
    MEM_STAGE_PEAK_SCORE,
    MEM_STAGE_PEAK_TRAIN,
    PAIRS_TEST,
    PAIRS_TRAIN,
    PAIRS_VALID,
    PAR_CHUNK_SECS,
    PAR_CHUNKS,
    PAR_ITEMS,
    PAR_REGIONS,
    SPAN_PREP,
    SPAN_SCORE,
    SERVE_ACCEPTED,
    SERVE_CALIB_CACHE_HIT,
    SERVE_CALIB_CACHE_MISS,
    SERVE_DRAIN_FORCED_CUTS,
    SERVE_DRAIN_SECS,
    SERVE_ERRORS_PROTOCOL,
    SERVE_PANICS,
    SERVE_PARTIAL,
    SERVE_QUARANTINED,
    SERVE_REQUEST_SECS,
    SERVE_REQUESTS,
    SERVE_SESSIONS_CACHED,
    SERVE_SHED_CONNECTIONS,
    SERVE_SHED_REQUESTS,
    SPAN_SHARD,
    SHARD_COUNT,
    SPAN_TRAIN,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn registry_is_sorted_and_duplicate_free() {
        let mut sorted = ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.as_slice(), ALL, "ALL must stay sorted and unique");
    }

    #[test]
    fn names_follow_the_dot_separated_lowercase_convention() {
        for name in ALL {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "metric name `{name}` breaks the lowercase dot convention"
            );
            assert!(!name.starts_with('.') && !name.ends_with('.'));
        }
    }
}
