//! # fairem-obs
//!
//! Hermetic observability for the FairEM360 suite: a zero-dependency
//! metrics registry (monotonic counters, gauges, fixed-bucket
//! [`Histogram`]s with p50/p95/p99 readout) plus lightweight span-based
//! tracing (enter/exit wall timing with explicit parent links, collected
//! from any thread and stitched deterministically — the tracing analogue
//! of `fairem-par`'s chunk-index result stitching).
//!
//! Three pieces:
//!
//! - [`Recorder`] — the cheap-clone handle threaded through
//!   `SuiteBuilder::observe`, the worker pool, and the CLI. The
//!   *disabled* recorder (the default everywhere) is **bit-for-bit
//!   inert**: every operation returns without locking, allocating, or
//!   reading the clock, so a metrics-off run is indistinguishable from
//!   a run predating this crate.
//! - [`Span`] — an RAII guard measuring one region. Children are opened
//!   with [`Span::child`] carrying an explicit parent id, so fan-out
//!   work on pool threads stitches under its stage span no matter which
//!   worker ran it. A span that ends early records *why*
//!   ([`SpanStatus::Cut`] for cooperative budget cuts,
//!   [`SpanStatus::Panicked`] for contained panics).
//! - [`Snapshot`] — a frozen, deterministic view (name-sorted maps,
//!   id-sorted spans) with [`Snapshot::to_json`] emission in the
//!   `fairem-obs/1` schema and [`Snapshot::render_spans`] for the CLI's
//!   `--trace` tree.
//!
//! ## Overhead contract
//!
//! Disabled: one `Option` check per call, nothing else — no clock, no
//! lock, no allocation. Enabled: recording is per *stage* and per
//! *matcher* (never per pair), so a handful of mutex hops per run;
//! `Instant` reads happen only at span open/close.

pub mod metrics;
pub mod names;
pub mod recorder;
pub mod snapshot;
pub mod span;

pub use metrics::{Histogram, HistogramSummary};
pub use recorder::{Recorder, Span};
pub use snapshot::Snapshot;
pub use span::{render_tree, SpanId, SpanRecord, SpanStatus};

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite check: boundary-aligned histogram quantiles agree with
    /// `fairem_stats::desc::quantile` exactly (same interpolation rule,
    /// lossless reconstruction when samples sit on bucket bounds).
    #[test]
    fn histogram_quantiles_match_fairem_stats_on_bucket_boundaries() {
        let bounds: Vec<f64> = (1..=64).map(|i| i as f64 * 0.25).collect();
        let sample: Vec<f64> = [1, 3, 3, 8, 8, 8, 21, 40, 64, 64]
            .iter()
            .map(|&i| i as f64 * 0.25)
            .collect();
        let mut h = Histogram::with_bounds(&bounds);
        for &v in &sample {
            h.record(v);
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let want = fairem_stats::quantile(&sample, q);
            let got = h.quantile(q);
            assert_eq!(got.to_bits(), want.to_bits(), "q={q}: {got} vs {want}");
        }
    }

    #[test]
    fn end_to_end_record_snapshot_render() {
        let rec = Recorder::enabled();
        {
            let root = rec.span("suite");
            let _child = root.child("suite.import");
            rec.incr("rows");
            rec.observe("lat", 0.002);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let json = snap.to_json();
        assert!(json.contains("\"suite.import\""));
        let tree = snap.render_spans();
        assert!(tree.contains("suite.import"), "{tree}");
    }
}
