//! Point-in-time snapshot of a recorder, with hand-rolled JSON
//! emission (the crate stays dependency-free; consumers validate with
//! `fairem-csvio`'s parser or any external tool).
//!
//! Snapshot schema (`schema` field pins the version):
//!
//! ```json
//! {
//!   "schema": "fairem-obs/1",
//!   "counters": {"name": 3},
//!   "gauges": {"name": 12.0},
//!   "histograms": {"name": {"count": 2, "sum": ..., "mean": ...,
//!                            "min": ..., "max": ...,
//!                            "p50": ..., "p95": ..., "p99": ...}},
//!   "spans": [{"id": 0, "parent": null, "name": "train",
//!              "secs": 0.012, "status": "ok", "note": null}]
//! }
//! ```
//!
//! Non-finite numbers serialize as `null` (JSON has no NaN).

use crate::metrics::HistogramSummary;
use crate::span::{render_tree, SpanRecord};

/// Everything a recorder has seen, frozen. Maps are name-sorted and
/// spans id-sorted, so two snapshots of equal state serialize equally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauges (last write wins), name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, name-sorted.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Completed spans, id-sorted.
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Total seconds across all completed spans with this exact name.
    pub fn span_total(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.secs)
            .sum()
    }

    /// Per-stage totals: root spans (no parent) aggregated by name, in
    /// first-seen (id) order — the per-stage wall-time table benches and
    /// the check gate print.
    pub fn stage_totals(&self) -> Vec<(String, f64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for s in self.spans.iter().filter(|s| s.parent.is_none()) {
            if !totals.contains_key(&s.name) {
                order.push(s.name.clone());
            }
            *totals.entry(s.name.clone()).or_insert(0.0) += s.secs;
        }
        order
            .into_iter()
            .map(|n| {
                let t = totals.get(&n).copied().unwrap_or(0.0);
                (n, t)
            })
            .collect()
    }

    /// The span tree, rendered for `--trace` output (see
    /// [`render_tree`]).
    pub fn render_spans(&self) -> String {
        render_tree(&self.spans)
    }

    /// Serialize to the `fairem-obs/1` JSON schema (pretty-printed,
    /// stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"fairem-obs/1\",\n");
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            push_sep(&mut out, i, 4);
            out.push_str(&format!("{}: {v}", quote(k)));
        }
        close_obj(&mut out, self.counters.is_empty(), 2);
        out.push_str(",\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            push_sep(&mut out, i, 4);
            out.push_str(&format!("{}: {}", quote(k), num(*v)));
        }
        close_obj(&mut out, self.gauges.is_empty(), 2);
        out.push_str(",\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            push_sep(&mut out, i, 4);
            out.push_str(&format!(
                "{}: {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                quote(k),
                h.count,
                num(h.sum),
                num(h.mean),
                num(h.min),
                num(h.max),
                num(h.p50),
                num(h.p95),
                num(h.p99),
            ));
        }
        close_obj(&mut out, self.histograms.is_empty(), 2);
        out.push_str(",\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            push_sep(&mut out, i, 4);
            let parent = s
                .parent
                .map_or_else(|| "null".to_owned(), |p| p.to_string());
            let note = s
                .note
                .as_deref()
                .map_or_else(|| "null".to_owned(), quote);
            out.push_str(&format!(
                "{{\"id\": {}, \"parent\": {parent}, \"name\": {}, \"secs\": {}, \"status\": {}, \"note\": {note}}}",
                s.id,
                quote(&s.name),
                num(s.secs),
                quote(s.status.label()),
            ));
        }
        if self.spans.is_empty() {
            out.push(']');
        } else {
            out.push_str("\n  ]");
        }
        out.push_str("\n}\n");
        out
    }
}

fn push_sep(out: &mut String, i: usize, indent: usize) {
    if i > 0 {
        out.push(',');
    }
    out.push('\n');
    out.push_str(&" ".repeat(indent));
}

fn close_obj(out: &mut String, empty: bool, indent: usize) {
    if empty {
        out.push('}');
    } else {
        out.push('\n');
        out.push_str(&" ".repeat(indent));
        out.push('}');
    }
}

/// JSON number: finite floats print via Rust's shortest-round-trip
/// `Display` (never exponent-free-invalid), non-finite becomes `null`.
fn num(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    let s = format!("{v}");
    // Rust prints integral floats as "1" — valid JSON either way, but
    // keep a decimal point so readers type them as floats.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Minimal JSON string escape (quotes, backslash, control chars).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStatus;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("import.quarantined".to_owned(), 2)],
            gauges: vec![("pairs".to_owned(), 128.0)],
            histograms: vec![(
                "par.chunk_secs".to_owned(),
                HistogramSummary {
                    count: 4,
                    sum: 0.004,
                    mean: 0.001,
                    min: 0.001,
                    max: 0.001,
                    p50: 0.001,
                    p95: 0.001,
                    p99: 0.001,
                },
            )],
            spans: vec![
                SpanRecord {
                    id: 0,
                    parent: None,
                    name: "train".to_owned(),
                    secs: 0.5,
                    status: SpanStatus::Ok,
                    note: None,
                },
                SpanRecord {
                    id: 1,
                    parent: Some(0),
                    name: "train.\"DT\"".to_owned(),
                    secs: 0.25,
                    status: SpanStatus::Cut,
                    note: Some("timed out after 0.2s".to_owned()),
                },
            ],
        }
    }

    #[test]
    fn json_has_schema_and_all_sections() {
        let j = sample().to_json();
        for needle in [
            "\"schema\": \"fairem-obs/1\"",
            "\"counters\"",
            "\"import.quarantined\": 2",
            "\"gauges\"",
            "\"histograms\"",
            "\"p99\"",
            "\"spans\"",
            "\"status\": \"cut\"",
            "\"parent\": 0",
            "\\\"DT\\\"",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn empty_snapshot_serializes_to_empty_sections() {
        let j = Snapshot::default().to_json();
        assert!(j.contains("\"counters\": {}"), "{j}");
        assert!(j.contains("\"spans\": []"), "{j}");
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        let mut s = Snapshot::default();
        s.gauges.push(("bad".to_owned(), f64::NAN));
        assert!(s.to_json().contains("\"bad\": null"));
    }

    #[test]
    fn stage_totals_aggregate_roots_in_first_seen_order() {
        let s = sample();
        assert_eq!(s.stage_totals(), vec![("train".to_owned(), 0.5)]);
        assert_eq!(s.span_total("train.\"DT\""), 0.25);
    }
}
