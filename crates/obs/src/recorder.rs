//! The [`Recorder`] handle and RAII [`Span`] guard.
//!
//! A recorder is a cheap-clone handle over shared storage. The disabled
//! recorder (the default everywhere) holds no storage at all: every
//! operation returns immediately without locking, allocating, or —
//! critically — reading the clock, so a metrics-off run is bit-for-bit
//! the run before observability existed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::Histogram;
use crate::snapshot::Snapshot;
use crate::span::{SpanId, SpanRecord, SpanStatus};

/// Shared storage behind an enabled recorder. Plain mutex-protected
/// BTreeMaps: the suite records per *stage* and per *matcher*, not per
/// pair, so contention is negligible and deterministic iteration order
/// comes free.
#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<std::collections::BTreeMap<String, u64>>,
    gauges: Mutex<std::collections::BTreeMap<String, f64>>,
    histograms: Mutex<std::collections::BTreeMap<String, Histogram>>,
    spans: Mutex<Vec<SpanRecord>>,
    next_span: AtomicU64,
}

/// A metrics/tracing handle threaded through the suite (SuiteBuilder →
/// pool → stages). Clones share storage. [`Recorder::disabled`] — the
/// `Default` — is inert: no locks, no clock reads, no allocation.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The inert recorder: every operation is a no-op and never touches
    /// the clock, so runs carrying it are bit-for-bit identical to runs
    /// without observability compiled in at all.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A recording handle with fresh shared storage.
    pub fn enabled() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// Is this handle actually recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to the named monotonic counter.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            if let Ok(mut c) = inner.counters.lock() {
                *c.entry(name.to_owned()).or_insert(0) += delta;
            }
        }
    }

    /// Increment the named counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Set the named gauge (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            if let Ok(mut g) = inner.gauges.lock() {
                g.insert(name.to_owned(), value);
            }
        }
    }

    /// Record `value` into the named histogram (created on first use
    /// with the [`Histogram::durations`] ladder).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            if let Ok(mut h) = inner.histograms.lock() {
                h.entry(name.to_owned())
                    .or_insert_with(Histogram::durations)
                    .record(value);
            }
        }
    }

    /// Run `f`, recording its wall-clock duration (seconds) into the
    /// named histogram. The disabled recorder runs `f` untouched — no
    /// clock reads — so timing call sites stay on the inert-by-default
    /// contract. This is the per-request latency primitive: servers wrap
    /// each request handler in `time("serve.request_secs", …)`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        if self.inner.is_none() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.observe(name, start.elapsed().as_secs_f64());
        out
    }

    /// Open a root span. Disabled recorders return an inert guard that
    /// never reads the clock.
    pub fn span(&self, name: &str) -> Span {
        self.open(name, None)
    }

    fn open(&self, name: &str, parent: Option<SpanId>) -> Span {
        match &self.inner {
            None => Span {
                rec: Recorder::disabled(),
                id: None,
                parent: None,
                name: String::new(),
                start: None,
                state: Mutex::new((SpanStatus::Ok, None)),
            },
            Some(inner) => Span {
                rec: self.clone(),
                id: Some(inner.next_span.fetch_add(1, Ordering::Relaxed)),
                parent,
                name: name.to_owned(),
                start: Some(Instant::now()),
                state: Mutex::new((SpanStatus::Ok, None)),
            },
        }
    }

    /// A deterministic point-in-time snapshot of everything recorded so
    /// far. Spans are sorted by id; maps iterate in name order.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .map(|c| c.iter().map(|(k, &v)| (k.clone(), v)).collect())
            .unwrap_or_default();
        let gauges = inner
            .gauges
            .lock()
            .map(|g| g.iter().map(|(k, &v)| (k.clone(), v)).collect())
            .unwrap_or_default();
        let histograms = inner
            .histograms
            .lock()
            .map(|h| h.iter().map(|(k, v)| (k.clone(), v.summarize())).collect())
            .unwrap_or_default();
        let mut spans: Vec<SpanRecord> = inner
            .spans
            .lock()
            .map(|s| s.clone())
            .unwrap_or_default();
        spans.sort_by_key(|s| s.id);
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

/// An RAII span guard: created by [`Recorder::span`] / [`Span::child`],
/// it measures wall-clock time from open to drop and pushes a
/// [`SpanRecord`] into the recorder when it closes. Status and note are
/// interior-mutable so a shared `&Span` (e.g. a stage span borrowed by
/// pool workers opening children) stays `Sync`.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    id: Option<SpanId>,
    parent: Option<SpanId>,
    name: String,
    start: Option<Instant>,
    state: Mutex<(SpanStatus, Option<String>)>,
}

impl Span {
    /// This span's id (None for inert spans) — stored in child records
    /// as the parent link.
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// Open a child span. Works from any thread: the parent link is the
    /// explicit id, not a thread-local, so fan-out children stitch under
    /// their stage span deterministically.
    pub fn child(&self, name: &str) -> Span {
        self.rec.open(name, self.id)
    }

    /// Set how this span ended (default: [`SpanStatus::Ok`]).
    pub fn set_status(&self, status: SpanStatus) {
        if self.id.is_some() {
            if let Ok(mut s) = self.state.lock() {
                s.0 = status;
            }
        }
    }

    /// Attach a free-form annotation (e.g. the interrupt's elapsed and
    /// progress) to the record this span will close into.
    pub fn note(&self, note: impl Into<String>) {
        if self.id.is_some() {
            if let Ok(mut s) = self.state.lock() {
                s.1 = Some(note.into());
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(id), Some(start), Some(inner)) = (self.id, self.start, &self.rec.inner) else {
            return;
        };
        let secs = start.elapsed().as_secs_f64();
        let (status, note) = self
            .state
            .lock()
            .map(|s| s.clone())
            .unwrap_or((SpanStatus::Ok, None));
        if let Ok(mut spans) = inner.spans.lock() {
            spans.push(SpanRecord {
                id,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                secs,
                status,
                note,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        rec.incr("x");
        rec.gauge("g", 1.0);
        rec.observe("h", 0.5);
        let span = rec.span("root");
        assert_eq!(span.id(), None);
        drop(span);
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty() && snap.spans.is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let rec = Recorder::enabled();
        rec.incr("runs");
        rec.add("runs", 2);
        rec.gauge("pairs", 10.0);
        rec.gauge("pairs", 12.0);
        rec.observe("lat", 0.001);
        rec.observe("lat", 0.002);
        let snap = rec.snapshot();
        assert_eq!(snap.counters, vec![("runs".to_owned(), 3)]);
        assert_eq!(snap.gauges, vec![("pairs".to_owned(), 12.0)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 2);
    }

    #[test]
    fn time_records_into_a_histogram_and_passes_the_result_through() {
        let rec = Recorder::enabled();
        let out = rec.time("req.lat", || 41 + 1);
        assert_eq!(out, 42);
        rec.time("req.lat", || ());
        let snap = rec.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "req.lat");
        assert_eq!(snap.histograms[0].1.count, 2);

        // Disabled: the closure still runs, nothing is recorded.
        let off = Recorder::disabled();
        assert_eq!(off.time("req.lat", || 7), 7);
        assert!(off.snapshot().histograms.is_empty());
    }

    #[test]
    fn spans_nest_by_explicit_parent_links_across_threads() {
        let rec = Recorder::enabled();
        {
            let stage = rec.span("train");
            std::thread::scope(|scope| {
                for name in ["train.b", "train.a"] {
                    let stage = &stage;
                    scope.spawn(move || {
                        let child = stage.child(name);
                        child.note("done");
                    });
                }
            });
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 3);
        let root = snap.spans.iter().find(|s| s.name == "train").expect("root");
        assert_eq!(root.parent, None);
        for c in snap.spans.iter().filter(|s| s.name != "train") {
            assert_eq!(c.parent, Some(root.id), "{}", c.name);
            assert_eq!(c.note.as_deref(), Some("done"));
        }
    }

    #[test]
    fn status_survives_to_the_record() {
        let rec = Recorder::enabled();
        {
            let s = rec.span("score");
            s.set_status(SpanStatus::Cut);
            s.note("timed out after 2s");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans[0].status, SpanStatus::Cut);
        assert_eq!(snap.spans[0].note.as_deref(), Some("timed out after 2s"));
    }

    #[test]
    fn clones_share_storage() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.incr("shared");
        assert_eq!(rec.snapshot().counters, vec![("shared".to_owned(), 1)]);
    }
}
