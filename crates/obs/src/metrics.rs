//! The metrics registry primitives: monotonic counters, last-write
//! gauges, and fixed-bucket histograms with quantile readout.
//!
//! Histograms store counts against a fixed ascending ladder of bucket
//! upper bounds, so recording is O(log buckets) with no per-value
//! allocation. Quantiles are reconstructed from the bucket counts by
//! placing every value at its bucket's upper bound and applying the
//! same linear interpolation as `fairem_stats::desc::quantile`
//! (`pos = q · (n − 1)`): when every recorded value lands exactly on a
//! bucket boundary the reconstruction is lossless and the two agree to
//! the bit.

/// A fixed-bucket histogram: ascending upper bounds plus an overflow
/// bucket, with exact `count`/`sum`/`min`/`max` tracked alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending bucket upper bounds; value `v` lands in the first
    /// bucket with `bounds[i] >= v`.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the overflow bucket
    /// for values above the last bound.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default duration ladder (seconds): a 1–2–5 progression from
    /// 1 µs to 100 s, the range suite stages actually span.
    pub fn durations() -> Histogram {
        let mut bounds = Vec::with_capacity(25);
        let mut decade = 1e-6;
        while decade < 100.0 * 1.5 {
            for m in [1.0, 2.0, 5.0] {
                bounds.push(decade * m);
            }
            decade *= 10.0;
        }
        bounds.truncate(bounds.len() - 2); // end the ladder at 1e2
        Histogram::with_bounds(&bounds)
    }

    /// Record one value. Non-finite values are counted in overflow (they
    /// carry no bucket information) but excluded from `min`/`max`.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v.is_finite() {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        let idx = self
            .bounds
            .partition_point(|&b| b < v)
            .min(self.bounds.len());
        let slot = if v.is_finite() && v <= self.bounds[self.bounds.len() - 1] {
            idx
        } else {
            self.bounds.len()
        };
        self.counts[slot] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest finite recorded value; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            f64::NAN
        }
    }

    /// Largest finite recorded value; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            f64::NAN
        }
    }

    /// The representative value of bucket `i`: its upper bound, or the
    /// observed maximum for the overflow bucket.
    fn representative(&self, i: usize) -> f64 {
        if i < self.bounds.len() {
            self.bounds[i]
        } else {
            self.max()
        }
    }

    /// The representative value at sorted rank `r` (0-based) of the
    /// reconstructed multiset.
    fn value_at_rank(&self, r: u64) -> f64 {
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if r < seen {
                return self.representative(i);
            }
        }
        self.representative(self.counts.len() - 1)
    }

    /// Linear-interpolated quantile of the reconstructed multiset,
    /// `q ∈ [0, 1]`; `NaN` when empty. Mirrors
    /// `fairem_stats::desc::quantile` (`pos = q · (n − 1)`, linear
    /// interpolation between the straddling ranks), so on
    /// boundary-aligned samples the two agree exactly.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return f64::NAN;
        }
        let pos = q * (self.count - 1) as f64;
        let lo = pos.floor() as u64;
        let hi = pos.ceil() as u64;
        let vlo = self.value_at_rank(lo);
        if lo == hi {
            vlo
        } else {
            let vhi = self.value_at_rank(hi);
            let frac = pos - lo as f64;
            vlo * (1.0 - frac) + vhi * frac
        }
    }

    /// An immutable point-in-time summary (the snapshot schema's
    /// histogram entry).
    pub fn summarize(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Arithmetic mean (`NaN` when empty).
    pub mean: f64,
    /// Smallest finite recorded value (`NaN` when empty).
    pub min: f64,
    /// Largest finite recorded value (`NaN` when empty).
    pub max: f64,
    /// Median (bucket-reconstructed).
    pub p50: f64,
    /// 95th percentile (bucket-reconstructed).
    pub p95: f64,
    /// 99th percentile (bucket-reconstructed).
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_buckets() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0, 5.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 4.9, 7.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 7.0);
        // Buckets: (<=1): 0.5, 1.0 | (<=2): 1.5, 2.0 | (<=5): 4.9 | over: 7.0
        assert_eq!(h.quantile(0.0), 1.0); // rank 0 reconstructs to bound 1.0
    }

    #[test]
    fn boundary_aligned_quantiles_are_exact() {
        let bounds: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let mut h = Histogram::with_bounds(&bounds);
        let sample = [1.0, 2.0, 2.0, 5.0, 9.0, 13.0, 20.0];
        for v in sample {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            // Reference: exact sorted-sample interpolation.
            let pos = q * (sample.len() - 1) as f64;
            let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
            let frac = pos - lo as f64;
            let want = sample[lo] * (1.0 - frac) + sample[hi] * frac;
            assert_eq!(h.quantile(q).to_bits(), want.to_bits(), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_yields_nan_summary() {
        let h = Histogram::durations();
        let s = h.summarize();
        assert_eq!(s.count, 0);
        assert!(s.mean.is_nan() && s.p50.is_nan() && s.min.is_nan());
    }

    #[test]
    fn duration_ladder_is_ascending_and_spans_the_range() {
        let h = Histogram::durations();
        assert!(h.bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(h.bounds.first().copied(), Some(1e-6));
        assert_eq!(h.bounds.last().copied(), Some(1e2));
    }

    #[test]
    fn overflow_and_nonfinite_values_are_accounted() {
        let mut h = Histogram::with_bounds(&[1.0]);
        h.record(100.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 100.0);
        // Overflow representative is the observed max.
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::with_bounds(&[2.0, 1.0]);
    }
}
