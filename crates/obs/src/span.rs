//! Completed span records and the deterministic tree renderer.
//!
//! Spans are collected into shared storage as they close, from whatever
//! thread ran them; parent links are explicit ids, never thread-local
//! guesses, so a span opened on the main thread and children opened on
//! pool workers stitch into one tree. Rendering orders siblings by
//! `(name, id)` — the same tree for any worker count, mirroring the
//! pool's chunk-index stitching (timings vary; structure does not).

/// Identifier of a live or completed span (unique within one recorder).
pub type SpanId = u64;

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// Ran to completion.
    Ok,
    /// Cut cooperatively by a budget expiry or cancellation — the span
    /// a `fairem-par` `Interrupt` record points at.
    Cut,
    /// Ended by an escaped (contained) panic.
    Panicked,
}

impl SpanStatus {
    /// Stable lowercase label used in snapshots and trace output.
    pub fn label(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Cut => "cut",
            SpanStatus::Panicked => "panicked",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the recorder.
    pub id: SpanId,
    /// Parent span id, if any.
    pub parent: Option<SpanId>,
    /// Span name (e.g. `"train.DTMatcher"`).
    pub name: String,
    /// Wall-clock duration in seconds.
    pub secs: f64,
    /// How the span ended.
    pub status: SpanStatus,
    /// Free-form annotation (e.g. an interrupt's elapsed/progress text).
    pub note: Option<String>,
}

/// Render completed spans as an indented tree, siblings ordered by
/// `(name, id)` so the structure is identical for any worker count.
/// Orphans (a parent that never closed, e.g. cut mid-flight) render as
/// roots.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    let known: std::collections::HashSet<SpanId> = spans.iter().map(|s| s.id).collect();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    let mut children: std::collections::HashMap<SpanId, Vec<&SpanRecord>> =
        std::collections::HashMap::new();
    for s in spans {
        match s.parent {
            Some(p) if known.contains(&p) => children.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    let order = |v: &mut Vec<&SpanRecord>| v.sort_by(|a, b| a.name.cmp(&b.name).then(a.id.cmp(&b.id)));
    order(&mut roots);
    for v in children.values_mut() {
        order(v);
    }
    fn emit(
        s: &SpanRecord,
        depth: usize,
        children: &std::collections::HashMap<SpanId, Vec<&SpanRecord>>,
        out: &mut String,
    ) {
        let indent = "  ".repeat(depth);
        let status = match s.status {
            SpanStatus::Ok => String::new(),
            other => format!("  [{}]", other.label()),
        };
        let note = s
            .note
            .as_deref()
            .map(|n| format!("  ({n})"))
            .unwrap_or_default();
        out.push_str(&format!(
            "{indent}{:<w$} {:>10.3}ms{status}{note}\n",
            s.name,
            s.secs * 1e3,
            w = 28usize.saturating_sub(indent.len()),
        ));
        for c in children.get(&s.id).into_iter().flatten() {
            emit(c, depth + 1, children, out);
        }
    }
    for r in &roots {
        emit(r, 0, &children, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: SpanId, parent: Option<SpanId>, name: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_owned(),
            secs: 0.001 * id as f64,
            status: SpanStatus::Ok,
            note: None,
        }
    }

    #[test]
    fn tree_orders_siblings_by_name_not_id() {
        let spans = vec![
            span(1, None, "train"),
            span(3, Some(1), "train.b"),
            span(2, Some(1), "train.a"),
        ];
        let t = render_tree(&spans);
        let a = t.find("train.a").expect("a rendered");
        let b = t.find("train.b").expect("b rendered");
        assert!(a < b, "{t}");
    }

    #[test]
    fn orphaned_children_render_as_roots() {
        let spans = vec![span(5, Some(99), "stranded")];
        let t = render_tree(&spans);
        assert!(t.starts_with("stranded"), "{t}");
    }

    #[test]
    fn statuses_and_notes_are_rendered() {
        let mut s = span(1, None, "score");
        s.status = SpanStatus::Cut;
        s.note = Some("timed out after 1s".into());
        let t = render_tree(&[s]);
        assert!(t.contains("[cut]"), "{t}");
        assert!(t.contains("(timed out after 1s)"), "{t}");
    }
}
