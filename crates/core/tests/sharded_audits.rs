//! Sharded-vs-unsharded equivalence suite: the out-of-core path
//! (`try_run_sharded`) must produce audits **bit for bit** identical to
//! the fully materialized session, for every shard count and
//! parallelism policy; checkpoints must resume without recomputing
//! committed shards; damaged or foreign checkpoint files must be
//! recomputed silently; and the memory budget must be a real fence —
//! the materialized path exceeds it while the sharded path completes
//! under it.

use std::fs;
use std::path::PathBuf;

use fairem_core::audit::{AuditConfig, AuditReport, Auditor};
use fairem_core::matcher::MatcherKind;
use fairem_core::pipeline::{FairEm360, SuiteBuilder};
use fairem_core::{MemBudget, Parallelism, Recorder, SuiteError};
use fairem_datasets::{wdc_products, GeneratedDataset, ProductsConfig};

const POLICIES: [Parallelism; 3] = [
    Parallelism::Off,
    Parallelism::Fixed(1),
    Parallelism::Fixed(4),
];

const FLEET: [MatcherKind; 3] = [
    MatcherKind::DtMatcher,
    MatcherKind::LogRegMatcher,
    MatcherKind::NbMatcher,
];

fn dataset() -> GeneratedDataset {
    wdc_products(&ProductsConfig::small())
}

fn config() -> fairem_core::SuiteConfig {
    let mut c = fairem_core::SuiteConfig::fast();
    c.prep.blocking_columns = vec!["title".to_owned()];
    c
}

fn builder(d: &GeneratedDataset) -> SuiteBuilder {
    let sensitive = d
        .sensitive
        .iter()
        .map(|c| fairem_core::sensitive::SensitiveAttr::categorical(c));
    FairEm360::builder()
        .tables(d.table_a.clone(), d.table_b.clone())
        .ground_truth(d.matches.clone())
        .sensitive(sensitive)
        .config(config())
}

fn auditor() -> Auditor {
    Auditor::new(AuditConfig::default())
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "fairem-sharded-test-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

fn counter(rec: &Recorder, name: &str) -> u64 {
    rec.snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

fn gauge(rec: &Recorder, name: &str) -> Option<f64> {
    rec.snapshot()
        .gauges
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
}

/// Bitwise comparison of two audit reports: every cell, every float,
/// compared on its bit pattern (`NaN` included).
fn assert_reports_identical(a: &AuditReport, b: &AuditReport, ctx: &str) {
    assert_eq!(a.matcher, b.matcher, "{ctx}: matcher");
    assert_eq!(
        a.matching_threshold.to_bits(),
        b.matching_threshold.to_bits(),
        "{ctx}: threshold"
    );
    assert_eq!(a.entries.len(), b.entries.len(), "{ctx}: cell count");
    for (i, (x, y)) in a.entries.iter().zip(&b.entries).enumerate() {
        let c = format!("{ctx}: {} cell {i} ({:?} {})", a.matcher, x.measure, x.group);
        assert_eq!(x.measure, y.measure, "{c}: measure");
        assert_eq!(x.group, y.group, "{c}: group");
        assert_eq!(x.support, y.support, "{c}: support");
        assert_eq!(x.unfair, y.unfair, "{c}: verdict");
        assert_eq!(x.group_value.to_bits(), y.group_value.to_bits(), "{c}: group value");
        assert_eq!(
            x.overall_value.to_bits(),
            y.overall_value.to_bits(),
            "{c}: overall value"
        );
        assert_eq!(x.disparity.to_bits(), y.disparity.to_bits(), "{c}: disparity");
    }
}

#[test]
fn sharded_audits_are_bit_for_bit_identical_to_unsharded() {
    let d = dataset();
    let aud = auditor();
    let baseline: Vec<AuditReport> = builder(&d)
        .build()
        .unwrap()
        .try_run(&FLEET)
        .unwrap()
        .audit_all(&aud);
    assert!(!baseline.is_empty());

    for shards in [2, 5] {
        for policy in POLICIES {
            let run = builder(&d)
                .parallelism(policy)
                .shards(shards)
                .build()
                .unwrap()
                .try_run_sharded(&FLEET)
                .unwrap();
            assert_eq!(run.shards(), shards);
            assert!(!run.is_degraded());
            let reports = run.audit_all(&aud);
            assert_eq!(reports.len(), baseline.len());
            for (a, b) in baseline.iter().zip(&reports) {
                assert_reports_identical(a, b, &format!("shards={shards} {policy:?}"));
            }
        }
    }
}

#[test]
fn single_shard_out_of_core_path_also_matches() {
    // shards=1 exercises the histogram/window machinery without
    // partitioning — a useful degenerate case.
    let d = dataset();
    let aud = auditor();
    let baseline = builder(&d).build().unwrap().try_run(&FLEET).unwrap();
    let run = builder(&d)
        .shards(1)
        .build()
        .unwrap()
        .try_run_sharded(&FLEET)
        .unwrap();
    assert_eq!(run.test_size(), baseline.test_size());
    for (a, b) in baseline.audit_all(&aud).iter().zip(run.audit_all(&aud)) {
        assert_reports_identical(a, &b, "shards=1");
    }
}

#[test]
fn resume_skips_every_committed_shard_and_reproduces_the_report() {
    let d = dataset();
    let aud = auditor();
    let dir = tmpdir("resume");
    let shards = 4;

    let first = builder(&d)
        .shards(shards)
        .checkpoint_dir(&dir)
        .observe(Recorder::enabled())
        .build()
        .unwrap()
        .try_run_sharded(&FLEET)
        .unwrap();
    assert_eq!(counter(first.recorder(), "ckpt.shards_written"), shards as u64);
    assert_eq!(counter(first.recorder(), "ckpt.shards_skipped"), 0);
    let first_reports = first.audit_all(&aud);

    let second = builder(&d)
        .shards(shards)
        .checkpoint_dir(&dir)
        .resume(true)
        .observe(Recorder::enabled())
        .build()
        .unwrap()
        .try_run_sharded(&FLEET)
        .unwrap();
    assert_eq!(counter(second.recorder(), "ckpt.shards_skipped"), shards as u64);
    assert_eq!(counter(second.recorder(), "ckpt.shards_written"), 0);
    assert_eq!(counter(second.recorder(), "ckpt.shards_recomputed"), 0);
    for (a, b) in first_reports.iter().zip(second.audit_all(&aud)) {
        assert_reports_identical(a, &b, "resume");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_or_torn_shard_files_are_recomputed_on_resume() {
    let d = dataset();
    let aud = auditor();
    let dir = tmpdir("corrupt");
    let shards = 3;

    let first = builder(&d)
        .shards(shards)
        .checkpoint_dir(&dir)
        .build()
        .unwrap()
        .try_run_sharded(&FLEET)
        .unwrap();
    let first_reports = first.audit_all(&aud);

    // Tear one shard file in half and scribble garbage over another.
    let torn = dir.join("shard-1.json");
    let text = fs::read_to_string(&torn).unwrap();
    fs::write(&torn, &text[..text.len() / 2]).unwrap();
    fs::write(dir.join("shard-2.json"), "{not json").unwrap();

    let second = builder(&d)
        .shards(shards)
        .checkpoint_dir(&dir)
        .resume(true)
        .observe(Recorder::enabled())
        .build()
        .unwrap()
        .try_run_sharded(&FLEET)
        .unwrap();
    assert_eq!(counter(second.recorder(), "ckpt.shards_skipped"), 1);
    assert_eq!(counter(second.recorder(), "ckpt.shards_recomputed"), 2);
    for (a, b) in first_reports.iter().zip(second.audit_all(&aud)) {
        assert_reports_identical(a, &b, "corrupt-resume");
    }
    // The recomputed shards were re-committed and are loadable again.
    assert_eq!(counter(second.recorder(), "ckpt.shards_written"), 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn changed_configuration_invalidates_the_run_key() {
    let d = dataset();
    let dir = tmpdir("runkey");
    let shards = 2;

    let _ = builder(&d)
        .shards(shards)
        .checkpoint_dir(&dir)
        .build()
        .unwrap()
        .try_run_sharded(&FLEET)
        .unwrap();

    // Same data, different matching threshold: nothing is reusable.
    let mut config = config();
    config.matching_threshold = 0.61;
    let second = builder(&d)
        .config(config)
        .shards(shards)
        .checkpoint_dir(&dir)
        .resume(true)
        .observe(Recorder::enabled())
        .build()
        .unwrap()
        .try_run_sharded(&FLEET)
        .unwrap();
    assert_eq!(counter(second.recorder(), "ckpt.shards_skipped"), 0);
    assert_eq!(counter(second.recorder(), "ckpt.shards_recomputed"), shards as u64);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn memory_budget_fences_the_materialized_path_but_not_the_sharded_one() {
    let d = dataset();

    // Measure the materialized path's tracked peak.
    let unlimited = builder(&d)
        .observe(Recorder::enabled())
        .build()
        .unwrap()
        .try_run(&FLEET)
        .unwrap();
    let peak = gauge(unlimited.recorder(), "mem.peak_bytes").unwrap() as u64;
    assert!(peak > 0, "cost model must account something");

    // One byte under that peak: the materialized path must refuse...
    let budget = MemBudget::bytes(peak - 1);
    let err = builder(&d)
        .mem_budget(budget)
        .build()
        .unwrap()
        .try_run(&FLEET)
        .unwrap_err();
    assert!(
        matches!(err, SuiteError::MemExceeded { .. }),
        "expected MemExceeded, got {err:?}"
    );

    // ...while the sharded path narrows its windows and completes,
    // staying under the budget, with an identical report.
    let aud = auditor();
    let sharded = builder(&d)
        .shards(3)
        .mem_budget(budget)
        .observe(Recorder::enabled())
        .build()
        .unwrap()
        .try_run_sharded(&FLEET)
        .unwrap();
    let sharded_peak = gauge(sharded.recorder(), "mem.peak_bytes").unwrap() as u64;
    assert!(
        sharded_peak <= peak - 1,
        "sharded peak {sharded_peak} must stay under the {peak}-byte fence"
    );
    for (a, b) in unlimited.audit_all(&aud).iter().zip(sharded.audit_all(&aud)) {
        assert_reports_identical(a, &b, "budgeted-sharded");
    }
}

#[test]
fn shard_boundary_accounting_balances_per_shard_and_after_merge() {
    // Satellite: kept + quarantined rows equal the input on both
    // tables, per-shard histogram totals equal the shard widths, and
    // the merged totals equal the test size — under every policy.
    let d = dataset();
    let dir = tmpdir("accounting");
    let shards = 4;
    for policy in POLICIES {
        let run = builder(&d)
            .parallelism(policy)
            .shards(shards)
            .checkpoint_dir(&dir)
            .build()
            .unwrap()
            .try_run_sharded(&FLEET)
            .unwrap();

        let kept_a = run.quarantine().from_table("tableA");
        let kept_b = run.quarantine().from_table("tableB");
        assert_eq!(
            run.quarantine().len(),
            kept_a + kept_b,
            "quarantine is exactly the two tables' rejects"
        );

        // Per-shard totals from the committed checkpoint files.
        let plan = fairem_core::ShardPlan::partition(run.test_size(), shards);
        let store = fairem_core::CheckpointStore::open(&dir, read_run_key(&dir), shards, true)
            .unwrap();
        let mut summed = 0u64;
        for shard in plan.shards() {
            let rec = store.load_shard(shard.index).unwrap();
            for (name, counts) in &rec.matchers {
                assert_eq!(
                    counts.total(),
                    shard.len() as u64,
                    "{policy:?}: shard {} histogram for {name} must cover its window exactly",
                    shard.index
                );
            }
            summed += rec.matchers[0].1.total();
        }
        assert_eq!(summed, run.test_size() as u64, "{policy:?}: merge balance");
        for name in run.matcher_names() {
            let merged = run.counts(name).unwrap();
            assert_eq!(merged.total(), run.test_size() as u64, "{policy:?}: {name}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Pull the committed run key back out of the manifest, so the test can
/// reopen the store the way a resuming process would.
fn read_run_key(dir: &std::path::Path) -> u64 {
    let text = fs::read_to_string(dir.join("manifest.json")).unwrap();
    let v = fairem_csvio::Json::parse(&text).unwrap();
    v.get("run_key").unwrap().as_str().unwrap().parse().unwrap()
}
