//! Old-vs-new equivalence suite: the deprecated string-path feature
//! kernels and the columnar batch kernels must agree **bit for bit** on
//! real generated datasets, for every parallelism policy. These tests
//! are the refactor's safety net — any drift between the scalar
//! reference path and the interned hot path fails here first.

#![allow(deprecated)] // comparing the deprecated shims against the new API is the point

use fairem_core::blocking::{
    sorted_neighborhood, token_blocking, Blocker, SortedNeighborhood, TokenBlocking,
};
use fairem_core::features::FeatureGenerator;
use fairem_core::schema::Table;
use fairem_core::{Exec, PairBatch, ParOutcome, Parallelism, WorkerPool};
use fairem_datasets::{
    citations, wdc_products, CitationsConfig, GeneratedDataset, ProductsConfig,
};
use fairem_ml::Matrix;
use fairem_neural::HashVocab;

/// The parallelism policies the results must be invariant under.
const POLICIES: [Parallelism; 3] = [
    Parallelism::Off,
    Parallelism::Fixed(1),
    Parallelism::Fixed(4),
];

fn datasets() -> Vec<GeneratedDataset> {
    vec![
        wdc_products(&ProductsConfig::small()),
        citations(&CitationsConfig::small()),
    ]
}

fn tables(d: &GeneratedDataset) -> (Table, Table) {
    let a = Table::from_csv(d.table_a.clone()).unwrap();
    let b = Table::from_csv(d.table_b.clone()).unwrap();
    (a, b)
}

fn generator(d: &GeneratedDataset, a: &Table, b: &Table) -> FeatureGenerator {
    let exclude: Vec<&str> = d.sensitive.iter().map(String::as_str).collect();
    FeatureGenerator::build(a, b, &exclude)
}

/// A deterministic pair sample spanning both tables, including repeated
/// rows and self-ish pairs, so every kernel sees reused cache entries.
fn sample_pairs(a: &Table, b: &Table, n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i % a.len(), (i * 7) % b.len())).collect()
}

fn complete(outcome: ParOutcome<Matrix>) -> Matrix {
    match outcome {
        ParOutcome::Complete(m) => m,
        ParOutcome::Interrupted { interrupt, .. } => {
            unreachable!("inert exec must not interrupt: {interrupt}")
        }
    }
}

fn assert_bitwise_eq(old: &Matrix, new: &Matrix, ctx: &str) {
    assert_eq!(old.rows(), new.rows(), "{ctx}: row count");
    for r in 0..old.rows() {
        let (or, nr) = (old.row(r), new.row(r));
        assert_eq!(or.len(), nr.len(), "{ctx}: width of row {r}");
        for (c, (x, y)) in or.iter().zip(nr.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: row {r} col {c}: old {x:?} vs new {y:?}"
            );
        }
    }
}

#[test]
fn feature_matrices_are_bit_for_bit_identical_across_paths_and_policies() {
    for d in datasets() {
        let (a, b) = tables(&d);
        let gen = generator(&d, &a, &b);
        let pairs = sample_pairs(&a, &b, 300);

        // The deprecated per-pair string path is the reference.
        let reference = gen.matrix_pairs(&a, &b, &pairs);
        for policy in POLICIES {
            let pool = WorkerPool::with_parallelism(policy);
            let pooled = gen
                .matrix_with(&a, &b, &pairs, &pool)
                .unwrap_or_else(|p| panic!("{}: old pooled path panicked: {p}", d.name));
            assert_bitwise_eq(&reference, &pooled, &format!("{} old/{policy:?}", d.name));

            let exec = Exec::with_pool(pool);
            let new = complete(gen.matrix(&PairBatch::new(&pairs), &exec));
            assert_bitwise_eq(&reference, &new, &format!("{} columnar/{policy:?}", d.name));
        }
    }
}

#[test]
fn blocked_candidate_matrices_agree_end_to_end() {
    // Same check over the *actual* blocked candidate sets, so the
    // equivalence covers the row distribution the pipeline really sees.
    for d in datasets() {
        let (a, b) = tables(&d);
        let gen = generator(&d, &a, &b);
        let pairs = token_blocking(&a, &b, &["title"], 50);
        assert!(!pairs.is_empty(), "{}: blocking produced no candidates", d.name);

        let reference = gen.matrix_pairs(&a, &b, &pairs);
        let new = complete(gen.matrix(&PairBatch::new(&pairs), &Exec::default()));
        assert_bitwise_eq(&reference, &new, &format!("{} blocked", d.name));
    }
}

#[test]
fn candidate_sets_are_identical_across_blockers_and_policies() {
    for d in datasets() {
        let (a, b) = tables(&d);
        for max_block in [2, 10, 50] {
            let reference = token_blocking(&a, &b, &["title"], max_block);
            let blocker = TokenBlocking {
                columns: vec!["title".to_owned()],
                max_block,
            };
            for policy in POLICIES {
                let exec = Exec::with_pool(WorkerPool::with_parallelism(policy));
                assert_eq!(
                    reference,
                    blocker.candidates(&a, &b, &exec),
                    "{} token/{policy:?}/max_block {max_block}",
                    d.name
                );
            }
        }

        let reference = sorted_neighborhood(&a, &b, "title", 8);
        let blocker = SortedNeighborhood {
            key_column: "title".to_owned(),
            window: 8,
        };
        for policy in POLICIES {
            let exec = Exec::with_pool(WorkerPool::with_parallelism(policy));
            assert_eq!(
                reference,
                blocker.candidates(&a, &b, &exec),
                "{} sorted/{policy:?}",
                d.name
            );
        }
    }
}

#[test]
fn interned_tokenization_matches_the_per_pair_path() {
    for d in datasets() {
        let (a, b) = tables(&d);
        let gen = generator(&d, &a, &b);
        let pairs = sample_pairs(&a, &b, 120);
        let vocab = HashVocab::new(256);

        let batch = gen.tokenize_all(&PairBatch::new(&pairs), &vocab);
        assert_eq!(batch.len(), pairs.len());
        for (i, &(ra, rb)) in pairs.iter().enumerate() {
            let single = gen.tokenize(&a, ra, &b, rb, &vocab);
            assert_eq!(batch[i], single, "{}: pair {i} ({ra}, {rb})", d.name);
        }
    }
}

#[test]
fn scalar_features_match_the_batch_row_by_row() {
    // One more angle: the public per-pair `features` accessor against
    // the batch matrix, pinning the scalar reference path itself.
    for d in datasets() {
        let (a, b) = tables(&d);
        let gen = generator(&d, &a, &b);
        let pairs = sample_pairs(&a, &b, 60);
        let m = complete(gen.matrix(&PairBatch::new(&pairs), &Exec::default()));
        for (i, &(ra, rb)) in pairs.iter().enumerate() {
            let f = gen.features(&a, ra, &b, rb);
            let row = m.row(i);
            assert_eq!(f.len(), row.len());
            for (c, (x, y)) in f.iter().zip(row.iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{}: pair {i} col {c}: scalar {x:?} vs batch {y:?}",
                    d.name
                );
            }
        }
    }
}
