//! Data-repair resolution: instead of switching matchers (the ensemble
//! path) or recalibrating scores (the threshold path), repair the
//! *training data* by oversampling the disadvantaged group's pairs —
//! the augmentation-style mitigation of the paper's refs \[12\] and \[16\]
//! (AUC-based fairness via data augmentation; fairness-aware data
//! preparation).

use crate::sensitive::{GroupId, GroupVector};

/// Expand training indices so that pairs legitimate for the target
/// group appear `factor` times (others once). With `positives_only`,
/// only the group's *matching* pairs are replicated — the right lever
/// when the unfairness is a recall (TPRP) gap.
///
/// Returns an index multiset over `0..labels.len()`, stable-ordered
/// (original order, replicas adjacent) so retraining stays
/// deterministic.
///
/// # Panics
/// If `factor == 0` or input lengths disagree.
pub fn oversample_group(
    labels: &[f64],
    left: &[GroupVector],
    right: &[GroupVector],
    group: GroupId,
    factor: usize,
    positives_only: bool,
) -> Vec<usize> {
    assert!(factor >= 1, "oversampling factor must be at least 1");
    assert_eq!(labels.len(), left.len(), "labels/left length mismatch");
    assert_eq!(labels.len(), right.len(), "labels/right length mismatch");
    let mut out = Vec::with_capacity(labels.len() * 2);
    for i in 0..labels.len() {
        let legit = left[i].contains(group) || right[i].contains(group);
        let eligible = legit && (!positives_only || labels[i] == 1.0);
        let copies = if eligible { factor } else { 1 };
        for _ in 0..copies {
            out.push(i);
        }
    }
    out
}

/// Summary of a repair experiment: the audited disparity before and
/// after retraining on repaired data.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Matcher retrained.
    pub matcher: String,
    /// Group targeted by the repair.
    pub group: String,
    /// Oversampling factor applied.
    pub factor: usize,
    /// Disparity before the repair.
    pub disparity_before: f64,
    /// Disparity after the repair.
    pub disparity_after: f64,
}

impl RepairOutcome {
    /// Did the repair reduce the disparity?
    pub fn improved(&self) -> bool {
        self.disparity_after < self.disparity_before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gv(bits: u64) -> GroupVector {
        GroupVector(bits)
    }

    #[test]
    fn oversamples_only_group_positives() {
        let labels = [1.0, 0.0, 1.0, 0.0];
        let left = [gv(0b01), gv(0b01), gv(0b10), gv(0b10)];
        let right = [gv(0b01), gv(0b10), gv(0b10), gv(0b10)];
        let idx = oversample_group(&labels, &left, &right, GroupId(0), 3, true);
        // Pair 0 (cn positive) ×3; pair 1 (cn but negative) ×1; rest ×1.
        assert_eq!(idx, vec![0, 0, 0, 1, 2, 3]);
    }

    #[test]
    fn oversamples_all_group_pairs_when_asked() {
        let labels = [1.0, 0.0];
        let left = [gv(0b01), gv(0b01)];
        let right = [gv(0b01), gv(0b01)];
        let idx = oversample_group(&labels, &left, &right, GroupId(0), 2, false);
        assert_eq!(idx, vec![0, 0, 1, 1]);
    }

    #[test]
    fn factor_one_is_identity() {
        let labels = [1.0, 0.0, 1.0];
        let left = [gv(1), gv(1), gv(1)];
        let right = [gv(1), gv(1), gv(1)];
        let idx = oversample_group(&labels, &left, &right, GroupId(0), 1, true);
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn outcome_improvement_flag() {
        let o = RepairOutcome {
            matcher: "X".into(),
            group: "cn".into(),
            factor: 3,
            disparity_before: 0.3,
            disparity_after: 0.1,
        };
        assert!(o.improved());
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn zero_factor_rejected() {
        let _ = oversample_group(&[1.0], &[gv(1)], &[gv(1)], GroupId(0), 0, true);
    }
}
