//! Ensemble-based resolution (paper §2.3 + Figures 6/7): assign a
//! possibly different matcher to each group, explore the `mᵏ` assignment
//! space, and surface the fairness/performance Pareto frontier for the
//! user to pick a resolution from.

use fairem_obs::{Recorder, SpanStatus};
use fairem_par::{CancelToken, Interrupt, ParOutcome, Parallelism, WorkerPool};

use crate::fairness::{Disparity, FairnessMeasure};
use crate::sensitive::{GroupId, GroupSpace};
use crate::workload::Workload;

/// One ensemble strategy: a matcher per group, with its aggregate
/// fairness and performance.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Matcher index per group (into [`EnsembleExplorer::matchers`]).
    pub assignment: Vec<usize>,
    /// Worst-group performance `A` (paper criterion (a)): the measure's
    /// worst value across groups — minimum for higher-is-better
    /// measures, maximum for lower-is-better ones.
    pub performance: f64,
    /// Unfairness `F`: the maximum per-group disparity against the
    /// support-weighted mean of the per-group values.
    pub unfairness: f64,
}

/// Precomputed per-(matcher, group) values enabling cheap enumeration of
/// the assignment space.
#[derive(Debug, Clone)]
pub struct EnsembleExplorer {
    matchers: Vec<String>,
    groups: Vec<String>,
    /// `values[m][g]` — the measure's value for matcher `m` on group `g`.
    values: Vec<Vec<f64>>,
    /// Legitimate-correspondence counts per group (weights).
    supports: Vec<f64>,
    measure: FairnessMeasure,
    disparity: Disparity,
    parallelism: Parallelism,
    cancel: CancelToken,
    observe: Recorder,
}

impl EnsembleExplorer {
    /// Build the explorer from per-matcher workloads (same correspondence
    /// set, different scores) over the chosen groups.
    ///
    /// Non-finite measure values (a group with no support for some
    /// matcher) are kept as `NaN` rather than rejected: [`Self::evaluate`]
    /// folds over finite values only, and NaN points can never dominate
    /// or enter the Pareto frontier — "insufficient evidence" degrades
    /// gracefully instead of aborting the exploration.
    ///
    /// # Panics
    /// If inputs are empty.
    pub fn build(
        matcher_workloads: &[(String, &Workload)],
        space: &GroupSpace,
        groups: &[GroupId],
        measure: FairnessMeasure,
        disparity: Disparity,
    ) -> EnsembleExplorer {
        assert!(!matcher_workloads.is_empty(), "need at least one matcher");
        assert!(!groups.is_empty(), "need at least one group");
        let mut values = Vec::with_capacity(matcher_workloads.len());
        for (_name, w) in matcher_workloads {
            let row: Vec<f64> = groups
                .iter()
                .map(|&g| {
                    let v = measure.value(&w.group_confusion(g));
                    if v.is_finite() {
                        v
                    } else {
                        f64::NAN
                    }
                })
                .collect();
            values.push(row);
        }
        let supports = groups
            .iter()
            .map(|&g| matcher_workloads[0].1.group_support(g) as f64)
            .collect();
        EnsembleExplorer {
            matchers: matcher_workloads.iter().map(|(n, _)| n.clone()).collect(),
            groups: groups.iter().map(|&g| space.name(g).to_owned()).collect(),
            values,
            supports,
            measure,
            disparity,
            parallelism: Parallelism::Off,
            cancel: CancelToken::inert(),
            observe: Recorder::disabled(),
        }
    }

    /// Set the worker-pool policy for [`Self::pareto_frontier`]'s
    /// assignment enumeration. The frontier is identical for every
    /// policy; only enumeration wall-clock changes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> EnsembleExplorer {
        self.parallelism = parallelism;
        self
    }

    /// Cancellation token observed during assignment enumeration (a
    /// session passes its run token through). With the default inert
    /// token the enumeration always completes.
    pub fn with_cancel(mut self, cancel: CancelToken) -> EnsembleExplorer {
        self.cancel = cancel;
        self
    }

    /// Observability recorder for the enumeration (a session passes its
    /// run recorder through): each frontier exploration records an
    /// `ensemble` span plus the assignment-space size. The default
    /// disabled recorder keeps enumeration bit-for-bit inert.
    pub fn with_observe(mut self, recorder: Recorder) -> EnsembleExplorer {
        self.observe = recorder;
        self
    }

    /// Matcher names, index-aligned with assignments.
    pub fn matchers(&self) -> &[String] {
        &self.matchers
    }

    /// Group names, index-aligned with assignment positions.
    pub fn groups(&self) -> &[String] {
        &self.groups
    }

    /// The measure the space is scored under.
    pub fn measure(&self) -> FairnessMeasure {
        self.measure
    }

    /// The per-group value of one matcher (for reporting).
    pub fn value(&self, matcher: usize, group: usize) -> f64 {
        self.values[matcher][group]
    }

    /// Evaluate one assignment into a [`ParetoPoint`].
    pub fn evaluate(&self, assignment: &[usize]) -> ParetoPoint {
        assert_eq!(
            assignment.len(),
            self.groups.len(),
            "assignment arity mismatch"
        );
        let vals: Vec<f64> = assignment
            .iter()
            .enumerate()
            .map(|(g, &m)| self.values[m][g])
            .collect();
        let higher = self.measure.higher_is_better();
        // Fold only finite values: groups with undefined measures carry
        // no evidence, and must neither poison the fold (NaN) nor decide
        // it. An assignment with no finite value at all is NaN overall,
        // which `total_cmp` sorts last and the frontier never admits.
        let finite = vals.iter().copied().filter(|v| v.is_finite());
        let performance = if vals.iter().all(|v| !v.is_finite()) {
            f64::NAN
        } else if higher {
            finite.fold(f64::INFINITY, f64::min)
        } else {
            finite.fold(f64::NEG_INFINITY, f64::max)
        };
        // Reference: support-weighted mean of the finite per-group values.
        let (wsum, wtotal) = vals.iter().zip(&self.supports).fold(
            (0.0_f64, 0.0_f64),
            |(num, den), (&v, &s)| {
                if v.is_finite() {
                    (num + v * s, den + s)
                } else {
                    (num, den)
                }
            },
        );
        let reference = wsum / wtotal; // NaN when nothing is finite
        let unfairness = vals
            .iter()
            .map(|&v| self.disparity.compute(reference, v, higher))
            .fold(0.0, f64::max);
        ParetoPoint {
            assignment: assignment.to_vec(),
            performance,
            unfairness,
        }
    }

    /// The per-group-optimal assignment (paper's first strategy,
    /// `E(g) = argmax_M A_M(g)` — argmin for lower-is-better measures).
    pub fn best_per_group(&self) -> Vec<usize> {
        let higher = self.measure.higher_is_better();
        (0..self.groups.len())
            .map(|g| {
                (0..self.matchers.len())
                    .max_by(|&a, &b| {
                        let (va, vb) = (self.values[a][g], self.values[b][g]);
                        if higher {
                            va.total_cmp(&vb)
                        } else {
                            vb.total_cmp(&va)
                        }
                    })
                    .unwrap_or(0) // matchers is non-empty (asserted in build)
            })
            .collect()
    }

    /// Exhaustively enumerate all `mᵏ` assignments and return the Pareto
    /// frontier (non-dominated in ⟨unfairness ↓, performance ↑/↓⟩),
    /// sorted by unfairness ascending.
    ///
    /// # Panics
    /// If the assignment space exceeds `10⁷` points; restrict groups or
    /// matchers first.
    pub fn pareto_frontier(&self) -> Vec<ParetoPoint> {
        self.try_pareto_frontier().0
    }

    /// Cancellable [`Self::pareto_frontier`]: when the explorer's token
    /// (see [`Self::with_cancel`]) trips mid-enumeration, returns the
    /// frontier of the contiguous prefix of assignments evaluated so
    /// far, plus the [`Interrupt`] record — a usable partial result
    /// instead of an all-or-nothing abort.
    ///
    /// # Panics
    /// If the assignment space exceeds `10⁷` points; restrict groups or
    /// matchers first.
    pub fn try_pareto_frontier(&self) -> (Vec<ParetoPoint>, Option<Interrupt>) {
        let m = self.matchers.len();
        let k = self.groups.len();
        assert!(
            (m as f64).powi(k as i32) <= 1e7,
            "assignment space too large: {m}^{k}"
        );
        let total = m.pow(k as u32);
        let higher = self.measure.higher_is_better();
        let span = self.observe.span("ensemble");
        span.note(format!("{m}^{k} = {total} assignments"));
        self.observe.gauge("ensemble.assignments", total as f64);
        // Candidate evaluation fans out over the pool: each linear index
        // decodes (mixed-radix, position 0 fastest) to exactly the
        // assignment the old odometer visited at that step, and the pool
        // returns points in index order — so the point sequence, and
        // therefore the frontier, is identical for any worker count.
        let pool =
            WorkerPool::with_parallelism(self.parallelism).observe(self.observe.clone());
        let outcome = pool.par_map_within(total, &self.cancel, |idx| {
            let mut assignment = vec![0usize; k];
            let mut rest = idx;
            for slot in assignment.iter_mut() {
                *slot = rest % m;
                rest /= m;
            }
            self.evaluate(&assignment)
        });
        match outcome {
            ParOutcome::Complete(points) => (frontier(points, higher), None),
            ParOutcome::Interrupted {
                done, interrupt, ..
            } => {
                span.set_status(SpanStatus::Cut);
                span.note(interrupt.to_string());
                (frontier(done, higher), Some(interrupt))
            }
        }
    }

    /// The assignment minimizing unfairness (ties broken by performance)
    /// — the paper's "optimize for fairness" strategy. Derived from the
    /// frontier, whose first element is minimal-unfairness by ordering.
    /// When every assignment is evidence-free (all-NaN performance, so
    /// the frontier is empty), falls back to the all-zeros assignment so
    /// callers still get a well-formed point.
    pub fn min_unfairness(&self) -> ParetoPoint {
        self.pareto_frontier()
            .into_iter()
            .next()
            .unwrap_or_else(|| self.evaluate(&vec![0; self.groups.len()]))
    }

    /// Render an assignment as `group → matcher` lines.
    pub fn describe(&self, assignment: &[usize]) -> String {
        assignment
            .iter()
            .enumerate()
            .map(|(g, &m)| format!("{} → {}", self.groups[g], self.matchers[m]))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Keep the non-dominated points: minimal unfairness, maximal (oriented)
/// performance.
fn frontier(mut points: Vec<ParetoPoint>, higher_is_better: bool) -> Vec<ParetoPoint> {
    // Orient performance so that bigger is always better.
    let perf = |p: &ParetoPoint| {
        if higher_is_better {
            p.performance
        } else {
            -p.performance
        }
    };
    points.sort_by(|a, b| {
        a.unfairness
            .total_cmp(&b.unfairness)
            .then(perf(b).total_cmp(&perf(a)))
    });
    let mut out: Vec<ParetoPoint> = Vec::new();
    let mut best_perf = f64::NEG_INFINITY;
    for p in points {
        if perf(&p) > best_perf {
            best_perf = perf(&p);
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Table;
    use crate::sensitive::{GroupVector, SensitiveAttr};
    use crate::workload::Correspondence;
    use fairem_csvio::parse_csv_str;

    fn space() -> GroupSpace {
        let t = Table::from_csv(parse_csv_str("id,g\na1,cn\na2,us\n").unwrap()).unwrap();
        GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")])
    }

    fn c(score: f64, truth: bool, bits: u64) -> Correspondence {
        Correspondence {
            a_row: 0,
            b_row: 0,
            score,
            truth,
            left: GroupVector(bits),
            right: GroupVector(bits),
        }
    }

    /// Matcher A: perfect on us, poor on cn. Matcher B: decent on both.
    fn workloads() -> (Workload, Workload) {
        let mut a_items = Vec::new();
        let mut b_items = Vec::new();
        for i in 0..10 {
            // cn true matches: A finds 3/10, B finds 8/10.
            a_items.push(c(if i < 3 { 0.9 } else { 0.1 }, true, 0b01));
            b_items.push(c(if i < 8 { 0.9 } else { 0.1 }, true, 0b01));
            // us true matches: A finds 10/10, B finds 8/10.
            a_items.push(c(0.9, true, 0b10));
            b_items.push(c(if i < 8 { 0.9 } else { 0.1 }, true, 0b10));
            // negatives, both correct.
            a_items.push(c(0.1, false, 0b01));
            b_items.push(c(0.1, false, 0b01));
        }
        (Workload::new(a_items, 0.5), Workload::new(b_items, 0.5))
    }

    fn explorer() -> EnsembleExplorer {
        let (wa, wb) = workloads();
        let space = space();
        let groups: Vec<GroupId> = space.ids().collect();
        // Leak the workloads for 'static-free borrows in the test.
        let wa = Box::leak(Box::new(wa));
        let wb = Box::leak(Box::new(wb));
        EnsembleExplorer::build(
            &[("A".to_owned(), &*wa), ("B".to_owned(), &*wb)],
            &space,
            &groups,
            FairnessMeasure::TruePositiveRateParity,
            Disparity::Subtraction,
        )
    }

    #[test]
    fn values_match_workload_confusions() {
        let e = explorer();
        assert!((e.value(0, 0) - 0.3).abs() < 1e-12); // A on cn
        assert!((e.value(0, 1) - 1.0).abs() < 1e-12); // A on us
        assert!((e.value(1, 0) - 0.8).abs() < 1e-12); // B on cn
        assert!((e.value(1, 1) - 0.8).abs() < 1e-12); // B on us
    }

    #[test]
    fn best_per_group_picks_the_winner() {
        let e = explorer();
        // cn → B (0.8 > 0.3), us → A (1.0 > 0.8).
        assert_eq!(e.best_per_group(), vec![1, 0]);
    }

    #[test]
    fn evaluate_computes_worst_group_and_disparity() {
        let e = explorer();
        let p = e.evaluate(&[0, 0]); // all-A
        assert!((p.performance - 0.3).abs() < 1e-12);
        assert!(p.unfairness > 0.2, "{}", p.unfairness);
        let q = e.evaluate(&[1, 1]); // all-B: equal groups → fair
        assert!((q.performance - 0.8).abs() < 1e-12);
        assert!(q.unfairness < 1e-9);
    }

    #[test]
    fn frontier_is_non_dominated_and_sorted() {
        let e = explorer();
        let f = e.pareto_frontier();
        assert!(!f.is_empty());
        for w in f.windows(2) {
            assert!(w[0].unfairness <= w[1].unfairness);
            assert!(w[0].performance < w[1].performance + 1e-12);
        }
        // The all-B point (perf .8, unfairness 0) must be on the frontier.
        assert!(f
            .iter()
            .any(|p| (p.performance - 0.8).abs() < 1e-9 && p.unfairness < 1e-9));
        // The mixed cn→B, us→A point dominates all-A.
        let all_a = e.evaluate(&[0, 0]);
        for p in &f {
            assert!(p.unfairness <= all_a.unfairness + 1e-12 || p.performance > all_a.performance);
        }
    }

    #[test]
    fn frontier_is_identical_for_any_worker_count() {
        let e = explorer();
        let seq = e.clone().with_parallelism(Parallelism::Off).pareto_frontier();
        let par = e.with_parallelism(Parallelism::Fixed(4)).pareto_frontier();
        assert_eq!(seq, par);
    }

    #[test]
    fn min_unfairness_is_frontier_head() {
        let e = explorer();
        let m = e.min_unfairness();
        let f = e.pareto_frontier();
        assert_eq!(m, f[0]);
        assert!(m.unfairness <= f.last().unwrap().unfairness);
    }

    #[test]
    fn describe_renders_assignment() {
        let e = explorer();
        let s = e.describe(&[1, 0]);
        assert_eq!(s, "cn → B, us → A");
    }

    #[test]
    fn lower_is_better_measures_orient_the_frontier() {
        // FPR: matcher A has low FPR on us, high on cn; B moderate on both.
        let mut a_items = Vec::new();
        let mut b_items = Vec::new();
        for i in 0..10 {
            // cn negatives: A false-matches 6/10, B 2/10.
            a_items.push(c(if i < 6 { 0.9 } else { 0.1 }, false, 0b01));
            b_items.push(c(if i < 2 { 0.9 } else { 0.1 }, false, 0b01));
            // us negatives: A false-matches 0/10, B 2/10.
            a_items.push(c(0.1, false, 0b10));
            b_items.push(c(if i < 2 { 0.9 } else { 0.1 }, false, 0b10));
            // some true matches so rates exist.
            a_items.push(c(0.9, true, 0b01));
            b_items.push(c(0.9, true, 0b01));
        }
        let wa = Workload::new(a_items, 0.5);
        let wb = Workload::new(b_items, 0.5);
        let space = space();
        let groups: Vec<GroupId> = space.ids().collect();
        let e = EnsembleExplorer::build(
            &[("A".to_owned(), &wa), ("B".to_owned(), &wb)],
            &space,
            &groups,
            FairnessMeasure::FalsePositiveRateParity,
            Disparity::Subtraction,
        );
        // Performance = worst (max) FPR; all-B is 0.2 everywhere.
        let all_b = e.evaluate(&[1, 1]);
        assert!((all_b.performance - 0.2).abs() < 1e-12);
        assert!(all_b.unfairness < 1e-9);
        let all_a = e.evaluate(&[0, 0]);
        assert!((all_a.performance - 0.6).abs() < 1e-12); // cn FPR dominates
                                                          // Support-weighted reference is 0.4; cn deviates +0.2 adversely.
        assert!(
            (all_a.unfairness - 0.2).abs() < 1e-9,
            "{}",
            all_a.unfairness
        );
        // Frontier: performance axis decreases as unfairness is relaxed
        // only in the *better* direction (smaller max FPR is better).
        let f = e.pareto_frontier();
        for w in f.windows(2) {
            assert!(w[0].unfairness <= w[1].unfairness);
            assert!(
                w[0].performance >= w[1].performance - 1e-12,
                "orientation broken"
            );
        }
        // The mixed cn→B, us→A strategy achieves max FPR 0.2 with some
        // disparity; all-B dominates or ties it on both axes.
        let mixed = e.evaluate(&[1, 0]);
        assert!(mixed.performance >= all_b.performance - 1e-12);
    }

    #[test]
    fn resolution_beats_single_matcher_on_fairness() {
        // The demo's Fig. 7 claim: the ensemble resolves unfairness that
        // any single matcher exhibits... here all-A is unfair, and the
        // frontier offers strictly fairer alternatives.
        let e = explorer();
        let all_a = e.evaluate(&[0, 0]);
        let best = e.min_unfairness();
        assert!(best.unfairness < all_a.unfairness);
    }
}
