//! Unfairness explanations (paper §2.3, "Explanation" + Figure 5).
//!
//! Four local, model-agnostic perspectives on *why* a matcher is unfair
//! toward a queried (measure, group): subgroup drill-down, measure
//! (confusion-matrix) decomposition, group representation, and sampled
//! problematic examples.

use fairem_rng::rngs::StdRng;
use fairem_rng::seq::SliceRandom;
use fairem_rng::SeedableRng;

use crate::confusion::ConfusionMatrix;
use crate::fairness::{Disparity, FairnessMeasure};
use crate::schema::Table;
use crate::sensitive::{GroupId, GroupSpace};
use crate::workload::Workload;

/// One row of a subgroup drill-down.
#[derive(Debug, Clone)]
pub struct SubgroupRow {
    /// Subgroup display name (e.g. `"black-female"`).
    pub group: String,
    /// Subgroup id.
    pub group_id: GroupId,
    /// The measure's value on the subgroup.
    pub value: f64,
    /// Disparity of the subgroup against the overall value.
    pub disparity: f64,
    /// Legitimate correspondences for the subgroup.
    pub support: usize,
}

/// Subgroup-based explanation: the unfair group's children in the
/// subgroup lattice, ranked by disparity, exposing which granular
/// subgroup drives the parent's unfairness.
#[derive(Debug, Clone)]
pub struct SubgroupExplanation {
    /// The queried (parent) group.
    pub parent: String,
    /// Measure being explained.
    pub measure: FairnessMeasure,
    /// Child subgroups, worst disparity first.
    pub rows: Vec<SubgroupRow>,
}

/// Measure-based explanation: the group's confusion matrix and derived
/// rates side by side with the overall workload's.
#[derive(Debug, Clone)]
pub struct MeasureExplanation {
    /// The queried group.
    pub group: String,
    /// Measure being explained.
    pub measure: FairnessMeasure,
    /// The group's confusion matrix (both-sides counting).
    pub confusion: ConfusionMatrix,
    /// `(rate name, group value, overall value)` triplets.
    pub rates: Vec<(&'static str, f64, f64)>,
    /// Plain-language summary of the dominant contributing factor.
    pub narrative: String,
}

/// Group-representation explanation: the group's share of the workload
/// overall and conditioned on the match/non-match classes — exposing
/// representation skew, the class-imbalance-sensitive bias source.
#[derive(Debug, Clone)]
pub struct RepresentationExplanation {
    /// The queried group.
    pub group: String,
    /// Share of correspondences legitimate for the group.
    pub share_overall: f64,
    /// Share among true matches.
    pub share_matches: f64,
    /// Share among true non-matches.
    pub share_nonmatches: f64,
    /// Same three shares on the training workload, when available.
    pub train_shares: Option<(f64, f64, f64)>,
    /// Chi-squared test of independence between group membership and
    /// the match class on the evaluation workload: `(statistic,
    /// p-value)`. A small p-value means the group is significantly
    /// over/under-represented in one class — the representation-skew
    /// signal. `None` when the contingency table is degenerate.
    pub class_dependence: Option<(f64, f64)>,
}

/// One sampled problematic pair.
#[derive(Debug, Clone)]
pub struct ExamplePair {
    /// Rendered left record.
    pub left: String,
    /// Rendered right record.
    pub right: String,
    /// Matcher score.
    pub score: f64,
    /// Prediction at the workload threshold.
    pub predicted: bool,
    /// Ground truth.
    pub truth: bool,
}

/// Example-based explanation: a random sample of the pairs that hurt the
/// group under the queried measure (false negatives for TPRP, false
/// positives for PPVP/FPRP, any error otherwise).
#[derive(Debug, Clone)]
pub struct ExampleExplanation {
    /// The queried group.
    pub group: String,
    /// Measure being explained.
    pub measure: FairnessMeasure,
    /// Sampled pairs.
    pub examples: Vec<ExamplePair>,
}

/// Explanation engine bound to one audited workload.
#[derive(Debug)]
pub struct Explainer<'a> {
    workload: &'a Workload,
    space: &'a GroupSpace,
    table_a: &'a Table,
    table_b: &'a Table,
    train_workload: Option<&'a Workload>,
    disparity: Disparity,
}

impl<'a> Explainer<'a> {
    /// Create an explainer over an audited test workload. Pass the
    /// training workload when available to enable train-side
    /// representation analysis.
    pub fn new(
        workload: &'a Workload,
        space: &'a GroupSpace,
        table_a: &'a Table,
        table_b: &'a Table,
        train_workload: Option<&'a Workload>,
        disparity: Disparity,
    ) -> Explainer<'a> {
        Explainer {
            workload,
            space,
            table_a,
            table_b,
            train_workload,
            disparity,
        }
    }

    /// Subgroup-based explanation for `(measure, group)`.
    ///
    /// # Panics
    /// If the group name is unknown.
    pub fn subgroup(&self, measure: FairnessMeasure, group: &str) -> SubgroupExplanation {
        let g = self.lookup(group);
        let overall = measure.value(&self.workload.overall_confusion());
        let mut rows: Vec<SubgroupRow> = self
            .space
            .children(g)
            .into_iter()
            .map(|child| {
                let cm = self.workload.group_confusion(child);
                let value = measure.value(&cm);
                SubgroupRow {
                    group: self.space.name(child).to_owned(),
                    group_id: child,
                    value,
                    disparity: self
                        .disparity
                        .compute(overall, value, measure.higher_is_better()),
                    support: self.workload.group_support(child),
                }
            })
            .collect();
        // Worst disparity first; undefined (NaN, empty subgroup) last.
        rows.sort_by(|a, b| match (a.disparity.is_nan(), b.disparity.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => b.disparity.total_cmp(&a.disparity),
        });
        SubgroupExplanation {
            parent: group.to_owned(),
            measure,
            rows,
        }
    }

    /// Measure-based explanation for `(measure, group)`.
    pub fn measure_based(&self, measure: FairnessMeasure, group: &str) -> MeasureExplanation {
        let g = self.lookup(group);
        let cm = self.workload.group_confusion(g);
        let overall = self.workload.overall_confusion();
        let rates: Vec<(&'static str, f64, f64)> = vec![
            ("accuracy", cm.accuracy(), overall.accuracy()),
            ("TPR", cm.tpr(), overall.tpr()),
            ("FPR", cm.fpr(), overall.fpr()),
            ("FNR", cm.fnr(), overall.fnr()),
            ("PPV", cm.ppv(), overall.ppv()),
            ("NPV", cm.npv(), overall.npv()),
        ];
        // Largest adverse gap drives the narrative.
        let mut worst: Option<(&str, f64)> = None;
        for &(name, gv, ov) in &rates {
            if gv.is_nan() || ov.is_nan() {
                continue;
            }
            let adverse = match name {
                "FPR" | "FNR" => gv - ov,
                _ => ov - gv,
            };
            if worst.is_none_or(|(_, w)| adverse > w) {
                worst = Some((name, adverse));
            }
        }
        let narrative = match worst {
            Some((name, gap)) if gap > 0.0 => format!(
                "the dominant factor for {group}'s {measure} unfairness is its {name} \
                 deviating {gap:.3} adversely from the workload average"
            ),
            _ => format!("{group} shows no adverse rate deviation on this workload"),
        };
        MeasureExplanation {
            group: group.to_owned(),
            measure,
            confusion: cm,
            rates,
            narrative,
        }
    }

    /// Group-representation explanation.
    pub fn representation(&self, group: &str) -> RepresentationExplanation {
        let g = self.lookup(group);
        let shares = |w: &Workload| {
            let total = w.len().max(1) as f64;
            let legit = w.group_support(g) as f64;
            let matches = w.items.iter().filter(|c| c.truth).count().max(1) as f64;
            let legit_matches = w
                .items
                .iter()
                .filter(|c| c.truth && (c.left.contains(g) || c.right.contains(g)))
                .count() as f64;
            let nonmatches = w.items.iter().filter(|c| !c.truth).count().max(1) as f64;
            let legit_non = w
                .items
                .iter()
                .filter(|c| !c.truth && (c.left.contains(g) || c.right.contains(g)))
                .count() as f64;
            (
                legit / total,
                legit_matches / matches,
                legit_non / nonmatches,
            )
        };
        let (share_overall, share_matches, share_nonmatches) = shares(self.workload);
        // Contingency: (in group?, match class?) counts.
        let mut table = [[0.0f64; 2]; 2];
        for c in &self.workload.items {
            let in_group = c.left.contains(g) || c.right.contains(g);
            table[usize::from(in_group)][usize::from(c.truth)] += 1.0;
        }
        let degenerate = table.iter().any(|r| r[0] + r[1] == 0.0)
            || (0..2).any(|j| table[0][j] + table[1][j] == 0.0);
        let class_dependence = if degenerate {
            None
        } else {
            let r = fairem_stats::chi_squared_independence(&[table[0].to_vec(), table[1].to_vec()]);
            Some((r.statistic, r.p_value))
        };
        RepresentationExplanation {
            group: group.to_owned(),
            share_overall,
            share_matches,
            share_nonmatches,
            train_shares: self.train_workload.map(shares),
            class_dependence,
        }
    }

    /// Example-based explanation: sample up to `k` problematic pairs.
    pub fn examples(
        &self,
        measure: FairnessMeasure,
        group: &str,
        k: usize,
        seed: u64,
    ) -> ExampleExplanation {
        let g = self.lookup(group);
        let mut candidates: Vec<&crate::workload::Correspondence> = self
            .workload
            .items
            .iter()
            .filter(|c| c.left.contains(g) || c.right.contains(g))
            .filter(|c| {
                let h = self.workload.prediction(c);
                match measure {
                    FairnessMeasure::TruePositiveRateParity
                    | FairnessMeasure::FalseNegativeRateParity
                    | FairnessMeasure::NegativePredictiveValueParity
                    | FairnessMeasure::FalseOmissionRateParity => !h && c.truth, // missed matches
                    FairnessMeasure::FalsePositiveRateParity
                    | FairnessMeasure::PositivePredictiveValueParity
                    | FairnessMeasure::FalseDiscoveryRateParity
                    | FairnessMeasure::TrueNegativeRateParity => h && !c.truth, // spurious matches
                    _ => h != c.truth, // any error
                }
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        candidates.shuffle(&mut rng);
        candidates.truncate(k);
        let examples = candidates
            .into_iter()
            .map(|c| ExamplePair {
                left: self.table_a.render_record(c.a_row),
                right: self.table_b.render_record(c.b_row),
                score: c.score,
                predicted: self.workload.prediction(c),
                truth: c.truth,
            })
            .collect();
        ExampleExplanation {
            group: group.to_owned(),
            measure,
            examples,
        }
    }

    fn lookup(&self, group: &str) -> GroupId {
        self.space
            .by_name(group)
            // fairem: allow(panic) — internal invariant: group names come from the same GroupSpace
            .unwrap_or_else(|| panic!("unknown group {group:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitive::SensitiveAttr;
    use crate::workload::Correspondence;
    use fairem_csvio::parse_csv_str;

    fn fixture() -> (Table, Table, GroupSpace) {
        let a = Table::from_csv(
            parse_csv_str("id,name,race,sex\na0,li wei,asian,male\na1,mary smith,white,female\n")
                .unwrap(),
        )
        .unwrap();
        let b = Table::from_csv(
            parse_csv_str("id,name,race,sex\nb0,wei li,asian,male\nb1,m smith,white,female\n")
                .unwrap(),
        )
        .unwrap();
        let space = GroupSpace::extract(
            &[&a, &b],
            vec![
                SensitiveAttr::categorical("race"),
                SensitiveAttr::categorical("sex"),
            ],
        );
        (a, b, space)
    }

    fn workload(space: &GroupSpace, a: &Table, b: &Table) -> Workload {
        // asian-male pair missed (FN); white-female pair found (TP);
        // cross pair correctly rejected (TN).
        let enc_a0 = space.encode(a, 0);
        let enc_a1 = space.encode(a, 1);
        let enc_b0 = space.encode(b, 0);
        let enc_b1 = space.encode(b, 1);
        Workload::new(
            vec![
                Correspondence {
                    a_row: 0,
                    b_row: 0,
                    score: 0.2,
                    truth: true,
                    left: enc_a0,
                    right: enc_b0,
                },
                Correspondence {
                    a_row: 1,
                    b_row: 1,
                    score: 0.9,
                    truth: true,
                    left: enc_a1,
                    right: enc_b1,
                },
                Correspondence {
                    a_row: 0,
                    b_row: 1,
                    score: 0.1,
                    truth: false,
                    left: enc_a0,
                    right: enc_b1,
                },
            ],
            0.5,
        )
    }

    #[test]
    fn subgroup_drilldown_ranks_children() {
        let (a, b, space) = fixture();
        let w = workload(&space, &a, &b);
        let ex = Explainer::new(&w, &space, &a, &b, None, Disparity::Subtraction);
        let sub = ex.subgroup(FairnessMeasure::TruePositiveRateParity, "asian");
        // asian has children asian-male, asian-female; asian-male carries
        // the miss.
        assert!(!sub.rows.is_empty());
        assert_eq!(sub.rows[0].group, "asian-male");
        assert!(sub.rows[0].disparity > 0.0);
    }

    #[test]
    fn measure_explanation_names_the_dominant_factor() {
        let (a, b, space) = fixture();
        let w = workload(&space, &a, &b);
        let ex = Explainer::new(&w, &space, &a, &b, None, Disparity::Subtraction);
        let me = ex.measure_based(FairnessMeasure::TruePositiveRateParity, "asian");
        assert!(
            me.narrative.contains("FNR") || me.narrative.contains("TPR"),
            "{}",
            me.narrative
        );
        assert_eq!(me.confusion.fn_, 2.0); // both-sides counting
        assert_eq!(me.rates.len(), 6);
    }

    #[test]
    fn representation_shares_are_consistent() {
        let (a, b, space) = fixture();
        let w = workload(&space, &a, &b);
        let ex = Explainer::new(&w, &space, &a, &b, Some(&w), Disparity::Subtraction);
        let rep = ex.representation("asian");
        assert!((rep.share_overall - 2.0 / 3.0).abs() < 1e-12);
        assert!((rep.share_matches - 0.5).abs() < 1e-12);
        assert!((rep.share_nonmatches - 1.0).abs() < 1e-12);
        assert!(rep.train_shares.is_some());
        // Three correspondences: the 2×2 table has both classes and both
        // membership states → the dependence test is defined.
        let (stat, p) = rep.class_dependence.expect("non-degenerate table");
        assert!(stat >= 0.0);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn class_dependence_flags_skewed_representation() {
        let (a, b, space) = fixture();
        // Group asian appears in 30 matches and 0 non-matches; white the
        // reverse — maximal dependence.
        let asian = space.encode(&a, 0);
        let white = space.encode(&a, 1);
        let mut items = Vec::new();
        for _ in 0..30 {
            items.push(Correspondence {
                a_row: 0,
                b_row: 0,
                score: 0.9,
                truth: true,
                left: asian,
                right: asian,
            });
            items.push(Correspondence {
                a_row: 1,
                b_row: 1,
                score: 0.1,
                truth: false,
                left: white,
                right: white,
            });
        }
        let w = Workload::new(items, 0.5);
        let ex = Explainer::new(&w, &space, &a, &b, None, Disparity::Subtraction);
        let rep = ex.representation("asian");
        let (stat, p) = rep.class_dependence.unwrap();
        assert!(stat > 20.0, "{stat}");
        assert!(p < 0.001, "{p}");
        assert_eq!(rep.share_matches, 1.0);
        assert_eq!(rep.share_nonmatches, 0.0);
    }

    #[test]
    fn examples_pick_the_right_error_type() {
        let (a, b, space) = fixture();
        let w = workload(&space, &a, &b);
        let ex = Explainer::new(&w, &space, &a, &b, None, Disparity::Subtraction);
        let tprp = ex.examples(FairnessMeasure::TruePositiveRateParity, "asian", 5, 1);
        assert_eq!(tprp.examples.len(), 1);
        let e = &tprp.examples[0];
        assert!(e.truth && !e.predicted);
        assert!(e.left.contains("li wei"));
        // No false positives exist for asian → PPVP examples empty.
        let ppvp = ex.examples(
            FairnessMeasure::PositivePredictiveValueParity,
            "asian",
            5,
            1,
        );
        assert!(ppvp.examples.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown group")]
    fn unknown_group_panics() {
        let (a, b, space) = fixture();
        let w = workload(&space, &a, &b);
        let ex = Explainer::new(&w, &space, &a, &b, None, Disparity::Subtraction);
        let _ = ex.representation("martian");
    }
}
