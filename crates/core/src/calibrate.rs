//! Threshold-independent calibrated audits: the `CalibratedAudit`
//! report section behind `--calibrate` / `--all-thresholds`.
//!
//! Single-threshold audits answer "is the matcher fair at *this*
//! operating point"; the paper's Fig. 4 shows the answer can flip as the
//! threshold moves. This module audits the score *distributions*
//! instead: per-group Kolmogorov–Smirnov and 1-Wasserstein distances
//! against the workload-wide distribution (zero iff the group is
//! treated identically at every threshold), plus a trapezoid-swept
//! "fairness area" that integrates the max paired-group disparity of
//! each measure over the whole threshold grid. Fitting is delegated to
//! [`fairem_calib::GroupCalibrator`]; this module adapts the suite's
//! `Workload`/`GroupSpace` model onto calib's plain-slice API.

use fairem_calib::{CalibrationSpec, GroupCalibrator};
use fairem_par::{CancelToken, Interrupt, WorkerPool};
use fairem_stats::{ks_distance, trapezoid, wasserstein_1};

use crate::fairness::{Disparity, FairnessMeasure};
use crate::sensitive::{GroupId, GroupSpace};
use crate::threshold::sweep;
use crate::workload::{Correspondence, Workload};

/// Assign each correspondence to the first group (in `groups` order)
/// either side belongs to — the same routing rule the per-group Platt
/// resolution uses, so calibrators and audits agree on membership.
pub fn assign_groups(items: &[Correspondence], groups: &[GroupId]) -> Vec<Option<usize>> {
    items
        .iter()
        .map(|c| {
            groups
                .iter()
                .position(|&g| c.left.contains(g) || c.right.contains(g))
        })
        .collect()
}

/// Fit a [`GroupCalibrator`] on a fitting workload's scores and truth
/// labels under the given pool and cancellation token.
///
/// # Panics
/// If the fitting workload is empty or `groups` is empty.
pub fn fit_on_workload(
    spec: CalibrationSpec,
    fit: &Workload,
    groups: &[GroupId],
    pool: &WorkerPool,
    cancel: &CancelToken,
) -> Result<GroupCalibrator, Interrupt> {
    assert!(!groups.is_empty(), "need at least one calibration group");
    let scores: Vec<f64> = fit.items.iter().map(|c| c.score).collect();
    let labels: Vec<f64> = fit.items.iter().map(|c| f64::from(c.truth)).collect();
    let group_of = assign_groups(&fit.items, groups);
    GroupCalibrator::try_fit(spec, &scores, &labels, &group_of, groups.len(), pool, cancel)
}

/// Remap an evaluation workload's scores through a fitted calibrator,
/// routing each correspondence by the same group-assignment rule the
/// fit used. Threshold and truth labels are untouched.
pub fn apply_calibrator(
    cal: &GroupCalibrator,
    eval: &Workload,
    groups: &[GroupId],
) -> Workload {
    let group_of = assign_groups(&eval.items, groups);
    let items = eval
        .items
        .iter()
        .zip(&group_of)
        .map(|(c, &slot)| Correspondence {
            score: cal.transform(slot, c.score),
            ..*c
        })
        .collect();
    Workload::new(items, eval.threshold)
}

/// Score-distribution distances of one group against the whole
/// workload. Zero for both iff the group's empirical score CDF
/// coincides with the overall CDF — i.e. the group is treated
/// identically at *every* matching threshold.
#[derive(Debug, Clone)]
pub struct DistributionEntry {
    /// Group name.
    pub group: String,
    /// Number of correspondences involving the group.
    pub support: usize,
    /// Kolmogorov–Smirnov distance vs the overall score distribution.
    pub ks: f64,
    /// 1-Wasserstein distance vs the overall score distribution.
    pub wasserstein: f64,
}

/// Trapezoid-swept fairness area of one measure: the max paired-group
/// disparity integrated over the threshold grid, normalized by the grid
/// width — a threshold-free summary in the same `[0, 1]` scale as a
/// single-threshold disparity.
#[derive(Debug, Clone)]
pub struct FairnessArea {
    /// The measure swept.
    pub measure: FairnessMeasure,
    /// Normalized integral of the max disparity over the grid.
    pub area: f64,
}

/// The threshold-independent audit of one workload: per-group
/// distribution distances plus per-measure fairness areas.
#[derive(Debug, Clone)]
pub struct DistributionAudit {
    /// One row per audited group.
    pub entries: Vec<DistributionEntry>,
    /// One row per swept measure.
    pub areas: Vec<FairnessArea>,
}

impl DistributionAudit {
    /// Max finite KS distance across groups — the "KS disparity" the
    /// calibration gate in check.sh compares before/after.
    pub fn max_ks(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.ks)
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// Max finite 1-Wasserstein distance across groups.
    pub fn max_wasserstein(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.wasserstein)
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// Max finite fairness area across measures.
    pub fn max_area(&self) -> f64 {
        self.areas
            .iter()
            .map(|a| a.area)
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }
}

/// Compute the threshold-independent audit of a workload: group-wise
/// KS / 1-Wasserstein distances of score distributions (NaN for groups
/// with no evidence, mirroring the single-threshold audit's
/// insufficient-support convention) and the trapezoid-swept fairness
/// area of each measure over `grid`.
///
/// # Panics
/// If the workload is empty or `grid` has fewer than two points.
pub fn distribution_audit(
    workload: &Workload,
    space: &GroupSpace,
    groups: &[GroupId],
    measures: &[FairnessMeasure],
    disparity: Disparity,
    grid: &[f64],
) -> DistributionAudit {
    assert!(!workload.items.is_empty(), "cannot audit an empty workload");
    assert!(grid.len() >= 2, "fairness area needs at least two grid points");
    let overall: Vec<f64> = workload.items.iter().map(|c| c.score).collect();
    let entries = groups
        .iter()
        .map(|&g| {
            let group_scores: Vec<f64> = workload
                .items
                .iter()
                .filter(|c| c.left.contains(g) || c.right.contains(g))
                .map(|c| c.score)
                .collect();
            let (ks, wasserstein) = if group_scores.is_empty() {
                (f64::NAN, f64::NAN)
            } else {
                (
                    ks_distance(&group_scores, &overall),
                    wasserstein_1(&group_scores, &overall),
                )
            };
            DistributionEntry {
                group: space.name(g).to_owned(),
                support: group_scores.len(),
                ks,
                wasserstein,
            }
        })
        .collect();
    let width = grid[grid.len() - 1] - grid[0];
    let areas = measures
        .iter()
        .map(|&measure| {
            let sw = sweep(workload, space, groups, measure, grid);
            let disparities = sw.max_disparity(disparity);
            FairnessArea {
                measure,
                area: trapezoid(grid, &disparities) / width,
            }
        })
        .collect();
    DistributionAudit { entries, areas }
}

/// The `CalibratedAudit` report section: the threshold-independent
/// audit of a matcher's raw scores, side by side with the audit of the
/// per-group calibrated scores when a calibration policy is active.
#[derive(Debug, Clone)]
pub struct CalibratedAudit {
    /// Matcher audited.
    pub matcher: String,
    /// Calibration policy label (`platt:10`, …), `None` when the audit
    /// covers raw scores only (`--all-thresholds` without `--calibrate`).
    pub calibration: Option<String>,
    /// Groups that earned a dedicated calibrator fit.
    pub groups_fitted: usize,
    /// Groups routed to the global fallback.
    pub fallbacks: usize,
    /// Threshold-independent audit of the raw scores.
    pub baseline: DistributionAudit,
    /// Same audit after per-group calibration (when active).
    pub calibrated: Option<DistributionAudit>,
}

impl CalibratedAudit {
    /// Whether calibration reduced (or held) the KS disparity —
    /// `None` when no calibration ran.
    pub fn ks_improved(&self) -> Option<bool> {
        self.calibrated
            .as_ref()
            .map(|c| c.max_ks() <= self.baseline.max_ks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Table;
    use crate::sensitive::{GroupVector, SensitiveAttr};
    use crate::threshold::default_grid;
    use fairem_csvio::parse_csv_str;
    use fairem_par::Parallelism;

    fn space() -> GroupSpace {
        let t = Table::from_csv(parse_csv_str("id,g\na1,cn\na2,us\n").unwrap()).unwrap();
        GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")])
    }

    fn c(score: f64, truth: bool, bits: u64) -> Correspondence {
        Correspondence {
            a_row: 0,
            b_row: 0,
            score,
            truth,
            left: GroupVector(bits),
            right: GroupVector(bits),
        }
    }

    /// The Fig. 4 fixture: cn scores compressed into [0.25, 0.45], us
    /// spread over [0.1, 0.9], perfect ranking in both.
    fn miscalibrated() -> Workload {
        let mut items = Vec::new();
        for i in 0..40 {
            let frac = i as f64 / 40.0;
            items.push(c(0.25 + 0.20 * frac, frac > 0.5, 0b01));
            items.push(c(0.1 + 0.8 * frac, frac > 0.5, 0b10));
        }
        Workload::new(items, 0.5)
    }

    #[test]
    fn distribution_audit_flags_the_compressed_group() {
        let w = miscalibrated();
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        let audit = distribution_audit(
            &w,
            &sp,
            &groups,
            &[FairnessMeasure::TruePositiveRateParity],
            Disparity::Subtraction,
            &default_grid(),
        );
        assert_eq!(audit.entries.len(), 2);
        // The compressed cn band is far from the pooled distribution.
        assert!(audit.max_ks() > 0.25, "{}", audit.max_ks());
        assert!(audit.max_wasserstein() > 0.05);
        // TPR disparity integrated over all thresholds is substantial.
        assert!(audit.max_area() > 0.1, "{}", audit.max_area());
    }

    #[test]
    fn calibration_shrinks_distribution_distances() {
        let w = miscalibrated();
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        let pool = WorkerPool::with_parallelism(Parallelism::Off);
        let cal = fit_on_workload(
            CalibrationSpec::isotonic(),
            &w,
            &groups,
            &pool,
            &CancelToken::inert(),
        )
        .expect("inert token");
        let calibrated = apply_calibrator(&cal, &w, &groups);
        let measures = [FairnessMeasure::TruePositiveRateParity];
        let before =
            distribution_audit(&w, &sp, &groups, &measures, Disparity::Subtraction, &default_grid());
        let after = distribution_audit(
            &calibrated,
            &sp,
            &groups,
            &measures,
            Disparity::Subtraction,
            &default_grid(),
        );
        assert!(after.max_ks() < before.max_ks(), "{} vs {}", after.max_ks(), before.max_ks());
        assert!(after.max_wasserstein() < before.max_wasserstein());
        assert!(after.max_area() < before.max_area());
    }

    #[test]
    fn distribution_audit_is_threshold_invariant() {
        let w = miscalibrated();
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        let measures = [FairnessMeasure::TruePositiveRateParity];
        let at = |t: f64| {
            distribution_audit(
                &w.with_threshold(t),
                &sp,
                &groups,
                &measures,
                Disparity::Subtraction,
                &default_grid(),
            )
        };
        let (a, b) = (at(0.35), (at(0.50)));
        // The distances and areas read the scores, not the operating
        // point: bit-for-bit equal under any workload threshold.
        for (ea, eb) in a.entries.iter().zip(&b.entries) {
            assert_eq!(ea.ks.to_bits(), eb.ks.to_bits());
            assert_eq!(ea.wasserstein.to_bits(), eb.wasserstein.to_bits());
        }
        assert_eq!(a.areas[0].area.to_bits(), b.areas[0].area.to_bits());
    }

    #[test]
    fn evidence_free_groups_read_nan_not_a_verdict() {
        let w = Workload::new(vec![c(0.9, true, 0b01), c(0.1, false, 0b01)], 0.5);
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        let audit = distribution_audit(
            &w,
            &sp,
            &groups,
            &[FairnessMeasure::AccuracyParity],
            Disparity::Subtraction,
            &default_grid(),
        );
        assert!(audit.entries[1].ks.is_nan());
        assert!(audit.entries[1].wasserstein.is_nan());
        assert_eq!(audit.entries[1].support, 0);
        assert!(audit.max_ks().is_finite());
    }
}
