//! Crash-safe shard checkpoints: the `fairem-ckpt/1` on-disk format.
//!
//! A checkpoint directory holds one `manifest.json` describing the run
//! (schema, run key, shard count) plus one `shard-<idx>.json` per
//! committed shard carrying the per-matcher [`PairCounts`] histograms
//! and the shard's clamp tally. Every write goes to a `.tmp` sibling
//! first and is published with `fs::rename` — the atomic-commit idiom —
//! so a `kill -9` at any instant leaves either the previous committed
//! file or none, never a torn one. Readers treat *anything* unexpected
//! (missing file, parse error, schema/run-key/index mismatch, malformed
//! histogram) as "not committed" and recompute the shard; resume is
//! therefore always safe, merely slower when files are damaged.
//!
//! The run key is an FNV-1a 64 hash over a canonical description of the
//! inputs and the knobs that change shard content (see
//! [`crate::pipeline`]); it deliberately excludes the memory budget —
//! shard results are window-size independent, so a resume may use a
//! different `--mem-budget` than the run it resumes.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use fairem_csvio::Json;

use crate::error::SuiteError;
use crate::shard::PairCounts;

/// The checkpoint schema tag.
pub const CKPT_SCHEMA: &str = "fairem-ckpt/1";

/// FNV-1a 64-bit over a byte string — the suite's hand-rolled, stable,
/// dependency-free fingerprint (also used for run keys).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One committed shard's results: per-matcher histograms (in matcher
/// order) plus the number of scores the sanitize clamp repaired inside
/// the shard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardRecord {
    /// `(matcher name, histogram)` in fleet order.
    pub matchers: Vec<(String, PairCounts)>,
    /// Scores clamped to `[0,1]` within the shard.
    pub clamped: u64,
}

/// A checkpoint directory bound to one run key.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    run_key: u64,
    shards: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory for a run.
    ///
    /// When `resume` is false, or the existing manifest does not match
    /// this run's key/shard count/schema, a fresh manifest is committed
    /// and any stale shard files are ignored by the run-key check on
    /// load. When `resume` is true and the manifest matches, committed
    /// shard files become reusable.
    pub fn open(
        dir: &Path,
        run_key: u64,
        shards: usize,
        resume: bool,
    ) -> Result<CheckpointStore, SuiteError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let store = CheckpointStore {
            dir: dir.to_path_buf(),
            run_key,
            shards,
        };
        let manifest_ok = resume && store.manifest_matches();
        if !manifest_ok {
            store.write_manifest()?;
        }
        Ok(store)
    }

    /// The run key this store is bound to.
    pub fn run_key(&self) -> u64 {
        self.run_key
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    fn shard_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("shard-{index}.json"))
    }

    fn manifest_matches(&self) -> bool {
        let Ok(text) = fs::read_to_string(self.manifest_path()) else {
            return false;
        };
        let Ok(v) = Json::parse(&text) else {
            return false;
        };
        v.get("schema").and_then(Json::as_str) == Some(CKPT_SCHEMA)
            && v.get("run_key").and_then(Json::as_str) == Some(self.run_key.to_string().as_str())
            && v.get("shards").and_then(Json::as_num) == Some(self.shards as f64)
    }

    fn write_manifest(&self) -> Result<(), SuiteError> {
        let v = Json::obj([
            ("schema", Json::Str(CKPT_SCHEMA.into())),
            ("run_key", Json::Str(self.run_key.to_string())),
            ("shards", Json::Num(self.shards as f64)),
        ]);
        self.commit(&self.manifest_path(), &v.to_string_pretty())
    }

    /// Load a committed shard. `None` means "recompute": the file is
    /// missing, torn, from a different run, or malformed — never an
    /// error, because recomputation is always a valid answer.
    pub fn load_shard(&self, index: usize) -> Option<ShardRecord> {
        let text = fs::read_to_string(self.shard_path(index)).ok()?;
        let v = Json::parse(&text).ok()?;
        if v.get("schema").and_then(Json::as_str) != Some(CKPT_SCHEMA)
            || v.get("run_key").and_then(Json::as_str)
                != Some(self.run_key.to_string().as_str())
            || v.get("shard").and_then(Json::as_num) != Some(index as f64)
        {
            return None;
        }
        let clamped: u64 = v.get("clamped")?.as_str()?.parse().ok()?;
        let Json::Arr(items) = v.get("matchers")? else {
            return None;
        };
        let mut matchers = Vec::with_capacity(items.len());
        for item in items {
            let name = item.get("name")?.as_str()?.to_owned();
            let counts = PairCounts::from_json(item.get("counts")?)?;
            matchers.push((name, counts));
        }
        Some(ShardRecord { matchers, clamped })
    }

    /// Commit a shard's results: serialize, write `shard-<idx>.json.tmp`,
    /// fsync-free atomic `rename` into place.
    pub fn store_shard(&self, index: usize, record: &ShardRecord) -> Result<(), SuiteError> {
        let v = Json::obj([
            ("schema", Json::Str(CKPT_SCHEMA.into())),
            ("run_key", Json::Str(self.run_key.to_string())),
            ("shard", Json::Num(index as f64)),
            ("clamped", Json::Str(record.clamped.to_string())),
            (
                "matchers",
                Json::arr(record.matchers.iter().map(|(name, counts)| {
                    Json::obj([
                        ("name", Json::Str(name.clone())),
                        ("counts", counts.to_json()),
                    ])
                })),
            ),
        ]);
        self.commit(&self.shard_path(index), &v.to_string_compact())
    }

    fn commit(&self, path: &Path, text: &str) -> Result<(), SuiteError> {
        let tmp = path.with_extension("json.tmp");
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, path)
        };
        write().map_err(|e| io_err(path, &e))
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> SuiteError {
    SuiteError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitive::GroupVector;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fairem-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn record() -> ShardRecord {
        let mut pc = PairCounts::new();
        pc.record(GroupVector(1), GroupVector(2), true, false);
        pc.record(GroupVector(2), GroupVector(2), false, false);
        ShardRecord {
            matchers: vec![("DTMatcher".into(), pc)],
            clamped: 3,
        }
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"fairem"), fnv1a64(b"fairem"));
        assert_ne!(fnv1a64(b"fairem"), fnv1a64(b"fairen"));
    }

    #[test]
    fn store_then_load_round_trips() {
        let d = tmpdir("roundtrip");
        let s = CheckpointStore::open(&d, 42, 3, false).unwrap();
        assert!(s.load_shard(0).is_none(), "nothing committed yet");
        let r = record();
        s.store_shard(0, &r).unwrap();
        assert_eq!(s.load_shard(0).unwrap(), r);
        assert!(s.load_shard(1).is_none());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn resume_honors_run_key_and_shard_count() {
        let d = tmpdir("runkey");
        let s = CheckpointStore::open(&d, 7, 2, false).unwrap();
        s.store_shard(1, &record()).unwrap();
        // Same key, resume: the shard is reusable.
        let again = CheckpointStore::open(&d, 7, 2, true).unwrap();
        assert!(again.load_shard(1).is_some());
        // Different key: the stale file is rejected on load.
        let other = CheckpointStore::open(&d, 8, 2, true).unwrap();
        assert!(other.load_shard(1).is_none());
        // Different shard count with the old key: manifest mismatch is
        // rewritten; stale shard indices stay loadable only if the key
        // still matches (it does here — content is window-independent).
        let wider = CheckpointStore::open(&d, 7, 4, true).unwrap();
        assert!(wider.load_shard(1).is_some());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_or_corrupt_shard_files_read_as_uncommitted() {
        let d = tmpdir("corrupt");
        let s = CheckpointStore::open(&d, 9, 2, false).unwrap();
        s.store_shard(0, &record()).unwrap();
        // Truncate mid-file: simulates a torn write that bypassed the
        // rename protocol.
        let p = d.join("shard-0.json");
        let text = fs::read_to_string(&p).unwrap();
        fs::write(&p, &text[..text.len() / 2]).unwrap();
        assert!(s.load_shard(0).is_none(), "torn file must not parse");
        // Garbage JSON of the right shape but wrong schema.
        fs::write(&p, "{\"schema\":\"other/9\"}").unwrap();
        assert!(s.load_shard(0).is_none());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn fresh_open_without_resume_invalidates_nothing_but_rewrites_manifest() {
        let d = tmpdir("fresh");
        let s = CheckpointStore::open(&d, 5, 2, false).unwrap();
        s.store_shard(0, &record()).unwrap();
        // Re-open without resume: loads still check the key, and the
        // old committed file has the right key, so the caller decides
        // whether to reuse (the pipeline only calls load when resuming).
        let s2 = CheckpointStore::open(&d, 5, 2, false).unwrap();
        assert!(s2.load_shard(0).is_some());
        let _ = fs::remove_dir_all(&d);
    }
}
