//! Threshold-sensitivity analysis and threshold-independent fairness —
//! the extension directions the paper cites: tuning matching thresholds
//! for fairness (Moslemi & Milani, ref \[10\]), AUC-based fairness
//! (Nilforoushan et al., ref \[12\]), and per-group score calibration as
//! an alternative resolution to switching matchers.

use fairem_ml::{auc_roc, PlattScaler};

use crate::fairness::{Disparity, FairnessMeasure};
use crate::sensitive::{GroupId, GroupSpace};
use crate::workload::Workload;

/// Measure values per group across a threshold grid.
#[derive(Debug, Clone)]
pub struct ThresholdSweep {
    /// The measure swept.
    pub measure: FairnessMeasure,
    /// The threshold grid (ascending).
    pub thresholds: Vec<f64>,
    /// Workload-wide value at each threshold.
    pub overall: Vec<f64>,
    /// Per-group `(name, values)` curves, index-aligned with
    /// `thresholds`.
    pub per_group: Vec<(String, Vec<f64>)>,
}

impl ThresholdSweep {
    /// Max disparity across groups at each threshold.
    ///
    /// Non-finite disparities (a group with no evidence at some
    /// threshold yields `NaN` from [`Disparity::compute`]) are excluded
    /// from the fold, so an evidence-free group can never poison the
    /// sweep or the fair-window computation built on it.
    pub fn max_disparity(&self, disparity: Disparity) -> Vec<f64> {
        let higher = self.measure.higher_is_better();
        self.thresholds
            .iter()
            .enumerate()
            .map(|(i, _)| {
                self.per_group
                    .iter()
                    .map(|(_, vs)| disparity.compute(self.overall[i], vs[i], higher))
                    .filter(|d| d.is_finite())
                    .fold(0.0, f64::max)
            })
            .collect()
    }

    /// Thresholds whose max disparity stays within `fairness_threshold` —
    /// the fair operating window of the matcher.
    pub fn fair_thresholds(&self, disparity: Disparity, fairness_threshold: f64) -> Vec<f64> {
        self.max_disparity(disparity)
            .iter()
            .zip(&self.thresholds)
            .filter(|(d, _)| **d <= fairness_threshold)
            .map(|(_, t)| *t)
            .collect()
    }
}

/// Sweep a measure across a threshold grid for the given groups.
///
/// # Panics
/// If the grid is empty.
pub fn sweep(
    workload: &Workload,
    space: &GroupSpace,
    groups: &[GroupId],
    measure: FairnessMeasure,
    grid: &[f64],
) -> ThresholdSweep {
    assert!(!grid.is_empty(), "threshold grid must be non-empty");
    let mut overall = Vec::with_capacity(grid.len());
    let mut per_group: Vec<(String, Vec<f64>)> = groups
        .iter()
        .map(|&g| (space.name(g).to_owned(), Vec::with_capacity(grid.len())))
        .collect();
    for &t in grid {
        let w = workload.with_threshold(t);
        overall.push(measure.value(&w.overall_confusion()));
        for (gi, &g) in groups.iter().enumerate() {
            per_group[gi].1.push(measure.value(&w.group_confusion(g)));
        }
    }
    ThresholdSweep {
        measure,
        thresholds: grid.to_vec(),
        overall,
        per_group,
    }
}

/// The default 99-point threshold grid `0.01..=0.99`.
pub fn default_grid() -> Vec<f64> {
    (1..100).map(|i| i as f64 / 100.0).collect()
}

/// Pick the threshold maximizing overall F1 subject to the fairness
/// constraint (max disparity of `measure` across `groups` within
/// `fairness_threshold`). Returns `None` when no grid point is fair.
pub fn suggest_threshold(
    workload: &Workload,
    space: &GroupSpace,
    groups: &[GroupId],
    measure: FairnessMeasure,
    disparity: Disparity,
    fairness_threshold: f64,
    grid: &[f64],
) -> Option<f64> {
    let sw = sweep(workload, space, groups, measure, grid);
    let disparities = sw.max_disparity(disparity);
    let mut best: Option<(f64, f64)> = None; // (f1, threshold)
    for (i, &t) in grid.iter().enumerate() {
        if disparities[i] > fairness_threshold {
            continue;
        }
        let f1 = workload.with_threshold(t).overall_confusion().f1();
        if f1.is_finite() && best.is_none_or(|(bf, _)| f1 > bf) {
            best = Some((f1, t));
        }
    }
    best.map(|(_, t)| t)
}

/// Per-group ROC AUC of the workload's scores — the threshold-
/// independent view of matcher quality (ref \[12\]). `NaN` when a group
/// lacks both classes.
pub fn group_auc(workload: &Workload, g: GroupId) -> f64 {
    let mut scores = Vec::new();
    let mut truths = Vec::new();
    for c in &workload.items {
        if c.left.contains(g) || c.right.contains(g) {
            scores.push(c.score);
            truths.push(c.truth);
        }
    }
    auc_roc(&scores, &truths)
}

/// One row of an AUC-parity audit.
#[derive(Debug, Clone)]
pub struct AucEntry {
    /// Group name.
    pub group: String,
    /// The group's ROC AUC.
    pub auc: f64,
    /// Disparity of the group AUC against the overall AUC.
    pub disparity: f64,
}

/// AUC-based fairness audit: per-group AUC vs the workload-wide AUC
/// (higher is better), under the chosen disparity notation.
pub fn auc_parity(
    workload: &Workload,
    space: &GroupSpace,
    groups: &[GroupId],
    disparity: Disparity,
) -> Vec<AucEntry> {
    let overall_scores: Vec<f64> = workload.items.iter().map(|c| c.score).collect();
    let overall_truths: Vec<bool> = workload.items.iter().map(|c| c.truth).collect();
    let overall = auc_roc(&overall_scores, &overall_truths);
    groups
        .iter()
        .map(|&g| {
            let auc = group_auc(workload, g);
            AucEntry {
                group: space.name(g).to_owned(),
                auc,
                disparity: disparity.compute(overall, auc, true),
            }
        })
        .collect()
}

/// Per-group score calibration (the ref \[10\]-style resolution): fit a
/// Platt scaler per group on a *training* workload's scores, then remap
/// the evaluation workload's scores, so a single matching threshold
/// treats all groups comparably. Correspondences are assigned to the
/// first group (in `groups` order) either side belongs to; unassigned
/// ones use a global calibrator.
pub fn calibrate_per_group(train: &Workload, eval: &Workload, groups: &[GroupId]) -> Workload {
    assert!(!groups.is_empty(), "need at least one calibration group");
    let assign = |c: &crate::workload::Correspondence| -> Option<usize> {
        groups
            .iter()
            .position(|&g| c.left.contains(g) || c.right.contains(g))
    };
    // Collect per-group training scores (+ a global pool).
    let mut pools: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); groups.len() + 1];
    for c in &train.items {
        let idx = assign(c).unwrap_or(groups.len());
        pools[idx].0.push(c.score);
        pools[idx].1.push(f64::from(c.truth));
        pools[groups.len()].0.push(c.score);
        pools[groups.len()].1.push(f64::from(c.truth));
    }
    let global = PlattScaler::fit(&pools[groups.len()].0, &pools[groups.len()].1);
    let scalers: Vec<PlattScaler> = pools[..groups.len()]
        .iter()
        .map(|(s, y)| {
            // Groups with too little data or one class fall back to the
            // global calibrator.
            let has_both = y.contains(&1.0) && y.contains(&0.0);
            if s.len() >= 10 && has_both {
                PlattScaler::fit(s, y)
            } else {
                global
            }
        })
        .collect();
    let items = eval
        .items
        .iter()
        .map(|c| {
            let scaler = assign(c).map_or(global, |i| scalers[i]);
            crate::workload::Correspondence {
                score: scaler.transform(c.score),
                ..*c
            }
        })
        .collect();
    Workload::new(items, eval.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Table;
    use crate::sensitive::{GroupVector, SensitiveAttr};
    use crate::workload::Correspondence;
    use fairem_csvio::parse_csv_str;

    fn space() -> GroupSpace {
        let t = Table::from_csv(parse_csv_str("id,g\na1,cn\na2,us\n").unwrap()).unwrap();
        GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")])
    }

    fn c(score: f64, truth: bool, bits: u64) -> Correspondence {
        Correspondence {
            a_row: 0,
            b_row: 0,
            score,
            truth,
            left: GroupVector(bits),
            right: GroupVector(bits),
        }
    }

    /// cn scores are compressed into [0.25, 0.45]: all under a 0.5
    /// threshold, although the ranking is perfect. us scores are spread
    /// normally around 0.5.
    fn miscalibrated() -> Workload {
        let mut items = Vec::new();
        for i in 0..40 {
            let frac = i as f64 / 40.0;
            // cn: matches at the top of a compressed band.
            items.push(c(0.25 + 0.20 * frac, frac > 0.5, 0b01));
            // us: well spread.
            items.push(c(0.1 + 0.8 * frac, frac > 0.5, 0b10));
        }
        Workload::new(items, 0.5)
    }

    #[test]
    fn sweep_shows_threshold_dependence() {
        let w = miscalibrated();
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        let sw = sweep(
            &w,
            &sp,
            &groups,
            FairnessMeasure::TruePositiveRateParity,
            &default_grid(),
        );
        let disp = sw.max_disparity(Disparity::Subtraction);
        // At 0.5 the cn TPR is zero → huge disparity; at 0.35 it's fine.
        let at = |t: f64| {
            let i = sw
                .thresholds
                .iter()
                .position(|&x| (x - t).abs() < 1e-9)
                .unwrap();
            disp[i]
        };
        assert!(at(0.50) >= 0.45, "{}", at(0.50));
        assert!(at(0.35) < 0.2, "{}", at(0.35));
        let fair = sw.fair_thresholds(Disparity::Subtraction, 0.2);
        assert!(!fair.is_empty());
        // A genuinely fair window exists below the cn score band's top...
        assert!(fair.iter().any(|&t| t < 0.45));
        // ...and the clearly unfair band (cn recall dead, us healthy) is
        // excluded. Very high thresholds become degenerately "fair"
        // again as every group's recall collapses together.
        assert!(fair.iter().all(|&t| !(0.46..0.74).contains(&t)), "{fair:?}");
    }

    #[test]
    fn suggest_threshold_respects_constraint() {
        let w = miscalibrated();
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        let t = suggest_threshold(
            &w,
            &sp,
            &groups,
            FairnessMeasure::TruePositiveRateParity,
            Disparity::Subtraction,
            0.2,
            &default_grid(),
        )
        .expect("a fair threshold exists");
        let sw = sweep(
            &w,
            &sp,
            &groups,
            FairnessMeasure::TruePositiveRateParity,
            &[t],
        );
        assert!(sw.max_disparity(Disparity::Subtraction)[0] <= 0.2);
    }

    #[test]
    fn auc_is_threshold_independent_and_perfect_here() {
        let w = miscalibrated();
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        let entries = auc_parity(&w, &sp, &groups, Disparity::Subtraction);
        // Both groups rank perfectly → AUC 1.0, zero disparity: the
        // unfairness at threshold 0.5 is purely a calibration artifact.
        for e in &entries {
            assert!((e.auc - 1.0).abs() < 1e-9, "{}: {}", e.group, e.auc);
            assert_eq!(e.disparity, 0.0);
        }
    }

    #[test]
    fn per_group_calibration_restores_fairness_at_fixed_threshold() {
        let w = miscalibrated();
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        // Before: cn TPR at 0.5 is 0.
        let before = w.group_confusion(groups[0]).tpr();
        assert!(before < 0.1, "{before}");
        let calibrated = calibrate_per_group(&w, &w, &groups);
        let after = calibrated.group_confusion(groups[0]).tpr();
        assert!(after > 0.8, "calibrated cn TPR {after}");
        // us remains good.
        assert!(calibrated.group_confusion(groups[1]).tpr() > 0.8);
    }

    #[test]
    fn group_auc_nan_without_both_classes() {
        let w = Workload::new(vec![c(0.5, true, 0b01)], 0.5);
        assert!(group_auc(&w, GroupId(0)).is_nan());
    }

    #[test]
    fn sweep_ignores_evidence_free_groups() {
        // Only cn appears in the workload; every us measure value is NaN
        // (0/0 rates). Disparities and suggestions must stay finite.
        let w = Workload::new(vec![c(0.9, true, 0b01), c(0.1, false, 0b01)], 0.5);
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        let sw = sweep(
            &w,
            &sp,
            &groups,
            FairnessMeasure::TruePositiveRateParity,
            &default_grid(),
        );
        assert!(sw.per_group[1].1.iter().all(|v| v.is_nan()), "us is NaN");
        for d in sw.max_disparity(Disparity::Subtraction) {
            assert!(d.is_finite(), "{d}");
        }
        let t = suggest_threshold(
            &w,
            &sp,
            &groups,
            FairnessMeasure::TruePositiveRateParity,
            Disparity::Subtraction,
            0.2,
            &default_grid(),
        );
        assert!(t.is_some());
    }

    #[test]
    fn auc_parity_marks_evidence_free_groups_nan() {
        let w = Workload::new(vec![c(0.9, true, 0b01), c(0.1, false, 0b01)], 0.5);
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        let entries = auc_parity(&w, &sp, &groups, Disparity::Subtraction);
        assert!(entries[0].disparity.is_finite());
        assert!(entries[1].auc.is_nan());
        assert!(
            entries[1].disparity.is_nan(),
            "no-evidence disparity must be NaN, not a finite verdict"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn sweep_rejects_empty_grid() {
        let w = miscalibrated();
        let sp = space();
        let groups: Vec<GroupId> = sp.ids().collect();
        let _ = sweep(&w, &sp, &groups, FairnessMeasure::AccuracyParity, &[]);
    }
}
