//! Sharded audit execution: deterministic partitioning of the test
//! candidate-pair space plus the exact group-pair histogram that makes
//! per-shard results mergeable bit-for-bit.
//!
//! # Why a histogram merges exactly
//!
//! Every confusion quantity the auditor consumes
//! ([`crate::workload::Workload::overall_confusion`],
//! `group_confusion`, `pairwise_confusion`, `group_support`) is a sum
//! of weights in `{1.0, 2.0}` over correspondences, keyed only by the
//! two group encodings, the thresholded prediction, and the truth
//! label. [`PairCounts`] buckets correspondences by exactly that key
//! with integer counts, so any confusion matrix is *recomputed* from
//! the histogram as a sum of exact integers — f64 addition on integers
//! below 2⁵³ is exact in any order, which is what makes shard-merged
//! audits bit-for-bit identical to the unsharded path.

use std::collections::BTreeMap;

use fairem_csvio::Json;

use crate::confusion::ConfusionMatrix;
use crate::sensitive::{GroupId, GroupVector};

/// How a run is sharded and checkpointed. The default (`shards == 1`,
/// no checkpoint directory) is the plain in-memory path.
#[derive(Debug, Clone, Default)]
pub struct ShardPolicy {
    /// Number of shards the test split is partitioned into (values
    /// `<= 1` mean unsharded).
    pub shards: usize,
    /// Directory for the `fairem-ckpt/1` manifest and per-shard result
    /// files; `None` disables checkpointing.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Reuse committed shard results from `checkpoint_dir` when their
    /// run key matches this run.
    pub resume: bool,
}

impl ShardPolicy {
    /// True when this policy requests the sharded execution path.
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }
}

/// One contiguous shard of the test pair space: `[start, end)` indices
/// into the test split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Shard ordinal (0-based).
    pub index: usize,
    /// First test-pair index (inclusive).
    pub start: usize,
    /// One past the last test-pair index.
    pub end: usize,
}

impl Shard {
    /// Number of pairs in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the shard holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The deterministic shard plan: `n` items cut into `shards` contiguous
/// windows whose sizes differ by at most one (the first `n % shards`
/// shards get the extra item). Purely arithmetic — no clock, RNG, or
/// machine state — so every run of the same configuration produces the
/// identical plan.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Partition `n` items into `shards` contiguous windows. `shards`
    /// is clamped to `[1, max(n, 1)]` so no shard is empty unless
    /// `n == 0` (then a single empty shard keeps the loop shape).
    pub fn partition(n: usize, shards: usize) -> ShardPlan {
        let k = shards.clamp(1, n.max(1));
        let base = n / k;
        let extra = n % k;
        let mut out = Vec::with_capacity(k);
        let mut start = 0;
        for index in 0..k {
            let len = base + usize::from(index < extra);
            out.push(Shard {
                index,
                start,
                end: start + len,
            });
            start += len;
        }
        ShardPlan { shards: out }
    }

    /// The planned shards, in execution order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards in the plan.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the plan holds no shards (never happens via
    /// [`ShardPlan::partition`]).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

/// Deterministic window width for processing `shard_len` pairs under
/// `headroom` budget bytes when each pair's build transiently costs
/// `per_pair` bytes: as many pairs as fit, at least one, at most the
/// shard. `None` headroom (unlimited tracker) takes the whole shard.
pub fn window_len(shard_len: usize, headroom: Option<u64>, per_pair: u64) -> usize {
    match headroom {
        None => shard_len.max(1),
        Some(h) => {
            let fit = h.checked_div(per_pair).unwrap_or(shard_len as u64);
            (fit.min(shard_len as u64) as usize).max(1)
        }
    }
}

/// Histogram key: both group encodings, the thresholded prediction, and
/// the truth label.
type CountKey = (u64, u64, bool, bool);

/// The exact per-shard audit accumulator: integer counts of
/// correspondences bucketed by `(left groups, right groups, predicted,
/// truth)`. Everything the auditor needs — overall/group/pairwise
/// confusion matrices and supports — is recomputed from these buckets
/// with the same weight rules as [`crate::workload::Workload`], and the
/// recomputation is exact (integer-valued f64 sums), so merging shard
/// histograms then auditing equals auditing the concatenated workload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairCounts {
    counts: BTreeMap<CountKey, u64>,
}

impl PairCounts {
    /// An empty histogram.
    pub fn new() -> PairCounts {
        PairCounts::default()
    }

    /// Record one correspondence.
    pub fn record(&mut self, left: GroupVector, right: GroupVector, predicted: bool, truth: bool) {
        *self
            .counts
            .entry((left.0, right.0, predicted, truth))
            .or_insert(0) += 1;
    }

    /// Merge another histogram into this one (pure integer addition —
    /// commutative and associative, so merge order is immaterial).
    pub fn merge(&mut self, other: &PairCounts) {
        for (k, v) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += v;
        }
    }

    /// Total correspondences recorded.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Confusion over all correspondences, each counted once — the
    /// histogram form of [`crate::workload::Workload::overall_confusion`].
    pub fn overall_confusion(&self) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::default();
        for (&(_, _, pred, truth), &n) in &self.counts {
            if n > 0 {
                cm.record(pred, truth, n as f64);
            }
        }
        cm
    }

    /// Single-paradigm group confusion under the both-sides rule — the
    /// histogram form of [`crate::workload::Workload::group_confusion`].
    pub fn group_confusion(&self, g: GroupId) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::default();
        for (&(left, right, pred, truth), &n) in &self.counts {
            let weight = f64::from(GroupVector(left).contains(g))
                + f64::from(GroupVector(right).contains(g));
            if weight > 0.0 && n > 0 {
                cm.record(pred, truth, weight * n as f64);
            }
        }
        cm
    }

    /// Correspondences legitimate for `g` — the histogram form of
    /// [`crate::workload::Workload::group_support`].
    pub fn group_support(&self, g: GroupId) -> usize {
        self.counts
            .iter()
            .filter(|(&(left, right, _, _), _)| {
                GroupVector(left).contains(g) || GroupVector(right).contains(g)
            })
            .map(|(_, &n)| n as usize)
            .sum()
    }

    /// Pairwise-paradigm confusion — the histogram form of
    /// [`crate::workload::Workload::pairwise_confusion`].
    pub fn pairwise_confusion(&self, g1: GroupId, g2: GroupId) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::default();
        for (&(left, right, pred, truth), &n) in &self.counts {
            let (l, r) = (GroupVector(left), GroupVector(right));
            let forward = l.contains(g1) && r.contains(g2);
            let backward = l.contains(g2) && r.contains(g1);
            if (forward || backward) && n > 0 {
                cm.record(pred, truth, n as f64);
            }
        }
        cm
    }

    /// Serialize as a JSON array of bucket objects. Group bits are
    /// emitted as decimal *strings*: the JSON number model is `f64`,
    /// which cannot hold every `u64` exactly.
    pub fn to_json(&self) -> Json {
        Json::arr(self.counts.iter().map(|(&(l, r, pred, truth), &n)| {
            Json::obj([
                ("left", Json::Str(l.to_string())),
                ("right", Json::Str(r.to_string())),
                ("pred", Json::Bool(pred)),
                ("truth", Json::Bool(truth)),
                ("n", Json::Str(n.to_string())),
            ])
        }))
    }

    /// Parse the [`PairCounts::to_json`] form. `None` on any malformed
    /// bucket — checkpoint readers treat that as a corrupt shard file
    /// and recompute.
    pub fn from_json(v: &Json) -> Option<PairCounts> {
        let Json::Arr(items) = v else { return None };
        let mut out = PairCounts::new();
        for item in items {
            let left: u64 = item.get("left")?.as_str()?.parse().ok()?;
            let right: u64 = item.get("right")?.as_str()?.parse().ok()?;
            let pred = match item.get("pred")? {
                Json::Bool(b) => *b,
                _ => return None,
            };
            let truth = match item.get("truth")? {
                Json::Bool(b) => *b,
                _ => return None,
            };
            let n: u64 = item.get("n")?.as_str()?.parse().ok()?;
            *out.counts.entry((left, right, pred, truth)).or_insert(0) += n;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Correspondence, Workload};

    fn c(score: f64, truth: bool, left: u64, right: u64) -> Correspondence {
        Correspondence {
            a_row: 0,
            b_row: 0,
            score,
            truth,
            left: GroupVector(left),
            right: GroupVector(right),
        }
    }

    fn workload() -> Workload {
        Workload::new(
            vec![
                c(0.9, true, 0b01, 0b01),
                c(0.8, false, 0b01, 0b10),
                c(0.2, true, 0b10, 0b10),
                c(0.1, false, 0b10, 0b01),
                c(0.7, true, 0b01, 0b10),
            ],
            0.5,
        )
    }

    fn counts_of(w: &Workload) -> PairCounts {
        let mut pc = PairCounts::new();
        for item in &w.items {
            pc.record(item.left, item.right, w.prediction(item), item.truth);
        }
        pc
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let plan = ShardPlan::partition(10, 3);
        let s = plan.shards();
        assert_eq!(s.len(), 3);
        assert_eq!((s[0].start, s[0].end), (0, 4));
        assert_eq!((s[1].start, s[1].end), (4, 7));
        assert_eq!((s[2].start, s[2].end), (7, 10));
        assert!(s.iter().all(|sh| sh.len() >= 3));
    }

    #[test]
    fn partition_clamps_degenerate_requests() {
        assert_eq!(ShardPlan::partition(5, 0).len(), 1);
        assert_eq!(ShardPlan::partition(5, 99).len(), 5);
        let empty = ShardPlan::partition(0, 4);
        assert_eq!(empty.len(), 1);
        assert!(empty.shards()[0].is_empty());
    }

    #[test]
    fn window_len_is_clamped_and_deterministic() {
        assert_eq!(window_len(100, None, 8), 100);
        assert_eq!(window_len(100, Some(160), 16), 10);
        assert_eq!(window_len(100, Some(0), 16), 1, "always makes progress");
        assert_eq!(window_len(100, Some(u64::MAX), 16), 100);
        assert_eq!(window_len(0, None, 8), 1);
    }

    #[test]
    fn histogram_reproduces_workload_confusions_bitwise() {
        let w = workload();
        let pc = counts_of(&w);
        assert_eq!(pc.total(), w.len() as u64);
        let (a, b) = (w.overall_confusion(), pc.overall_confusion());
        assert_eq!((a.tp, a.fp, a.fn_, a.tn), (b.tp, b.fp, b.fn_, b.tn));
        for g in [GroupId(0), GroupId(1)] {
            let (wg, pg) = (w.group_confusion(g), pc.group_confusion(g));
            assert_eq!((wg.tp, wg.fp, wg.fn_, wg.tn), (pg.tp, pg.fp, pg.fn_, pg.tn));
            assert_eq!(w.group_support(g), pc.group_support(g));
        }
        let (wp, pp) = (
            w.pairwise_confusion(GroupId(0), GroupId(1)),
            pc.pairwise_confusion(GroupId(0), GroupId(1)),
        );
        assert_eq!((wp.tp, wp.fp, wp.fn_, wp.tn), (pp.tp, pp.fp, pp.fn_, pp.tn));
    }

    #[test]
    fn sharded_merge_equals_whole_histogram() {
        let w = workload();
        let whole = counts_of(&w);
        let plan = ShardPlan::partition(w.len(), 2);
        let mut merged = PairCounts::new();
        for sh in plan.shards() {
            let part = Workload::new(w.items[sh.start..sh.end].to_vec(), w.threshold);
            merged.merge(&counts_of(&part));
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let pc = counts_of(&workload());
        let back = PairCounts::from_json(&pc.to_json()).unwrap();
        assert_eq!(back, pc);
        // Large group bits survive the string encoding exactly.
        let mut big = PairCounts::new();
        big.record(GroupVector(u64::MAX), GroupVector(1 << 60), true, false);
        let round = PairCounts::from_json(&big.to_json()).unwrap();
        assert_eq!(round, big);
    }

    #[test]
    fn malformed_json_is_rejected_not_misread() {
        assert!(PairCounts::from_json(&Json::Null).is_none());
        let bad = Json::arr([Json::obj([("left", Json::Str("x".into()))])]);
        assert!(PairCounts::from_json(&bad).is_none());
    }
}
