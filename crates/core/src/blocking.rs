//! Candidate-pair generation (blocking).
//!
//! Comparing every A×B pair is quadratic; blocking restricts candidates
//! to pairs that share evidence. Two standard schemes are provided:
//! token blocking (share any word token in the blocking columns) and
//! sorted-neighborhood (windowed scan over a sort key). Both are also
//! available behind the [`Blocker`] trait, so the suite pipeline (and
//! anything else) can select a scheme at configuration time
//! (`SuiteBuilder::blocker`).
//!
//! Token blocking runs as an interned batch kernel: every token is
//! mapped to a dense `u32` id once (`TokenInterner`), per-row dedup
//! uses a stamp array instead of a per-row hash set, and pair emission
//! fans out over the [`Exec`] pool in coarse token-id chunks. The
//! candidate set is identical to the naive string-keyed formulation —
//! the final sort + dedup makes emission order immaterial.

use std::collections::HashSet;

use fairem_text::{word_tokens, TokenInterner};

use crate::exec::Exec;
use crate::schema::Table;

/// Candidate pairs as `(a_row, b_row)` indices.
pub type CandidatePairs = Vec<(usize, usize)>;

/// A candidate-generation scheme, selectable at configuration time.
///
/// Implementations must be deterministic pure functions of the two
/// tables: the returned pair list is sorted and duplicate-free, and
/// identical for every `exec` (the pool only changes wall-clock time).
pub trait Blocker: std::fmt::Debug + Send + Sync {
    /// A short stable name for reports and spans.
    fn name(&self) -> &'static str;

    /// Generate the candidate pairs for `a` × `b` under `exec`.
    fn candidates(&self, a: &Table, b: &Table, exec: &Exec) -> CandidatePairs;
}

/// [`Blocker`] wrapper over [`token_blocking`].
#[derive(Debug, Clone)]
pub struct TokenBlocking {
    /// Columns whose word tokens link records.
    pub columns: Vec<String>,
    /// Stop-token guard: blocks larger than this are skipped.
    pub max_block: usize,
}

impl Blocker for TokenBlocking {
    fn name(&self) -> &'static str {
        "token"
    }

    fn candidates(&self, a: &Table, b: &Table, exec: &Exec) -> CandidatePairs {
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        token_blocking_exec(a, b, &cols, self.max_block, exec)
    }
}

/// [`Blocker`] wrapper over [`sorted_neighborhood`].
#[derive(Debug, Clone)]
pub struct SortedNeighborhood {
    /// The sort-key column (must exist in both tables).
    pub key_column: String,
    /// Sliding-window size over the merged sorted records.
    pub window: usize,
}

impl Blocker for SortedNeighborhood {
    fn name(&self) -> &'static str {
        "sorted"
    }

    fn candidates(&self, a: &Table, b: &Table, _exec: &Exec) -> CandidatePairs {
        // Sort-bound: the merged key sort dominates, so there is no
        // profitable fan-out stage; the pool is deliberately unused.
        sorted_neighborhood(a, b, &self.key_column, self.window)
    }
}

/// Token blocking: a pair is a candidate when the two records share at
/// least one word token across the given columns (column names must
/// exist in the respective table). Blocks larger than `max_block` are
/// skipped as non-discriminative (stop-token guard).
pub fn token_blocking(a: &Table, b: &Table, columns: &[&str], max_block: usize) -> CandidatePairs {
    token_blocking_exec(a, b, columns, max_block, &Exec::sequential())
}

/// One side's inverted index over interned token ids: `rows_of[id]` are
/// the rows containing token `id` (increasing, duplicate-free).
fn index_side(t: &Table, columns: &[&str], interner: &mut TokenInterner) -> Vec<Vec<u32>> {
    let cols: Vec<usize> = columns
        .iter()
        .map(|c| {
            t.column_index(c)
                // fairem: allow(panic) — documented contract: blocking columns come from validated config
                .unwrap_or_else(|| panic!("blocking column {c:?} missing"))
        })
        .collect();
    let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); interner.len()];
    // Per-row token dedup via a stamp array over token ids (`row + 1`
    // marks "seen in this row"; 0 is never a stamp).
    let mut stamp: Vec<u32> = vec![0; interner.len()];
    for row in 0..t.len() {
        for &c in &cols {
            for tok in word_tokens(t.value(row, c)) {
                let id = interner.intern(&tok) as usize;
                if rows_of.len() <= id {
                    rows_of.resize(id + 1, Vec::new());
                    stamp.resize(id + 1, 0);
                }
                if stamp[id] != row as u32 + 1 {
                    stamp[id] = row as u32 + 1;
                    rows_of[id].push(row as u32);
                }
            }
        }
    }
    rows_of
}

/// The interned token-blocking kernel behind [`token_blocking`] and
/// [`TokenBlocking`]: index both sides over one interner, pick the
/// token ids passing the stop-token guard, and emit each id's cross
/// product over the pool in token-id chunks. Sorting + deduping the
/// union makes the result independent of emission order, hence
/// identical for every worker count.
fn token_blocking_exec(
    a: &Table,
    b: &Table,
    columns: &[&str],
    max_block: usize,
    exec: &Exec,
) -> CandidatePairs {
    assert!(!columns.is_empty(), "blocking needs at least one column");
    let mut interner = TokenInterner::new();
    let ia = index_side(a, columns, &mut interner);
    let ib = index_side(b, columns, &mut interner);
    let eligible: Vec<usize> = (0..ia.len())
        .filter(|&id| {
            let rows_a = &ia[id];
            let Some(rows_b) = ib.get(id) else {
                return false;
            };
            !rows_a.is_empty()
                && !rows_b.is_empty()
                && rows_a.len() * rows_b.len() <= max_block * max_block
        })
        .collect();
    exec.recorder.add("blocking.tokens", eligible.len() as u64);
    let chunks = exec.pool.par_map(eligible.len(), |k| {
        let id = eligible[k];
        let (rows_a, rows_b) = (&ia[id], &ib[id]);
        let mut part = Vec::with_capacity(rows_a.len() * rows_b.len());
        for &ra in rows_a {
            for &rb in rows_b {
                part.push((ra as usize, rb as usize));
            }
        }
        part
    });
    let mut out: CandidatePairs = chunks.into_iter().flatten().collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Sorted-neighborhood blocking: both tables are sorted by a key column,
/// merged, and every A-B pair within a sliding window of size `window`
/// becomes a candidate.
pub fn sorted_neighborhood(
    a: &Table,
    b: &Table,
    key_column: &str,
    window: usize,
) -> CandidatePairs {
    assert!(window >= 2, "window must be at least 2");
    let ka = a
        .column_index(key_column)
        // fairem: allow(panic) — documented contract: key column comes from validated config
        .unwrap_or_else(|| panic!("key column {key_column:?} missing in A"));
    let kb = b
        .column_index(key_column)
        // fairem: allow(panic) — documented contract: key column comes from validated config
        .unwrap_or_else(|| panic!("key column {key_column:?} missing in B"));
    // Merge records of both sides tagged with origin.
    let mut merged: Vec<(String, bool, usize)> = Vec::with_capacity(a.len() + b.len());
    for row in 0..a.len() {
        merged.push((a.value(row, ka).to_lowercase(), false, row));
    }
    for row in 0..b.len() {
        merged.push((b.value(row, kb).to_lowercase(), true, row));
    }
    merged.sort();
    let mut out: CandidatePairs = Vec::new();
    for i in 0..merged.len() {
        let end = (i + window).min(merged.len());
        for j in (i + 1)..end {
            match (&merged[i], &merged[j]) {
                ((_, false, ra), (_, true, rb)) => {
                    out.push((*ra, *rb));
                }
                ((_, true, rb), (_, false, ra)) => {
                    out.push((*ra, *rb));
                }
                _ => {}
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Recall of a blocking result against the ground-truth matches
/// (fraction of true pairs that survived blocking).
pub fn blocking_recall(candidates: &CandidatePairs, truth: &[(usize, usize)]) -> f64 {
    if truth.is_empty() {
        return f64::NAN;
    }
    let set: HashSet<&(usize, usize)> = candidates.iter().collect();
    let hit = truth.iter().filter(|p| set.contains(p)).count();
    hit as f64 / truth.len() as f64
}

/// Per-group blocking recall: blocking itself can be unfair — e.g. a
/// token blocker loses romanization-drifted duplicates, so a group's
/// true matches never even reach the matcher. Returns `(group name,
/// recall, truth-pair support)` per group, where a truth pair belongs to
/// a group when either entity does (the single-fairness rule).
pub fn per_group_blocking_recall(
    candidates: &CandidatePairs,
    truth: &[(usize, usize)],
    enc_a: &[crate::sensitive::GroupVector],
    enc_b: &[crate::sensitive::GroupVector],
    space: &crate::sensitive::GroupSpace,
) -> Vec<(String, f64, usize)> {
    let set: HashSet<&(usize, usize)> = candidates.iter().collect();
    space
        .ids()
        .map(|g| {
            let legit: Vec<&(usize, usize)> = truth
                .iter()
                .filter(|&&(ra, rb)| enc_a[ra].contains(g) || enc_b[rb].contains(g))
                .collect();
            let recall = if legit.is_empty() {
                f64::NAN
            } else {
                legit.iter().filter(|p| set.contains(**p)).count() as f64 / legit.len() as f64
            };
            (space.name(g).to_owned(), recall, legit.len())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_csvio::parse_csv_str;
    use fairem_par::WorkerPool;

    /// The pre-interning string-keyed formulation, kept as the
    /// reference the kernel must reproduce exactly.
    fn naive_token_blocking(
        a: &Table,
        b: &Table,
        columns: &[&str],
        max_block: usize,
    ) -> CandidatePairs {
        use std::collections::BTreeMap;
        let index_side = |t: &Table| -> BTreeMap<String, Vec<usize>> {
            let cols: Vec<usize> = columns
                .iter()
                .map(|c| t.column_index(c).expect("blocking column"))
                .collect();
            let mut idx: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            for row in 0..t.len() {
                let mut seen: HashSet<String> = HashSet::new();
                for &c in &cols {
                    for tok in word_tokens(t.value(row, c)) {
                        if seen.insert(tok.clone()) {
                            idx.entry(tok).or_default().push(row);
                        }
                    }
                }
            }
            idx
        };
        let ia = index_side(a);
        let ib = index_side(b);
        let mut out: CandidatePairs = Vec::new();
        for (tok, rows_a) in &ia {
            let Some(rows_b) = ib.get(tok) else { continue };
            if rows_a.len() * rows_b.len() > max_block * max_block {
                continue;
            }
            for &ra in rows_a {
                for &rb in rows_b {
                    out.push((ra, rb));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn tables() -> (Table, Table) {
        let a = Table::from_csv(
            parse_csv_str("id,name\na0,li wei\na1,john smith\na2,hans muller\n").unwrap(),
        )
        .unwrap();
        let b = Table::from_csv(
            parse_csv_str("id,name\nb0,wei li\nb1,jon smith\nb2,maria garcia\n").unwrap(),
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn token_blocking_links_shared_tokens() {
        let (a, b) = tables();
        let pairs = token_blocking(&a, &b, &["name"], 100);
        assert!(pairs.contains(&(0, 0))); // shares li & wei
        assert!(pairs.contains(&(1, 1))); // shares smith
        assert!(!pairs.contains(&(2, 2))); // muller vs garcia: nothing shared
    }

    #[test]
    fn stop_tokens_are_skipped() {
        // Every record shares "dept", which would cross-product everything.
        let a =
            Table::from_csv(parse_csv_str("id,name\na0,dept x\na1,dept y\na2,dept z\n").unwrap())
                .unwrap();
        let b =
            Table::from_csv(parse_csv_str("id,name\nb0,dept x\nb1,dept q\nb2,dept r\n").unwrap())
                .unwrap();
        let pairs = token_blocking(&a, &b, &["name"], 2);
        // "dept" block is 3×3 > 2×2 → skipped; only "x" links (0,0).
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn sorted_neighborhood_links_nearby_keys() {
        let (a, b) = tables();
        let pairs = sorted_neighborhood(&a, &b, "name", 3);
        assert!(pairs.contains(&(1, 1)), "{pairs:?}"); // john/jon adjacent
                                                       // All candidate pairs are valid indexes.
        for (ra, rb) in &pairs {
            assert!(*ra < a.len() && *rb < b.len());
        }
    }

    #[test]
    fn recall_measures_truth_coverage() {
        let cands = vec![(0, 0), (1, 1)];
        assert_eq!(blocking_recall(&cands, &[(0, 0), (2, 2)]), 0.5);
        assert_eq!(blocking_recall(&cands, &[(0, 0)]), 1.0);
        assert!(blocking_recall(&cands, &[]).is_nan());
    }

    #[test]
    fn interned_kernel_matches_the_naive_reference() {
        let (a, b) = tables();
        // Multi-column, repeated tokens, empty overlap, tight and loose
        // stop-token guards.
        let a2 = Table::from_csv(
            parse_csv_str(
                "id,name,org\na0,li wei wei,tsinghua\na1,john smith,dept x\na2,dept dept,dept y\n",
            )
            .unwrap(),
        )
        .unwrap();
        let b2 = Table::from_csv(
            parse_csv_str(
                "id,name,org\nb0,wei li,peking\nb1,jon smith,dept q\nb2,empty,\n",
            )
            .unwrap(),
        )
        .unwrap();
        for max_block in [1, 2, 100] {
            assert_eq!(
                token_blocking(&a, &b, &["name"], max_block),
                naive_token_blocking(&a, &b, &["name"], max_block),
                "max_block={max_block}"
            );
            assert_eq!(
                token_blocking(&a2, &b2, &["name", "org"], max_block),
                naive_token_blocking(&a2, &b2, &["name", "org"], max_block),
                "two columns, max_block={max_block}"
            );
        }
    }

    #[test]
    fn parallel_emission_is_identical_to_sequential() {
        let (a, b) = tables();
        let blocker = TokenBlocking {
            columns: vec!["name".into()],
            max_block: 100,
        };
        let seq = blocker.candidates(&a, &b, &Exec::sequential());
        for workers in [2, 4] {
            let par = blocker.candidates(&a, &b, &Exec::with_pool(WorkerPool::new(workers)));
            assert_eq!(seq, par, "workers={workers}");
        }
        assert_eq!(seq, token_blocking(&a, &b, &["name"], 100));
    }

    #[test]
    fn blocker_trait_selects_schemes() {
        let (a, b) = tables();
        let tb = TokenBlocking {
            columns: vec!["name".into()],
            max_block: 100,
        };
        let sn = SortedNeighborhood {
            key_column: "name".into(),
            window: 3,
        };
        assert_eq!(tb.name(), "token");
        assert_eq!(sn.name(), "sorted");
        let exec = Exec::default();
        assert_eq!(
            tb.candidates(&a, &b, &exec),
            token_blocking(&a, &b, &["name"], 100)
        );
        assert_eq!(
            sn.candidates(&a, &b, &exec),
            sorted_neighborhood(&a, &b, "name", 3)
        );
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn unknown_blocking_column_panics() {
        let (a, b) = tables();
        let _ = token_blocking(&a, &b, &["nope"], 10);
    }

    #[test]
    fn per_group_recall_exposes_blocker_bias() {
        use crate::sensitive::{GroupSpace, SensitiveAttr};
        // Group x's duplicate shares no token (drifted); group y's does.
        let a =
            Table::from_csv(parse_csv_str("id,name,g\na0,wang wei,x\na1,john smith,y\n").unwrap())
                .unwrap();
        let b =
            Table::from_csv(parse_csv_str("id,name,g\nb0,wong way,x\nb1,jon smith,y\n").unwrap())
                .unwrap();
        let space = GroupSpace::extract(&[&a, &b], vec![SensitiveAttr::categorical("g")]);
        let enc_a = space.encode_table(&a);
        let enc_b = space.encode_table(&b);
        let candidates = token_blocking(&a, &b, &["name"], 100);
        let truth = vec![(0, 0), (1, 1)];
        let rows = per_group_blocking_recall(&candidates, &truth, &enc_a, &enc_b, &space);
        let recall_of = |name: &str| rows.iter().find(|(n, _, _)| n == name).unwrap().1;
        assert_eq!(recall_of("x"), 0.0, "drifted pair is lost by the blocker");
        assert_eq!(recall_of("y"), 1.0);
        // Overall recall masks the group gap.
        assert_eq!(blocking_recall(&candidates, &truth), 0.5);
    }
}
