//! Candidate-pair generation (blocking).
//!
//! Comparing every A×B pair is quadratic; blocking restricts candidates
//! to pairs that share evidence. Two standard schemes are provided:
//! token blocking (share any word token in the blocking columns) and
//! sorted-neighborhood (windowed scan over a sort key).

use std::collections::{BTreeMap, HashSet};

use fairem_text::word_tokens;

use crate::schema::Table;

/// Candidate pairs as `(a_row, b_row)` indices.
pub type CandidatePairs = Vec<(usize, usize)>;

/// Token blocking: a pair is a candidate when the two records share at
/// least one word token across the given columns (column names must
/// exist in the respective table). Blocks larger than `max_block` are
/// skipped as non-discriminative (stop-token guard).
pub fn token_blocking(a: &Table, b: &Table, columns: &[&str], max_block: usize) -> CandidatePairs {
    assert!(!columns.is_empty(), "blocking needs at least one column");
    let index_side = |t: &Table| -> BTreeMap<String, Vec<usize>> {
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| {
                t.column_index(c)
                    // fairem: allow(panic) — documented contract: blocking columns come from validated config
                    .unwrap_or_else(|| panic!("blocking column {c:?} missing"))
            })
            .collect();
        let mut idx: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for row in 0..t.len() {
            let mut seen: HashSet<String> = HashSet::new();
            for &c in &cols {
                for tok in word_tokens(t.value(row, c)) {
                    if seen.insert(tok.clone()) {
                        idx.entry(tok).or_default().push(row);
                    }
                }
            }
        }
        idx
    };
    let ia = index_side(a);
    let ib = index_side(b);
    let mut out: CandidatePairs = Vec::new();
    for (tok, rows_a) in &ia {
        let Some(rows_b) = ib.get(tok) else { continue };
        if rows_a.len() * rows_b.len() > max_block * max_block {
            continue; // stop token
        }
        for &ra in rows_a {
            for &rb in rows_b {
                out.push((ra, rb));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Sorted-neighborhood blocking: both tables are sorted by a key column,
/// merged, and every A-B pair within a sliding window of size `window`
/// becomes a candidate.
pub fn sorted_neighborhood(
    a: &Table,
    b: &Table,
    key_column: &str,
    window: usize,
) -> CandidatePairs {
    assert!(window >= 2, "window must be at least 2");
    let ka = a
        .column_index(key_column)
        // fairem: allow(panic) — documented contract: key column comes from validated config
        .unwrap_or_else(|| panic!("key column {key_column:?} missing in A"));
    let kb = b
        .column_index(key_column)
        // fairem: allow(panic) — documented contract: key column comes from validated config
        .unwrap_or_else(|| panic!("key column {key_column:?} missing in B"));
    // Merge records of both sides tagged with origin.
    let mut merged: Vec<(String, bool, usize)> = Vec::with_capacity(a.len() + b.len());
    for row in 0..a.len() {
        merged.push((a.value(row, ka).to_lowercase(), false, row));
    }
    for row in 0..b.len() {
        merged.push((b.value(row, kb).to_lowercase(), true, row));
    }
    merged.sort();
    let mut out: CandidatePairs = Vec::new();
    for i in 0..merged.len() {
        let end = (i + window).min(merged.len());
        for j in (i + 1)..end {
            match (&merged[i], &merged[j]) {
                ((_, false, ra), (_, true, rb)) => {
                    out.push((*ra, *rb));
                }
                ((_, true, rb), (_, false, ra)) => {
                    out.push((*ra, *rb));
                }
                _ => {}
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Recall of a blocking result against the ground-truth matches
/// (fraction of true pairs that survived blocking).
pub fn blocking_recall(candidates: &CandidatePairs, truth: &[(usize, usize)]) -> f64 {
    if truth.is_empty() {
        return f64::NAN;
    }
    let set: HashSet<&(usize, usize)> = candidates.iter().collect();
    let hit = truth.iter().filter(|p| set.contains(p)).count();
    hit as f64 / truth.len() as f64
}

/// Per-group blocking recall: blocking itself can be unfair — e.g. a
/// token blocker loses romanization-drifted duplicates, so a group's
/// true matches never even reach the matcher. Returns `(group name,
/// recall, truth-pair support)` per group, where a truth pair belongs to
/// a group when either entity does (the single-fairness rule).
pub fn per_group_blocking_recall(
    candidates: &CandidatePairs,
    truth: &[(usize, usize)],
    enc_a: &[crate::sensitive::GroupVector],
    enc_b: &[crate::sensitive::GroupVector],
    space: &crate::sensitive::GroupSpace,
) -> Vec<(String, f64, usize)> {
    let set: HashSet<&(usize, usize)> = candidates.iter().collect();
    space
        .ids()
        .map(|g| {
            let legit: Vec<&(usize, usize)> = truth
                .iter()
                .filter(|&&(ra, rb)| enc_a[ra].contains(g) || enc_b[rb].contains(g))
                .collect();
            let recall = if legit.is_empty() {
                f64::NAN
            } else {
                legit.iter().filter(|p| set.contains(**p)).count() as f64 / legit.len() as f64
            };
            (space.name(g).to_owned(), recall, legit.len())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_csvio::parse_csv_str;

    fn tables() -> (Table, Table) {
        let a = Table::from_csv(
            parse_csv_str("id,name\na0,li wei\na1,john smith\na2,hans muller\n").unwrap(),
        )
        .unwrap();
        let b = Table::from_csv(
            parse_csv_str("id,name\nb0,wei li\nb1,jon smith\nb2,maria garcia\n").unwrap(),
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn token_blocking_links_shared_tokens() {
        let (a, b) = tables();
        let pairs = token_blocking(&a, &b, &["name"], 100);
        assert!(pairs.contains(&(0, 0))); // shares li & wei
        assert!(pairs.contains(&(1, 1))); // shares smith
        assert!(!pairs.contains(&(2, 2))); // muller vs garcia: nothing shared
    }

    #[test]
    fn stop_tokens_are_skipped() {
        // Every record shares "dept", which would cross-product everything.
        let a =
            Table::from_csv(parse_csv_str("id,name\na0,dept x\na1,dept y\na2,dept z\n").unwrap())
                .unwrap();
        let b =
            Table::from_csv(parse_csv_str("id,name\nb0,dept x\nb1,dept q\nb2,dept r\n").unwrap())
                .unwrap();
        let pairs = token_blocking(&a, &b, &["name"], 2);
        // "dept" block is 3×3 > 2×2 → skipped; only "x" links (0,0).
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn sorted_neighborhood_links_nearby_keys() {
        let (a, b) = tables();
        let pairs = sorted_neighborhood(&a, &b, "name", 3);
        assert!(pairs.contains(&(1, 1)), "{pairs:?}"); // john/jon adjacent
                                                       // All candidate pairs are valid indexes.
        for (ra, rb) in &pairs {
            assert!(*ra < a.len() && *rb < b.len());
        }
    }

    #[test]
    fn recall_measures_truth_coverage() {
        let cands = vec![(0, 0), (1, 1)];
        assert_eq!(blocking_recall(&cands, &[(0, 0), (2, 2)]), 0.5);
        assert_eq!(blocking_recall(&cands, &[(0, 0)]), 1.0);
        assert!(blocking_recall(&cands, &[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn unknown_blocking_column_panics() {
        let (a, b) = tables();
        let _ = token_blocking(&a, &b, &["nope"], 10);
    }

    #[test]
    fn per_group_recall_exposes_blocker_bias() {
        use crate::sensitive::{GroupSpace, SensitiveAttr};
        // Group x's duplicate shares no token (drifted); group y's does.
        let a =
            Table::from_csv(parse_csv_str("id,name,g\na0,wang wei,x\na1,john smith,y\n").unwrap())
                .unwrap();
        let b =
            Table::from_csv(parse_csv_str("id,name,g\nb0,wong way,x\nb1,jon smith,y\n").unwrap())
                .unwrap();
        let space = GroupSpace::extract(&[&a, &b], vec![SensitiveAttr::categorical("g")]);
        let enc_a = space.encode_table(&a);
        let enc_b = space.encode_table(&b);
        let candidates = token_blocking(&a, &b, &["name"], 100);
        let truth = vec![(0, 0), (1, 1)];
        let rows = per_group_blocking_recall(&candidates, &truth, &enc_a, &enc_b, &space);
        let recall_of = |name: &str| rows.iter().find(|(n, _, _)| n == name).unwrap().1;
        assert_eq!(recall_of("x"), 0.0, "drifted pair is lost by the blocker");
        assert_eq!(recall_of("y"), 1.0);
        // Overall recall masks the group gap.
        assert_eq!(blocking_recall(&candidates, &truth), 0.5);
    }
}
