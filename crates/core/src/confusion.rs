//! Confusion matrices and the rates the fairness measures are built on.

/// A binary confusion matrix with `f64` counts (group-side counting can
/// increment a cell twice for one correspondence, see
//  [`crate::workload`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConfusionMatrix {
    /// True positives: predicted match, truly a match.
    pub tp: f64,
    /// False positives: predicted match, truly a non-match.
    pub fp: f64,
    /// False negatives: predicted non-match, truly a match.
    pub fn_: f64,
    /// True negatives: predicted non-match, truly a non-match.
    pub tn: f64,
}

impl ConfusionMatrix {
    /// Record one outcome with a given weight (1.0 for the overall
    /// workload; 1.0 per member side for group counting).
    pub fn record(&mut self, predicted: bool, truth: bool, weight: f64) {
        match (predicted, truth) {
            (true, true) => self.tp += weight,
            (true, false) => self.fp += weight,
            (false, true) => self.fn_ += weight,
            (false, false) => self.tn += weight,
        }
    }

    /// Total weight observed.
    pub fn total(&self) -> f64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Accuracy `(TP+TN)/total`; `NaN` when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Predicted-positive rate `(TP+FP)/total` (statistical parity's
    /// quantity); `NaN` when empty.
    pub fn positive_rate(&self) -> f64 {
        ratio(self.tp + self.fp, self.total())
    }

    /// True positive rate / recall `TP/(TP+FN)`; `NaN` when no positives.
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// False positive rate `FP/(FP+TN)`; `NaN` when no negatives.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// True negative rate `TN/(FP+TN)`; `NaN` when no negatives.
    pub fn tnr(&self) -> f64 {
        ratio(self.tn, self.fp + self.tn)
    }

    /// False negative rate `FN/(TP+FN)`; `NaN` when no positives.
    pub fn fnr(&self) -> f64 {
        ratio(self.fn_, self.tp + self.fn_)
    }

    /// Positive predictive value / precision `TP/(TP+FP)`; `NaN` when
    /// nothing was predicted positive.
    pub fn ppv(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Negative predictive value `TN/(TN+FN)`; `NaN` when nothing was
    /// predicted negative.
    pub fn npv(&self) -> f64 {
        ratio(self.tn, self.tn + self.fn_)
    }

    /// False discovery rate `FP/(TP+FP)`; `NaN` when nothing was
    /// predicted positive.
    pub fn fdr(&self) -> f64 {
        ratio(self.fp, self.tp + self.fp)
    }

    /// False omission rate `FN/(TN+FN)`; `NaN` when nothing was
    /// predicted negative.
    pub fn for_rate(&self) -> f64 {
        ratio(self.fn_, self.tn + self.fn_)
    }

    /// F1 score; `NaN` when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.ppv();
        let r = self.tpr();
        if p.is_nan() || r.is_nan() || p + r == 0.0 {
            f64::NAN
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Prevalence of true matches `(TP+FN)/total`; `NaN` when empty.
    pub fn prevalence(&self) -> f64 {
        ratio(self.tp + self.fn_, self.total())
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        f64::NAN
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> ConfusionMatrix {
        ConfusionMatrix {
            tp: 40.0,
            fp: 10.0,
            fn_: 20.0,
            tn: 130.0,
        }
    }

    #[test]
    fn rates_are_consistent() {
        let c = cm();
        assert_eq!(c.total(), 200.0);
        assert!((c.accuracy() - 0.85).abs() < 1e-12);
        assert!((c.tpr() - 40.0 / 60.0).abs() < 1e-12);
        assert!((c.fnr() - 20.0 / 60.0).abs() < 1e-12);
        assert!((c.fpr() - 10.0 / 140.0).abs() < 1e-12);
        assert!((c.tnr() - 130.0 / 140.0).abs() < 1e-12);
        assert!((c.ppv() - 0.8).abs() < 1e-12);
        assert!((c.npv() - 130.0 / 150.0).abs() < 1e-12);
        assert!((c.positive_rate() - 0.25).abs() < 1e-12);
        assert!((c.prevalence() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn complementary_pairs_sum_to_one() {
        let c = cm();
        assert!((c.tpr() + c.fnr() - 1.0).abs() < 1e-12);
        assert!((c.fpr() + c.tnr() - 1.0).abs() < 1e-12);
        assert!((c.ppv() + c.fdr() - 1.0).abs() < 1e-12);
        assert!((c.npv() + c.for_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn record_accumulates_weighted() {
        let mut c = ConfusionMatrix::default();
        c.record(true, true, 2.0);
        c.record(false, true, 1.0);
        c.record(true, false, 1.0);
        c.record(false, false, 1.0);
        assert_eq!(c.tp, 2.0);
        assert_eq!(c.total(), 5.0);
    }

    #[test]
    fn empty_denominators_are_nan() {
        let c = ConfusionMatrix::default();
        assert!(c.accuracy().is_nan());
        assert!(c.tpr().is_nan());
        assert!(c.ppv().is_nan());
        assert!(c.f1().is_nan());
        let pos_only = ConfusionMatrix {
            tp: 1.0,
            fn_: 1.0,
            ..Default::default()
        };
        assert!(pos_only.fpr().is_nan());
    }

    #[test]
    fn f1_matches_formula() {
        let c = cm();
        let p = c.ppv();
        let r = c.tpr();
        assert!((c.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }
}
