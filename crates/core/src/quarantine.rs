//! Input hygiene: malformed rows are quarantined with per-row reasons
//! instead of panicking the pipeline.
//!
//! The invariant consumers rely on: for every input table,
//! `quarantined + kept == input rows`, and a row is quarantined only for
//! one of the structural reasons below — valid rows are never dropped.

/// Why one row was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowIssue {
    /// The CSV row had a different field count than the header.
    RaggedRow {
        /// Fields found.
        found: usize,
        /// Fields the header demands.
        expected: usize,
    },
    /// The row's `id` field is empty.
    EmptyId,
    /// The row repeats an id already adopted from an earlier row.
    DuplicateId {
        /// The clashing id.
        id: String,
    },
    /// A ground-truth match references an id missing from a table.
    UnknownMatchId {
        /// `"A"` or `"B"` — which side failed to resolve.
        side: char,
        /// The unresolvable id.
        id: String,
    },
    /// An external score failed to parse or was non-finite.
    BadScore {
        /// The offending raw value.
        value: String,
    },
}

impl std::fmt::Display for RowIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RowIssue::RaggedRow { found, expected } => {
                write!(f, "ragged row: {found} fields, expected {expected}")
            }
            RowIssue::EmptyId => write!(f, "empty id"),
            RowIssue::DuplicateId { id } => write!(f, "duplicate id {id:?}"),
            RowIssue::UnknownMatchId { side, id } => {
                write!(f, "match references unknown {side}-side id {id:?}")
            }
            RowIssue::BadScore { value } => write!(f, "unusable score {value:?}"),
        }
    }
}

/// One quarantined row: where it came from and why it was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// Source table (`"tableA"`, `"tableB"`, `"matches"`, `"scores"`).
    pub table: String,
    /// 1-based data-row number in the source (header excluded).
    pub row: usize,
    /// The reason this row was rejected.
    pub issue: RowIssue,
}

/// All rows quarantined while ingesting one dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Rejected rows in input order.
    pub rows: Vec<QuarantinedRow>,
}

impl QuarantineReport {
    /// No rows quarantined.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of quarantined rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Record one rejected row.
    pub fn push(&mut self, table: impl Into<String>, row: usize, issue: RowIssue) {
        self.rows.push(QuarantinedRow {
            table: table.into(),
            row,
            issue,
        });
    }

    /// Absorb another report (e.g. per-table sub-reports).
    pub fn extend(&mut self, other: QuarantineReport) {
        self.rows.extend(other.rows);
    }

    /// Quarantined rows originating from `table`.
    pub fn from_table(&self, table: &str) -> usize {
        self.rows.iter().filter(|r| r.table == table).count()
    }

    /// Multi-line human-readable listing (empty string when clean).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.rows.is_empty() {
            return out;
        }
        out.push_str(&format!("quarantined {} row(s):\n", self.rows.len()));
        for r in &self.rows {
            out.push_str(&format!("  {} row {}: {}\n", r.table, r.row, r.issue));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_and_renders() {
        let mut q = QuarantineReport::default();
        assert!(q.is_empty());
        q.push("tableA", 3, RowIssue::EmptyId);
        q.push(
            "matches",
            1,
            RowIssue::UnknownMatchId {
                side: 'B',
                id: "b9".into(),
            },
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.from_table("tableA"), 1);
        let r = q.render();
        assert!(r.contains("tableA row 3: empty id"), "{r}");
        assert!(r.contains("unknown B-side id \"b9\""), "{r}");
    }

    #[test]
    fn extend_merges_reports() {
        let mut a = QuarantineReport::default();
        a.push("tableA", 1, RowIssue::EmptyId);
        let mut b = QuarantineReport::default();
        b.push("tableB", 2, RowIssue::DuplicateId { id: "x".into() });
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.from_table("tableB"), 1);
    }
}
