//! Table and record views over Magellan-format CSV data.
//!
//! A [`Table`] wraps a [`fairem_csvio::CsvTable`] whose first conceptual
//! column is a unique `id`; all other columns are attribute values. The
//! suite never mutates tables — records are borrowed views.

use std::collections::HashMap;

use fairem_csvio::CsvTable;

use crate::quarantine::{QuarantineReport, RowIssue};

/// Errors raised while adopting a CSV table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// No `id` column present.
    MissingId,
    /// Two rows share an id.
    DuplicateId(String),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::MissingId => write!(f, "table has no 'id' column"),
            SchemaError::DuplicateId(id) => write!(f, "duplicate id {id:?}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// An immutable entity table with an id index.
#[derive(Debug, Clone)]
pub struct Table {
    csv: CsvTable,
    id_col: usize,
    id_index: HashMap<String, usize>,
}

impl Table {
    /// Adopt a CSV table; requires an `id` column with unique values.
    pub fn from_csv(csv: CsvTable) -> Result<Table, SchemaError> {
        let id_col = csv.column_index("id").ok_or(SchemaError::MissingId)?;
        let mut id_index = HashMap::with_capacity(csv.len());
        for (i, row) in csv.rows.iter().enumerate() {
            if id_index.insert(row[id_col].clone(), i).is_some() {
                return Err(SchemaError::DuplicateId(row[id_col].clone()));
            }
        }
        Ok(Table {
            csv,
            id_col,
            id_index,
        })
    }

    /// Adopt a CSV table, quarantining rows with empty or duplicate ids
    /// instead of erroring. The first occurrence of a duplicated id is
    /// kept; later repeats are rejected. A missing `id` column is still a
    /// hard error — nothing can be salvaged without identity.
    ///
    /// Invariant: `kept rows + quarantined rows == input rows`.
    pub fn from_csv_lenient(
        csv: CsvTable,
        table_name: &str,
    ) -> Result<(Table, QuarantineReport), SchemaError> {
        let id_col = csv.column_index("id").ok_or(SchemaError::MissingId)?;
        let mut quarantine = QuarantineReport::default();
        let mut kept = CsvTable {
            header: csv.header.clone(),
            rows: Vec::with_capacity(csv.rows.len()),
        };
        let mut id_index = HashMap::with_capacity(csv.len());
        for (i, row) in csv.rows.into_iter().enumerate() {
            let id = &row[id_col];
            if id.is_empty() {
                quarantine.push(table_name, i + 1, RowIssue::EmptyId);
            } else if id_index.contains_key(id) {
                quarantine.push(table_name, i + 1, RowIssue::DuplicateId { id: id.clone() });
            } else {
                id_index.insert(id.clone(), kept.rows.len());
                kept.rows.push(row);
            }
        }
        Ok((
            Table {
                csv: kept,
                id_col,
                id_index,
            },
            quarantine,
        ))
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.csv.len()
    }

    /// True when the table has no records.
    pub fn is_empty(&self) -> bool {
        self.csv.is_empty()
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.csv.header
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.csv.column_index(name)
    }

    /// The id of record `row`.
    pub fn id(&self, row: usize) -> &str {
        &self.csv.rows[row][self.id_col]
    }

    /// Row index of a record by id.
    pub fn row_of(&self, id: &str) -> Option<usize> {
        self.id_index.get(id).copied()
    }

    /// Value of `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> &str {
        &self.csv.rows[row][col]
    }

    /// Value of a named column for a row (None if the column is absent).
    pub fn value_named(&self, row: usize, col: &str) -> Option<&str> {
        self.column_index(col).map(|c| self.value(row, c))
    }

    /// Attribute columns: everything except `id`.
    pub fn attribute_columns(&self) -> Vec<usize> {
        (0..self.csv.header.len())
            .filter(|&c| c != self.id_col)
            .collect()
    }

    /// Render one record as `col=value` pairs (for example-based
    /// explanations).
    pub fn render_record(&self, row: usize) -> String {
        let mut out = String::new();
        for (i, (name, value)) in self.csv.header.iter().zip(&self.csv.rows[row]).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(name);
            out.push('=');
            out.push_str(value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_csvio::parse_csv_str;

    fn t() -> Table {
        Table::from_csv(parse_csv_str("id,name,country\na1,li wei,cn\na2,john smith,us\n").unwrap())
            .unwrap()
    }

    #[test]
    fn adopts_and_indexes() {
        let t = t();
        assert_eq!(t.len(), 2);
        assert_eq!(t.id(0), "a1");
        assert_eq!(t.row_of("a2"), Some(1));
        assert_eq!(t.row_of("zz"), None);
        assert_eq!(t.value_named(0, "name"), Some("li wei"));
        assert_eq!(t.value_named(0, "nope"), None);
    }

    #[test]
    fn attribute_columns_exclude_id() {
        let t = t();
        assert_eq!(t.attribute_columns(), vec![1, 2]);
    }

    #[test]
    fn render_record_is_readable() {
        let t = t();
        assert_eq!(t.render_record(0), "id=a1, name=li wei, country=cn");
    }

    #[test]
    fn rejects_missing_id() {
        let e = Table::from_csv(parse_csv_str("name\nx\n").unwrap()).unwrap_err();
        assert_eq!(e, SchemaError::MissingId);
    }

    #[test]
    fn rejects_duplicate_id() {
        let e = Table::from_csv(parse_csv_str("id\na\na\n").unwrap()).unwrap_err();
        assert_eq!(e, SchemaError::DuplicateId("a".into()));
    }

    #[test]
    fn lenient_quarantines_empty_and_duplicate_ids() {
        use crate::quarantine::RowIssue;
        let csv = parse_csv_str("id,v\na1,1\n,2\na1,3\na2,4\n").unwrap();
        let (t, q) = Table::from_csv_lenient(csv, "tableA").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.id(0), "a1");
        assert_eq!(t.id(1), "a2");
        assert_eq!(t.value_named(0, "v"), Some("1"), "first occurrence kept");
        assert_eq!(q.len(), 2);
        assert_eq!(q.rows[0].row, 2);
        assert_eq!(q.rows[0].issue, RowIssue::EmptyId);
        assert_eq!(q.rows[1].row, 3);
        assert_eq!(q.rows[1].issue, RowIssue::DuplicateId { id: "a1".into() });
        // kept + quarantined == input
        assert_eq!(t.len() + q.len(), 4);
    }

    #[test]
    fn lenient_still_requires_id_column() {
        let csv = parse_csv_str("name\nx\n").unwrap();
        let e = Table::from_csv_lenient(csv, "tableA").unwrap_err();
        assert_eq!(e, SchemaError::MissingId);
    }
}
