//! Preprocessing (paper §2.1): candidate pairing, labeling, and
//! train/validation/test splitting.

use std::collections::BTreeSet;

use fairem_rng::rngs::StdRng;
use fairem_rng::seq::SliceRandom;
use fairem_rng::SeedableRng;

use crate::blocking::{Blocker, TokenBlocking};
use crate::error::{SuiteError, SuiteResult};
use crate::exec::Exec;
use crate::quarantine::{QuarantineReport, RowIssue};
use crate::schema::Table;

/// Configuration for [`prepare`].
#[derive(Debug, Clone, PartialEq)]
pub struct PrepConfig {
    /// Columns used for token blocking.
    pub blocking_columns: Vec<String>,
    /// Block-size guard passed to the blocker.
    pub max_block: usize,
    /// Cap on negatives per positive (class-imbalance control);
    /// `f64::INFINITY` keeps every blocked negative.
    pub negative_ratio: f64,
    /// Fraction of pairs used for training.
    pub train_frac: f64,
    /// Fraction of pairs used for validation.
    pub valid_frac: f64,
    /// RNG seed for subsampling and splitting.
    pub seed: u64,
}

impl Default for PrepConfig {
    fn default() -> PrepConfig {
        // Defaults match the configuration the figure binaries audit
        // under (EXPERIMENTS.md): a 6:1 negative ratio preserves EM's
        // characteristic class imbalance, which is what makes the
        // uncalibrated matchers threshold-sensitive.
        PrepConfig {
            blocking_columns: vec!["name".into()],
            max_block: 200,
            negative_ratio: 6.0,
            train_frac: 0.55,
            valid_frac: 0.05,
            seed: 17,
        }
    }
}

/// The labeled, split pair set feeding the matchers.
#[derive(Debug, Clone)]
pub struct PreparedData {
    /// All labeled candidate pairs `(a_row, b_row)`.
    pub pairs: Vec<(usize, usize)>,
    /// Labels aligned with `pairs` (1.0 = match).
    pub labels: Vec<f64>,
    /// Indices into `pairs` for the training split.
    pub train_idx: Vec<usize>,
    /// Indices into `pairs` for the validation split.
    pub valid_idx: Vec<usize>,
    /// Indices into `pairs` for the test split.
    pub test_idx: Vec<usize>,
}

impl PreparedData {
    /// Pairs and labels of one split.
    pub fn split(&self, idx: &[usize]) -> (Vec<(usize, usize)>, Vec<f64>) {
        let pairs = idx.iter().map(|&i| self.pairs[i]).collect();
        let labels = idx.iter().map(|&i| self.labels[i]).collect();
        (pairs, labels)
    }

    /// Number of positive pairs overall.
    pub fn n_positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l == 1.0).count()
    }
}

/// Generate candidates via blocking, label them against the ground
/// truth, subsample negatives, and split train/valid/test.
///
/// All ground-truth matches are force-included as candidates (standard
/// benchmark practice — blocking recall losses are measured separately
/// by [`crate::blocking::blocking_recall`]).
///
/// # Panics
/// If fractions are invalid or id lookups fail. Fallible callers should
/// use [`prepare_checked`], which quarantines dangling matches instead.
pub fn prepare(
    a: &Table,
    b: &Table,
    matches: &[(String, String)],
    config: &PrepConfig,
) -> PreparedData {
    assert!(
        config.train_frac > 0.0 && config.valid_frac >= 0.0,
        "bad split fractions"
    );
    assert!(
        config.train_frac + config.valid_frac < 1.0,
        "no test fraction left"
    );
    for (ia, ib) in matches {
        assert!(a.row_of(ia).is_some(), "unknown A id {ia:?}");
        assert!(b.row_of(ib).is_some(), "unknown B id {ib:?}");
    }
    let blocker = default_blocker(config);
    prepare_inner(
        a,
        b,
        matches,
        config,
        &blocker,
        &Exec::sequential(),
        &mut QuarantineReport::default(),
    )
}

/// The blocker [`prepare`]/[`prepare_checked`] run when none is chosen
/// explicitly: token blocking over the configured columns.
pub fn default_blocker(config: &PrepConfig) -> TokenBlocking {
    TokenBlocking {
        columns: config.blocking_columns.clone(),
        max_block: config.max_block,
    }
}

/// Fallible variant of [`prepare`]: invalid split fractions become a
/// [`SuiteError::Config`], and ground-truth matches referencing ids
/// absent from either table are quarantined (with the offending side and
/// id) instead of panicking.
pub fn prepare_checked(
    a: &Table,
    b: &Table,
    matches: &[(String, String)],
    config: &PrepConfig,
) -> SuiteResult<(PreparedData, QuarantineReport)> {
    let blocker = default_blocker(config);
    prepare_with(a, b, matches, config, &blocker, &Exec::sequential())
}

/// [`prepare_checked`] with an explicit blocking scheme and execution
/// context: candidates come from `blocker.candidates(a, b, exec)`
/// instead of the config-derived token blocker. Everything downstream
/// (labeling, negative subsampling, splitting) is unchanged.
pub fn prepare_with(
    a: &Table,
    b: &Table,
    matches: &[(String, String)],
    config: &PrepConfig,
    blocker: &dyn Blocker,
    exec: &Exec,
) -> SuiteResult<(PreparedData, QuarantineReport)> {
    if !(config.train_frac > 0.0 && config.valid_frac >= 0.0) {
        return Err(SuiteError::Config {
            detail: format!(
                "bad split fractions: train={} valid={}",
                config.train_frac, config.valid_frac
            ),
        });
    }
    if config.train_frac + config.valid_frac >= 1.0 {
        return Err(SuiteError::Config {
            detail: format!(
                "no test fraction left: train={} + valid={} >= 1",
                config.train_frac, config.valid_frac
            ),
        });
    }
    let mut quarantine = QuarantineReport::default();
    let prep = prepare_inner(a, b, matches, config, blocker, exec, &mut quarantine);
    Ok((prep, quarantine))
}

#[allow(clippy::too_many_arguments)]
fn prepare_inner(
    a: &Table,
    b: &Table,
    matches: &[(String, String)],
    config: &PrepConfig,
    blocker: &dyn Blocker,
    exec: &Exec,
    quarantine: &mut QuarantineReport,
) -> PreparedData {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut truth: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (i, (ia, ib)) in matches.iter().enumerate() {
        let ra = a.row_of(ia);
        let rb = b.row_of(ib);
        match (ra, rb) {
            (Some(ra), Some(rb)) => {
                truth.insert((ra, rb));
            }
            (None, _) => quarantine.push(
                "matches",
                i + 1,
                RowIssue::UnknownMatchId {
                    side: 'A',
                    id: ia.clone(),
                },
            ),
            (_, None) => quarantine.push(
                "matches",
                i + 1,
                RowIssue::UnknownMatchId {
                    side: 'B',
                    id: ib.clone(),
                },
            ),
        }
    }

    let candidates = blocker.candidates(a, b, exec);

    let positives: Vec<(usize, usize)> = truth.iter().copied().collect();
    let mut negatives: Vec<(usize, usize)> = candidates
        .into_iter()
        .filter(|p| !truth.contains(p))
        .collect();

    // Subsample negatives to the configured ratio.
    let cap = (positives.len() as f64 * config.negative_ratio).ceil();
    if (negatives.len() as f64) > cap && cap.is_finite() {
        negatives.shuffle(&mut rng);
        negatives.truncate(cap as usize);
        negatives.sort_unstable();
    }

    let mut pairs = Vec::with_capacity(positives.len() + negatives.len());
    let mut labels = Vec::with_capacity(positives.len() + negatives.len());
    pairs.extend(&positives);
    labels.extend(std::iter::repeat_n(1.0, positives.len()));
    pairs.extend(&negatives);
    labels.extend(std::iter::repeat_n(0.0, negatives.len()));

    // Stratified-ish split: shuffle positions, then cut.
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.shuffle(&mut rng);
    let n = order.len();
    let n_train = (n as f64 * config.train_frac).round() as usize;
    let n_valid = (n as f64 * config.valid_frac).round() as usize;
    let train_idx = order[..n_train].to_vec();
    let valid_idx = order[n_train..n_train + n_valid].to_vec();
    let test_idx = order[n_train + n_valid..].to_vec();

    PreparedData {
        pairs,
        labels,
        train_idx,
        valid_idx,
        test_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_csvio::parse_csv_str;

    fn fixture() -> (Table, Table, Vec<(String, String)>) {
        let a = Table::from_csv(
            parse_csv_str("id,name\na0,li wei\na1,john smith\na2,hans muller\na3,maria garcia\n")
                .unwrap(),
        )
        .unwrap();
        let b = Table::from_csv(
            parse_csv_str("id,name\nb0,wei li\nb1,jon smith\nb2,hans mueller\nb3,ana garcia\n")
                .unwrap(),
        )
        .unwrap();
        let matches = vec![
            ("a0".to_owned(), "b0".to_owned()),
            ("a1".to_owned(), "b1".to_owned()),
        ];
        (a, b, matches)
    }

    #[test]
    fn truth_pairs_always_included() {
        let (a, b, m) = fixture();
        let prep = prepare(&a, &b, &m, &PrepConfig::default());
        assert!(prep.pairs.contains(&(0, 0)));
        assert!(prep.pairs.contains(&(1, 1)));
        assert_eq!(prep.n_positives(), 2);
    }

    #[test]
    fn splits_partition_all_pairs() {
        let (a, b, m) = fixture();
        let prep = prepare(&a, &b, &m, &PrepConfig::default());
        let total = prep.train_idx.len() + prep.valid_idx.len() + prep.test_idx.len();
        assert_eq!(total, prep.pairs.len());
        let mut seen: Vec<usize> = prep
            .train_idx
            .iter()
            .chain(&prep.valid_idx)
            .chain(&prep.test_idx)
            .copied()
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), prep.pairs.len());
    }

    #[test]
    fn negative_cap_is_respected() {
        let (a, b, m) = fixture();
        let prep = prepare(
            &a,
            &b,
            &m,
            &PrepConfig {
                negative_ratio: 0.5,
                ..PrepConfig::default()
            },
        );
        let negs = prep.labels.iter().filter(|&&l| l == 0.0).count();
        assert!(negs <= 1, "{negs}");
    }

    #[test]
    fn split_accessor_aligns() {
        let (a, b, m) = fixture();
        let prep = prepare(&a, &b, &m, &PrepConfig::default());
        let (pairs, labels) = prep.split(&prep.train_idx);
        assert_eq!(pairs.len(), labels.len());
        assert_eq!(pairs.len(), prep.train_idx.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, b, m) = fixture();
        let p1 = prepare(&a, &b, &m, &PrepConfig::default());
        let p2 = prepare(&a, &b, &m, &PrepConfig::default());
        assert_eq!(p1.pairs, p2.pairs);
        assert_eq!(p1.train_idx, p2.train_idx);
    }

    #[test]
    fn prepare_with_swaps_the_blocking_scheme() {
        use crate::blocking::SortedNeighborhood;
        let (a, b, m) = fixture();
        let config = PrepConfig::default();
        // Default blocker reproduces prepare_checked exactly.
        let (via_default, _) = prepare_with(
            &a,
            &b,
            &m,
            &config,
            &default_blocker(&config),
            &Exec::sequential(),
        )
        .unwrap();
        let (via_checked, _) = prepare_checked(&a, &b, &m, &config).unwrap();
        assert_eq!(via_default.pairs, via_checked.pairs);
        assert_eq!(via_default.train_idx, via_checked.train_idx);
        // A different scheme flows through: sorted-neighborhood with a
        // wide window yields a candidate set token blocking cannot (the
        // drifted "hans muller"/"hans mueller" pair shares "hans").
        let sn = SortedNeighborhood {
            key_column: "name".into(),
            window: 4,
        };
        let (via_sn, q) = prepare_with(&a, &b, &m, &config, &sn, &Exec::sequential()).unwrap();
        assert!(q.is_empty());
        assert!(via_sn.pairs.contains(&(0, 0)), "truth is force-included");
        assert_eq!(via_sn.n_positives(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown A id")]
    fn unknown_match_id_panics() {
        let (a, b, _) = fixture();
        let _ = prepare(
            &a,
            &b,
            &[("zz".into(), "b0".into())],
            &PrepConfig::default(),
        );
    }

    #[test]
    fn checked_quarantines_dangling_matches() {
        let (a, b, mut m) = fixture();
        m.push(("zz".into(), "b0".into()));
        m.push(("a2".into(), "nope".into()));
        let (prep, q) = prepare_checked(&a, &b, &m, &PrepConfig::default()).unwrap();
        assert_eq!(prep.n_positives(), 2, "valid matches survive");
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.rows[0].issue,
            RowIssue::UnknownMatchId {
                side: 'A',
                id: "zz".into()
            }
        );
        assert_eq!(
            q.rows[1].issue,
            RowIssue::UnknownMatchId {
                side: 'B',
                id: "nope".into()
            }
        );
    }

    #[test]
    fn checked_rejects_bad_fractions_as_config_error() {
        let (a, b, m) = fixture();
        let e = prepare_checked(
            &a,
            &b,
            &m,
            &PrepConfig {
                train_frac: 0.9,
                valid_frac: 0.2,
                ..PrepConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(e, SuiteError::Config { .. }), "{e}");
    }

    #[test]
    fn checked_matches_panicking_path_on_clean_input() {
        let (a, b, m) = fixture();
        let p1 = prepare(&a, &b, &m, &PrepConfig::default());
        let (p2, q) = prepare_checked(&a, &b, &m, &PrepConfig::default()).unwrap();
        assert!(q.is_empty());
        assert_eq!(p1.pairs, p2.pairs);
        assert_eq!(p1.train_idx, p2.train_idx);
    }

    #[test]
    #[should_panic(expected = "no test fraction")]
    fn split_fractions_validated() {
        let (a, b, m) = fixture();
        let _ = prepare(
            &a,
            &b,
            &m,
            &PrepConfig {
                train_frac: 0.9,
                valid_frac: 0.2,
                ..PrepConfig::default()
            },
        );
    }
}
