//! Group extraction from sensitive attributes (the data layer's first
//! task, paper §2.1).
//!
//! Given sensitive-attribute declarations, the suite enumerates the
//! (sub)group space — every single-attribute value plus every
//! cross-attribute intersection (e.g. `black-female`) — and encodes each
//! entity as a one-hot [`GroupVector`] over that space. Binary,
//! multi-valued, and setwise attributes (values separated by `|`) are
//! supported uniformly.

use std::collections::BTreeSet;

use crate::schema::Table;

/// How a sensitive attribute's values are interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensitiveKind {
    /// One categorical value per record (covers binary and non-binary).
    Categorical,
    /// `|`-separated set of values per record (setwise attributes).
    SetValued,
}

/// Declaration of a sensitive attribute by column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensitiveAttr {
    /// Column name in both tables.
    pub column: String,
    /// Interpretation of the column's values.
    pub kind: SensitiveKind,
}

impl SensitiveAttr {
    /// A categorical sensitive attribute.
    pub fn categorical(column: impl Into<String>) -> SensitiveAttr {
        SensitiveAttr {
            column: column.into(),
            kind: SensitiveKind::Categorical,
        }
    }

    /// A setwise sensitive attribute (`|`-separated values).
    pub fn set_valued(column: impl Into<String>) -> SensitiveAttr {
        SensitiveAttr {
            column: column.into(),
            kind: SensitiveKind::SetValued,
        }
    }

    fn values_of(&self, raw: &str) -> Vec<String> {
        match self.kind {
            SensitiveKind::Categorical => {
                if raw.is_empty() {
                    Vec::new()
                } else {
                    vec![raw.to_owned()]
                }
            }
            SensitiveKind::SetValued => raw
                .split('|')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect(),
        }
    }
}

/// Identifier of a (sub)group within a [`GroupSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// A group definition: a conjunction of `(attr index, value)` constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupDef {
    /// Human-readable name, e.g. `"cn"` or `"black-female"`.
    pub name: String,
    /// Conjunctive constraints; one per distinct attribute.
    pub constraints: Vec<(usize, String)>,
}

impl GroupDef {
    /// Nesting level: 1 for single-attribute groups, 2 for pairwise
    /// intersections, and so on.
    pub fn level(&self) -> usize {
        self.constraints.len()
    }
}

/// Membership bitmask of an entity over a group space (≤ 64 groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupVector(pub u64);

impl GroupVector {
    /// Does the entity belong to `g`?
    pub fn contains(&self, g: GroupId) -> bool {
        self.0 & (1u64 << g.0) != 0
    }

    /// Iterate over member group ids.
    pub fn iter(&self) -> impl Iterator<Item = GroupId> + '_ {
        let bits = self.0;
        (0..64u32)
            .filter(move |i| bits & (1u64 << i) != 0)
            .map(GroupId)
    }

    /// Number of groups the entity belongs to.
    pub fn count(&self) -> usize {
        self.0.count_ones() as usize
    }
}

/// The enumerated (sub)group space over one or more sensitive attributes.
#[derive(Debug, Clone)]
pub struct GroupSpace {
    attrs: Vec<SensitiveAttr>,
    groups: Vec<GroupDef>,
}

impl GroupSpace {
    /// Build the space from the sensitive values observed in one or more
    /// tables. Enumerates all level-1 groups plus all cross-attribute
    /// intersections up to the full attribute count.
    ///
    /// # Panics
    /// If a sensitive column is missing from a table, or the enumerated
    /// space exceeds 64 groups (the encoding width).
    pub fn extract(tables: &[&Table], attrs: Vec<SensitiveAttr>) -> GroupSpace {
        assert!(!attrs.is_empty(), "need at least one sensitive attribute");
        // Distinct observed values per attribute, sorted for determinism.
        let mut values: Vec<BTreeSet<String>> = vec![BTreeSet::new(); attrs.len()];
        for table in tables {
            for (ai, attr) in attrs.iter().enumerate() {
                let col = table
                    .column_index(&attr.column)
                    // fairem: allow(panic) — documented contract: attrs come from validated config
                    .unwrap_or_else(|| panic!("sensitive column {:?} missing", attr.column));
                for row in 0..table.len() {
                    for v in attr.values_of(table.value(row, col)) {
                        values[ai].insert(v);
                    }
                }
            }
        }
        // Level-1 groups per attribute, then intersections of increasing
        // level via cartesian growth.
        let mut groups: Vec<GroupDef> = Vec::new();
        for (ai, vals) in values.iter().enumerate() {
            for v in vals {
                groups.push(GroupDef {
                    name: v.clone(),
                    constraints: vec![(ai, v.clone())],
                });
            }
        }
        // Intersections: combinations of one value from each of ≥2
        // distinct attributes (generated in attribute order).
        if attrs.len() > 1 {
            let mut combos: Vec<Vec<(usize, String)>> = vec![Vec::new()];
            for (ai, vals) in values.iter().enumerate() {
                let mut next = Vec::new();
                for c in &combos {
                    // Either skip this attribute or take each value.
                    next.push(c.clone());
                    for v in vals {
                        let mut ext = c.clone();
                        ext.push((ai, v.clone()));
                        next.push(ext);
                    }
                }
                combos = next;
            }
            for c in combos {
                if c.len() >= 2 {
                    let name = c
                        .iter()
                        .map(|(_, v)| v.as_str())
                        .collect::<Vec<_>>()
                        .join("-");
                    groups.push(GroupDef {
                        name,
                        constraints: c,
                    });
                }
            }
        }
        assert!(
            groups.len() <= 64,
            "group space too large ({} > 64)",
            groups.len()
        );
        GroupSpace { attrs, groups }
    }

    /// Number of groups in the space.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the space is empty (never after `extract`).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// All group ids.
    pub fn ids(&self) -> impl Iterator<Item = GroupId> {
        (0..self.groups.len() as u32).map(GroupId)
    }

    /// The definition of a group.
    pub fn def(&self, g: GroupId) -> &GroupDef {
        &self.groups[g.0 as usize]
    }

    /// A group's display name.
    pub fn name(&self, g: GroupId) -> &str {
        &self.groups[g.0 as usize].name
    }

    /// Find a group by display name.
    pub fn by_name(&self, name: &str) -> Option<GroupId> {
        self.groups
            .iter()
            .position(|g| g.name == name)
            .map(|i| GroupId(i as u32))
    }

    /// The declared sensitive attributes.
    pub fn attrs(&self) -> &[SensitiveAttr] {
        &self.attrs
    }

    /// Level-1 groups of attribute `ai` (the audit's default axis).
    pub fn level1_of_attr(&self, ai: usize) -> Vec<GroupId> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.level() == 1 && g.constraints[0].0 == ai)
            .map(|(i, _)| GroupId(i as u32))
            .collect()
    }

    /// Direct children of `g` in the subgroup lattice: groups whose
    /// constraints strictly include `g`'s with exactly one more.
    pub fn children(&self, g: GroupId) -> Vec<GroupId> {
        let parent = &self.groups[g.0 as usize];
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, h)| {
                h.constraints.len() == parent.constraints.len() + 1
                    && parent.constraints.iter().all(|c| h.constraints.contains(c))
            })
            .map(|(i, _)| GroupId(i as u32))
            .collect()
    }

    /// Encode one record of a table as a membership bitmask.
    ///
    /// # Panics
    /// If a sensitive column is missing.
    pub fn encode(&self, table: &Table, row: usize) -> GroupVector {
        // Values per attribute for this record.
        let mut record_values: Vec<Vec<String>> = Vec::with_capacity(self.attrs.len());
        for attr in &self.attrs {
            let col = table
                .column_index(&attr.column)
                // fairem: allow(panic) — documented contract: attrs come from validated config
                .unwrap_or_else(|| panic!("sensitive column {:?} missing", attr.column));
            record_values.push(attr.values_of(table.value(row, col)));
        }
        let mut bits = 0u64;
        for (i, g) in self.groups.iter().enumerate() {
            let belongs = g
                .constraints
                .iter()
                .all(|(ai, v)| record_values[*ai].iter().any(|rv| rv == v));
            if belongs {
                bits |= 1u64 << i;
            }
        }
        GroupVector(bits)
    }

    /// Encode every record of a table.
    pub fn encode_table(&self, table: &Table) -> Vec<GroupVector> {
        (0..table.len()).map(|r| self.encode(table, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_csvio::parse_csv_str;

    fn table(csv: &str) -> Table {
        Table::from_csv(parse_csv_str(csv).unwrap()).unwrap()
    }

    #[test]
    fn single_attribute_space() {
        let t = table("id,country\na1,cn\na2,us\na3,cn\n");
        let space = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("country")]);
        assert_eq!(space.len(), 2);
        assert!(space.by_name("cn").is_some());
        let enc = space.encode(&t, 0);
        assert!(enc.contains(space.by_name("cn").unwrap()));
        assert!(!enc.contains(space.by_name("us").unwrap()));
        assert_eq!(enc.count(), 1);
    }

    #[test]
    fn intersectional_space_has_products() {
        let t = table("id,race,sex\na1,white,male\na2,black,female\na3,white,female\n");
        let space = GroupSpace::extract(
            &[&t],
            vec![
                SensitiveAttr::categorical("race"),
                SensitiveAttr::categorical("sex"),
            ],
        );
        // 2 races + 2 sexes + 4 intersections.
        assert_eq!(space.len(), 8);
        let wf = space.by_name("white-female").unwrap();
        let enc = space.encode(&t, 2);
        assert!(enc.contains(wf));
        assert_eq!(enc.count(), 3); // white, female, white-female
    }

    #[test]
    fn lattice_children() {
        let t = table("id,race,sex\na1,white,male\na2,black,female\n");
        let space = GroupSpace::extract(
            &[&t],
            vec![
                SensitiveAttr::categorical("race"),
                SensitiveAttr::categorical("sex"),
            ],
        );
        let white = space.by_name("white").unwrap();
        let kids = space.children(white);
        let names: Vec<&str> = kids.iter().map(|&g| space.name(g)).collect();
        assert!(names.contains(&"white-male"));
        assert!(names.contains(&"white-female"));
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn setwise_attribute_membership() {
        let t = table("id,lang\na1,en|zh\na2,en\na3,\n");
        let space = GroupSpace::extract(&[&t], vec![SensitiveAttr::set_valued("lang")]);
        assert_eq!(space.len(), 2);
        let zh = space.by_name("zh").unwrap();
        let en = space.by_name("en").unwrap();
        let e0 = space.encode(&t, 0);
        assert!(e0.contains(zh) && e0.contains(en));
        let e2 = space.encode(&t, 2);
        assert_eq!(e2.count(), 0); // empty value → no groups
    }

    #[test]
    fn values_unioned_across_tables() {
        let a = table("id,country\na1,cn\n");
        let b = table("id,country\nb1,de\n");
        let space = GroupSpace::extract(&[&a, &b], vec![SensitiveAttr::categorical("country")]);
        assert_eq!(space.len(), 2);
    }

    #[test]
    fn level1_of_attr_filters() {
        let t = table("id,race,sex\na1,white,male\na2,black,female\n");
        let space = GroupSpace::extract(
            &[&t],
            vec![
                SensitiveAttr::categorical("race"),
                SensitiveAttr::categorical("sex"),
            ],
        );
        let races: Vec<&str> = space
            .level1_of_attr(0)
            .iter()
            .map(|&g| space.name(g))
            .collect();
        assert_eq!(races, vec!["black", "white"]);
        let sexes: Vec<&str> = space
            .level1_of_attr(1)
            .iter()
            .map(|&g| space.name(g))
            .collect();
        assert_eq!(sexes, vec!["female", "male"]);
    }

    #[test]
    fn group_vector_iteration() {
        let v = GroupVector(0b101);
        let ids: Vec<GroupId> = v.iter().collect();
        assert_eq!(ids, vec![GroupId(0), GroupId(2)]);
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn missing_sensitive_column_panics() {
        let t = table("id,x\na1,1\n");
        let _ = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("race")]);
    }

    #[test]
    #[should_panic(expected = "group space too large")]
    fn more_than_64_groups_rejected() {
        let mut csv = String::from("id,g\n");
        for i in 0..70 {
            csv.push_str(&format!("r{i},v{i}\n"));
        }
        let t = table(&csv);
        let _ = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")]);
    }

    #[test]
    fn three_attribute_intersections_enumerate_fully() {
        let t = table("id,a,b,c\nr1,x,p,m\nr2,y,q,n\n");
        let space = GroupSpace::extract(
            &[&t],
            vec![
                SensitiveAttr::categorical("a"),
                SensitiveAttr::categorical("b"),
                SensitiveAttr::categorical("c"),
            ],
        );
        // Level 1: 6; level 2: 3 pairs × 4 combos = 12; level 3: 8.
        assert_eq!(space.len(), 26);
        let deep = space.by_name("x-p-m").expect("triple intersection exists");
        assert_eq!(space.def(deep).level(), 3);
        // Encoding of r1 hits x, p, m, x-p, x-m, p-m, x-p-m = 7 groups.
        assert_eq!(space.encode(&t, 0).count(), 7);
        // Children of a level-2 node are the level-3 refinements.
        let xp = space.by_name("x-p").unwrap();
        let kids = space.children(xp);
        assert_eq!(kids.len(), 2); // x-p-m and x-p-n
    }
}
