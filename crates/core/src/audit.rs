//! The audit component (paper §2.3, "Audit" + Figure 4): evaluate a
//! workload per group × measure, compute disparities, and flag groups
//! whose disparity exceeds the fairness threshold.

use crate::confusion::ConfusionMatrix;
use crate::fairness::{Disparity, FairnessMeasure, Paradigm};
use crate::matcher::MatcherFailure;
use crate::sensitive::{GroupId, GroupSpace};
use crate::shard::PairCounts;
use crate::workload::Workload;

/// Audit configuration (the demo's Step-3 form).
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Single or pairwise fairness.
    pub paradigm: Paradigm,
    /// Measures to evaluate.
    pub measures: Vec<FairnessMeasure>,
    /// Subtraction- or division-based disparity.
    pub disparity: Disparity,
    /// Disparity above this is unfair (the demo default is 0.2).
    pub fairness_threshold: f64,
    /// Groups with fewer legitimate correspondences than this are
    /// reported as insufficient-support instead of receiving a verdict.
    pub min_support: usize,
    /// Report only unfair entries.
    pub only_unfair: bool,
    /// For the pairwise paradigm: index of the sensitive attribute whose
    /// level-1 groups are paired.
    pub pairwise_attr: usize,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            paradigm: Paradigm::Single,
            measures: FairnessMeasure::PAPER_FIVE.to_vec(),
            disparity: Disparity::Subtraction,
            fairness_threshold: 0.2,
            min_support: 10,
            only_unfair: false,
            pairwise_attr: 0,
        }
    }
}

/// One audited (measure, group) cell.
#[derive(Debug, Clone)]
pub struct AuditEntry {
    /// Matcher under audit.
    pub matcher: String,
    /// Paradigm used.
    pub paradigm: Paradigm,
    /// Measure evaluated.
    pub measure: FairnessMeasure,
    /// Group display name (`"cn"`, or `"cn×de"` for pairwise).
    pub group: String,
    /// Primary group id.
    pub group_id: GroupId,
    /// Second group id for pairwise entries.
    pub group_id2: Option<GroupId>,
    /// The group-conditional value `Pr(α | β, g)`.
    pub group_value: f64,
    /// The workload-wide value `Pr(α | β)`.
    pub overall_value: f64,
    /// Disparity per the configured notion; `NaN` when the group value
    /// is undefined on this workload.
    pub disparity: f64,
    /// Number of legitimate correspondences for the group.
    pub support: usize,
    /// Verdict: disparity exceeded the fairness threshold.
    pub unfair: bool,
}

impl AuditEntry {
    /// Entry lacks enough data for a verdict.
    pub fn insufficient(&self) -> bool {
        self.disparity.is_nan()
    }
}

/// The audit result for one matcher.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Matcher name.
    pub matcher: String,
    /// Matching threshold the workload was evaluated at.
    pub matching_threshold: f64,
    /// Fairness threshold used for verdicts.
    pub fairness_threshold: f64,
    /// All audited cells.
    pub entries: Vec<AuditEntry>,
    /// Matchers that failed before this audit (degraded coverage). Empty
    /// on a clean run; populated by [`crate::pipeline::Session::audit`]
    /// so report readers see which fleet members are missing.
    pub degraded: Vec<MatcherFailure>,
}

impl AuditReport {
    /// True when the audited session lost matchers to failures.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// Entries flagged unfair.
    pub fn unfair(&self) -> impl Iterator<Item = &AuditEntry> {
        self.entries.iter().filter(|e| e.unfair)
    }

    /// Look up a single-paradigm cell by measure and group name.
    pub fn entry(&self, measure: FairnessMeasure, group: &str) -> Option<&AuditEntry> {
        self.entries
            .iter()
            .find(|e| e.measure == measure && e.group == group)
    }

    /// The maximum finite disparity across all cells (0.0 if none).
    pub fn max_disparity(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.disparity)
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }

    /// Is any cell unfair?
    pub fn any_unfair(&self) -> bool {
        self.entries.iter().any(|e| e.unfair)
    }
}

/// Where an audit's confusion matrices come from: a materialized
/// [`Workload`] (the in-memory path) or a merged [`PairCounts`]
/// histogram (the sharded out-of-core path). Both produce exact
/// integer-valued matrices, so the shared audit loop is bit-for-bit
/// identical over either source.
trait ConfusionSource {
    fn overall(&self) -> ConfusionMatrix;
    fn group(&self, g: GroupId) -> ConfusionMatrix;
    fn support(&self, g: GroupId) -> usize;
    fn pairwise(&self, g1: GroupId, g2: GroupId) -> ConfusionMatrix;
}

impl ConfusionSource for Workload {
    fn overall(&self) -> ConfusionMatrix {
        self.overall_confusion()
    }
    fn group(&self, g: GroupId) -> ConfusionMatrix {
        self.group_confusion(g)
    }
    fn support(&self, g: GroupId) -> usize {
        self.group_support(g)
    }
    fn pairwise(&self, g1: GroupId, g2: GroupId) -> ConfusionMatrix {
        self.pairwise_confusion(g1, g2)
    }
}

impl ConfusionSource for PairCounts {
    fn overall(&self) -> ConfusionMatrix {
        self.overall_confusion()
    }
    fn group(&self, g: GroupId) -> ConfusionMatrix {
        self.group_confusion(g)
    }
    fn support(&self, g: GroupId) -> usize {
        self.group_support(g)
    }
    fn pairwise(&self, g1: GroupId, g2: GroupId) -> ConfusionMatrix {
        self.pairwise_confusion(g1, g2)
    }
}

/// Executes audits over workloads.
#[derive(Debug, Clone, Default)]
pub struct Auditor {
    /// The audit configuration.
    pub config: AuditConfig,
}

impl Auditor {
    /// Create an auditor.
    pub fn new(config: AuditConfig) -> Auditor {
        Auditor { config }
    }

    /// Audit one matcher's workload over a group space.
    pub fn audit(&self, matcher: &str, workload: &Workload, space: &GroupSpace) -> AuditReport {
        self.audit_source(matcher, workload, workload.threshold, space)
    }

    /// Audit one matcher from a merged shard histogram instead of a
    /// materialized workload — the out-of-core entry point. Because
    /// every confusion quantity is recomputed from exact integer
    /// buckets (see [`crate::shard::PairCounts`]), the report is
    /// bit-for-bit the one [`Auditor::audit`] produces on the
    /// concatenated workload at the same threshold.
    pub fn audit_counts(
        &self,
        matcher: &str,
        counts: &PairCounts,
        matching_threshold: f64,
        space: &GroupSpace,
    ) -> AuditReport {
        self.audit_source(matcher, counts, matching_threshold, space)
    }

    /// The one audit implementation both entry points share: the same
    /// loop, the same [`Auditor::entry`] arithmetic, differing only in
    /// where confusion matrices come from.
    fn audit_source(
        &self,
        matcher: &str,
        source: &dyn ConfusionSource,
        matching_threshold: f64,
        space: &GroupSpace,
    ) -> AuditReport {
        let overall = source.overall();
        let mut entries = Vec::new();
        match self.config.paradigm {
            Paradigm::Single => {
                for g in space.ids() {
                    let cm = source.group(g);
                    let support = source.support(g);
                    for &measure in &self.config.measures {
                        entries.push(self.entry(
                            matcher,
                            measure,
                            space.name(g).to_owned(),
                            g,
                            None,
                            measure.value(&overall),
                            measure.value(&cm),
                            support,
                        ));
                    }
                }
            }
            Paradigm::Pairwise => {
                let groups = space.level1_of_attr(self.config.pairwise_attr);
                for (i, &g1) in groups.iter().enumerate() {
                    for &g2 in &groups[i..] {
                        let cm = source.pairwise(g1, g2);
                        let support = cm.total() as usize;
                        let name = format!("{}×{}", space.name(g1), space.name(g2));
                        for &measure in &self.config.measures {
                            entries.push(self.entry(
                                matcher,
                                measure,
                                name.clone(),
                                g1,
                                Some(g2),
                                measure.value(&overall),
                                measure.value(&cm),
                                support,
                            ));
                        }
                    }
                }
            }
        }
        if self.config.only_unfair {
            entries.retain(|e| e.unfair);
        }
        AuditReport {
            matcher: matcher.to_owned(),
            matching_threshold,
            fairness_threshold: self.config.fairness_threshold,
            entries,
            degraded: Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn entry(
        &self,
        matcher: &str,
        measure: FairnessMeasure,
        group: String,
        group_id: GroupId,
        group_id2: Option<GroupId>,
        overall_value: f64,
        group_value: f64,
        support: usize,
    ) -> AuditEntry {
        let enough = support >= self.config.min_support;
        let disparity = if enough {
            self.config
                .disparity
                .compute(overall_value, group_value, measure.higher_is_better())
        } else {
            f64::NAN
        };
        AuditEntry {
            matcher: matcher.to_owned(),
            paradigm: self.config.paradigm,
            measure,
            group,
            group_id,
            group_id2,
            group_value,
            overall_value,
            disparity,
            support,
            unfair: disparity.is_finite() && disparity > self.config.fairness_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Table;
    use crate::sensitive::{GroupVector, SensitiveAttr};
    use crate::workload::Correspondence;
    use fairem_csvio::parse_csv_str;

    fn space() -> GroupSpace {
        let t = Table::from_csv(parse_csv_str("id,g\na1,cn\na2,us\n").unwrap()).unwrap();
        GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")])
    }

    fn c(score: f64, truth: bool, left: u64, right: u64) -> Correspondence {
        Correspondence {
            a_row: 0,
            b_row: 0,
            score,
            truth,
            left: GroupVector(left),
            right: GroupVector(right),
        }
    }

    /// Workload where the matcher misses most cn true matches but not us.
    /// Group bit 0 = cn, bit 1 = us (BTreeSet order: cn < us).
    fn biased_workload() -> Workload {
        let mut items = Vec::new();
        // cn: 2/8 true matches found.
        for i in 0..8 {
            items.push(c(if i < 2 { 0.9 } else { 0.1 }, true, 0b01, 0b01));
        }
        // us: 7/8 true matches found.
        for i in 0..8 {
            items.push(c(if i < 7 { 0.9 } else { 0.1 }, true, 0b10, 0b10));
        }
        // Shared negatives, all correct.
        for _ in 0..8 {
            items.push(c(0.1, false, 0b01, 0b10));
        }
        Workload::new(items, 0.5)
    }

    #[test]
    fn flags_the_disadvantaged_group() {
        let auditor = Auditor::new(AuditConfig {
            measures: vec![FairnessMeasure::TruePositiveRateParity],
            min_support: 2,
            ..AuditConfig::default()
        });
        let report = auditor.audit("LinRegMatcher", &biased_workload(), &space());
        let cn = report
            .entry(FairnessMeasure::TruePositiveRateParity, "cn")
            .unwrap();
        let us = report
            .entry(FairnessMeasure::TruePositiveRateParity, "us")
            .unwrap();
        // Overall TPR = 9/16; cn TPR = 0.25, us = 0.875.
        assert!(cn.unfair, "cn disparity {}", cn.disparity);
        assert!(!us.unfair);
        assert!((cn.group_value - 0.25).abs() < 1e-12);
        assert!((cn.overall_value - 9.0 / 16.0).abs() < 1e-12);
        assert!(report.any_unfair());
        assert!(report.max_disparity() >= cn.disparity);
    }

    #[test]
    fn min_support_suppresses_verdicts() {
        let auditor = Auditor::new(AuditConfig {
            measures: vec![FairnessMeasure::TruePositiveRateParity],
            min_support: 1000,
            ..AuditConfig::default()
        });
        let report = auditor.audit("X", &biased_workload(), &space());
        for e in &report.entries {
            assert!(e.insufficient());
            assert!(!e.unfair);
        }
    }

    #[test]
    fn only_unfair_filters_entries() {
        let auditor = Auditor::new(AuditConfig {
            measures: vec![FairnessMeasure::TruePositiveRateParity],
            min_support: 2,
            only_unfair: true,
            ..AuditConfig::default()
        });
        let report = auditor.audit("X", &biased_workload(), &space());
        assert!(!report.entries.is_empty());
        assert!(report.entries.iter().all(|e| e.unfair));
    }

    #[test]
    fn pairwise_paradigm_pairs_groups() {
        let auditor = Auditor::new(AuditConfig {
            paradigm: Paradigm::Pairwise,
            measures: vec![FairnessMeasure::AccuracyParity],
            min_support: 1,
            ..AuditConfig::default()
        });
        let report = auditor.audit("X", &biased_workload(), &space());
        let groups: Vec<&str> = report.entries.iter().map(|e| e.group.as_str()).collect();
        // cn×cn, cn×us, us×us.
        assert_eq!(groups.len(), 3);
        assert!(groups.contains(&"cn×cn"));
        assert!(groups.contains(&"cn×us"));
        assert!(groups.contains(&"us×us"));
        // The mixed pair holds all (correct) negatives → perfect accuracy.
        let mixed = report.entries.iter().find(|e| e.group == "cn×us").unwrap();
        assert!((mixed.group_value - 1.0).abs() < 1e-12);
        assert_eq!(mixed.disparity, 0.0);
    }

    #[test]
    fn counts_audit_is_bitwise_identical_to_workload_audit() {
        let w = biased_workload();
        let mut counts = PairCounts::new();
        for item in &w.items {
            counts.record(item.left, item.right, w.prediction(item), item.truth);
        }
        for paradigm in [Paradigm::Single, Paradigm::Pairwise] {
            let auditor = Auditor::new(AuditConfig {
                paradigm,
                min_support: 2,
                ..AuditConfig::default()
            });
            let from_workload = auditor.audit("X", &w, &space());
            let from_counts = auditor.audit_counts("X", &counts, w.threshold, &space());
            assert_eq!(from_workload.entries.len(), from_counts.entries.len());
            for (a, b) in from_workload.entries.iter().zip(&from_counts.entries) {
                assert_eq!(a.group, b.group);
                assert_eq!(a.measure, b.measure);
                assert_eq!(a.group_value.to_bits(), b.group_value.to_bits(), "{}", a.group);
                assert_eq!(a.overall_value.to_bits(), b.overall_value.to_bits());
                assert_eq!(a.disparity.to_bits(), b.disparity.to_bits());
                assert_eq!(a.support, b.support);
                assert_eq!(a.unfair, b.unfair);
            }
        }
    }

    #[test]
    fn division_disparity_also_supported() {
        let auditor = Auditor::new(AuditConfig {
            measures: vec![FairnessMeasure::TruePositiveRateParity],
            disparity: Disparity::Division,
            min_support: 2,
            ..AuditConfig::default()
        });
        let report = auditor.audit("X", &biased_workload(), &space());
        let cn = report
            .entry(FairnessMeasure::TruePositiveRateParity, "cn")
            .unwrap();
        // 1 − 0.25/(9/16) = 1 − 4/9.
        assert!((cn.disparity - (1.0 - 0.25 / (9.0 / 16.0))).abs() < 1e-12);
    }
}
