//! The matcher fleet (paper §2.2, "Training Matchers"): ten integrated
//! matchers — six non-neural (the Magellan family) and four neural Lite
//! models — behind one trait, plus the external-score path used by the
//! Evaluation-Only flow.
//!
//! In the original system each matcher runs in its own Docker container;
//! here the same role is played by [`MatcherKind::train`], which builds a
//! self-contained [`TrainedMatcher`] from the shared pair representation.

use std::collections::HashMap;

use fairem_ml::{
    Classifier, DecisionTree, GaussianNb, LinearRegression, LinearSvm, LogisticRegression, Matrix,
    RandomForest, StandardScaler,
};
use fairem_neural::{
    DeepMatcherLite, DittoLite, HierMatcherLite, McanLite, NeuralMatcher, TokenPair, TrainConfig,
};

use fairem_obs::SpanStatus;
use fairem_par::{Budget, CancelToken, Interrupt, WorkerPool};

use crate::error::Stage;
use crate::fault::{FaultPlan, FaultSite};

/// The ten integrated matchers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatcherKind {
    /// Decision-tree matcher (Magellan).
    DtMatcher,
    /// Linear SVM matcher (Magellan).
    SvmMatcher,
    /// Random-forest matcher (Magellan).
    RfMatcher,
    /// Logistic-regression matcher (Magellan).
    LogRegMatcher,
    /// Linear-regression matcher (Magellan) — uncalibrated scores.
    LinRegMatcher,
    /// Gaussian naive-Bayes matcher (Magellan).
    NbMatcher,
    /// DeepMatcher (attribute summarize-and-compare), Lite reproduction.
    DeepMatcher,
    /// Ditto (serialized-sequence LM matcher), Lite reproduction.
    Ditto,
    /// HierMatcher (hierarchical token alignment), Lite reproduction.
    HierMatcher,
    /// MCAN (multi-context attention), Lite reproduction.
    Mcan,
}

impl MatcherKind {
    /// All ten matchers in reporting order.
    pub const ALL: [MatcherKind; 10] = [
        MatcherKind::DtMatcher,
        MatcherKind::SvmMatcher,
        MatcherKind::RfMatcher,
        MatcherKind::LogRegMatcher,
        MatcherKind::LinRegMatcher,
        MatcherKind::NbMatcher,
        MatcherKind::DeepMatcher,
        MatcherKind::Ditto,
        MatcherKind::HierMatcher,
        MatcherKind::Mcan,
    ];

    /// The six non-neural matchers.
    pub const NON_NEURAL: [MatcherKind; 6] = [
        MatcherKind::DtMatcher,
        MatcherKind::SvmMatcher,
        MatcherKind::RfMatcher,
        MatcherKind::LogRegMatcher,
        MatcherKind::LinRegMatcher,
        MatcherKind::NbMatcher,
    ];

    /// The four neural matchers.
    pub const NEURAL: [MatcherKind; 4] = [
        MatcherKind::DeepMatcher,
        MatcherKind::Ditto,
        MatcherKind::HierMatcher,
        MatcherKind::Mcan,
    ];

    /// Stable display name (matches the paper's naming).
    pub fn name(self) -> &'static str {
        match self {
            MatcherKind::DtMatcher => "DTMatcher",
            MatcherKind::SvmMatcher => "SVMMatcher",
            MatcherKind::RfMatcher => "RFMatcher",
            MatcherKind::LogRegMatcher => "LogRegMatcher",
            MatcherKind::LinRegMatcher => "LinRegMatcher",
            MatcherKind::NbMatcher => "NBMatcher",
            MatcherKind::DeepMatcher => "DeepMatcher",
            MatcherKind::Ditto => "Ditto",
            MatcherKind::HierMatcher => "HierMatcher",
            MatcherKind::Mcan => "MCAN",
        }
    }

    /// Is this one of the neural matchers?
    pub fn is_neural(self) -> bool {
        MatcherKind::NEURAL.contains(&self)
    }

    /// Short description (the demo's matcher-card hover text).
    pub fn description(self) -> &'static str {
        match self {
            MatcherKind::DtMatcher => "CART decision tree over similarity features",
            MatcherKind::SvmMatcher => "linear SVM (Pegasos) over similarity features",
            MatcherKind::RfMatcher => "random forest over similarity features",
            MatcherKind::LogRegMatcher => "logistic regression over similarity features",
            MatcherKind::LinRegMatcher => {
                "linear regression over similarity features (uncalibrated scores)"
            }
            MatcherKind::NbMatcher => "Gaussian naive Bayes over similarity features",
            MatcherKind::DeepMatcher => "attribute summarize-and-compare neural matcher",
            MatcherKind::Ditto => "serialized-sequence neural matcher with self-attention",
            MatcherKind::HierMatcher => "hierarchical token-alignment neural matcher",
            MatcherKind::Mcan => "multi-context attention neural matcher with gated fusion",
        }
    }

    /// Train this matcher on the shared pair representation.
    pub fn train(self, input: &TrainInput<'_>, config: &MatcherTrainConfig) -> TrainedMatcher {
        match self.train_within(input, config, &CancelToken::inert()) {
            Ok(m) => m,
            // fairem: allow(panic) — an inert token never trips; Err is unreachable by construction
            Err(i) => unreachable!("inert token interrupted training: {i}"),
        }
    }

    /// Cancellable [`MatcherKind::train`]: the trainers poll `token` at
    /// their checkpoint granularity (per epoch / tree / round for the
    /// classic models, per example step for the neural ones) and bail
    /// with the [`Interrupt`] record when it trips. With an untripped
    /// token the trained model is bit-for-bit the `train` output.
    pub fn train_within(
        self,
        input: &TrainInput<'_>,
        config: &MatcherTrainConfig,
        token: &CancelToken,
    ) -> Result<TrainedMatcher, Interrupt> {
        let imp = if self.is_neural() {
            let mut model: Box<dyn NeuralMatcher + Send + Sync> = match self {
                MatcherKind::DeepMatcher => Box::new(DeepMatcherLite::new(config.neural)),
                MatcherKind::Ditto => {
                    // Ditto-Lite converges more slowly (no built-in
                    // comparison structure); give it extra passes.
                    let cfg = TrainConfig {
                        epochs: config.neural.epochs * 2,
                        ..config.neural
                    };
                    Box::new(DittoLite::new(cfg))
                }
                MatcherKind::HierMatcher => Box::new(HierMatcherLite::new(config.neural)),
                MatcherKind::Mcan => Box::new(McanLite::new(config.neural)),
                // fairem: allow(panic) — branch guarded by kind.is_neural() just above
                _ => unreachable!("non-neural kind in neural branch"),
            };
            model.fit_within(input.tokens, input.labels, token)?;
            Imp::Neural(model)
        } else {
            let scaler = StandardScaler::fit(input.features);
            let x = scaler.transform(input.features);
            let mut model: Box<dyn Classifier + Send + Sync> = match self {
                MatcherKind::DtMatcher => Box::new(DecisionTree::new(8, 4)),
                MatcherKind::SvmMatcher => Box::new(LinearSvm::new(1e-3, 30, config.seed)),
                MatcherKind::RfMatcher => Box::new(RandomForest::new(30, 8, config.seed)),
                MatcherKind::LogRegMatcher => Box::new(LogisticRegression::new(0.5, 300, 1e-4)),
                MatcherKind::LinRegMatcher => Box::new(LinearRegression::new(1e-6)),
                MatcherKind::NbMatcher => Box::new(GaussianNb::new()),
                // fairem: allow(panic) — branch guarded by !kind.is_neural() just above
                _ => unreachable!("neural kind in classic branch"),
            };
            model.fit_within(&x, input.labels, token)?;
            Imp::Classic { model, scaler }
        };
        Ok(TrainedMatcher { kind: self, imp })
    }
}

impl std::fmt::Display for MatcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for MatcherKind {
    type Err = UnknownMatcher;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        MatcherKind::ALL
            .iter()
            .copied()
            .find(|m| m.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| UnknownMatcher(s.to_owned()))
    }
}

/// Error for unknown matcher names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMatcher(pub String);

impl std::fmt::Display for UnknownMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown matcher: {:?}", self.0)
    }
}

impl std::error::Error for UnknownMatcher {}

/// Training input: the feature matrix and tokenized pairs describe the
/// *same* pair list, aligned by index, with shared labels.
#[derive(Debug)]
pub struct TrainInput<'a> {
    /// Similarity feature matrix (one row per pair).
    pub features: &'a Matrix,
    /// Tokenized pairs (for the neural matchers).
    pub tokens: &'a [TokenPair],
    /// Binary labels aligned with both representations.
    pub labels: &'a [f64],
}

/// Hyperparameters for training.
#[derive(Debug, Clone, Copy)]
pub struct MatcherTrainConfig {
    /// Neural model configuration.
    pub neural: TrainConfig,
    /// Seed for the stochastic classic matchers (SVM, RF).
    pub seed: u64,
}

impl Default for MatcherTrainConfig {
    fn default() -> MatcherTrainConfig {
        MatcherTrainConfig {
            neural: TrainConfig::default(),
            seed: 13,
        }
    }
}

impl MatcherTrainConfig {
    /// A reduced configuration for fast tests.
    pub fn fast() -> MatcherTrainConfig {
        MatcherTrainConfig {
            neural: TrainConfig::fast(),
            seed: 13,
        }
    }
}

/// One pair in both representations, borrowed for scoring.
#[derive(Debug, Clone, Copy)]
pub struct PairRepr<'a> {
    /// Similarity feature vector.
    pub features: &'a [f64],
    /// Tokenized form.
    pub tokens: &'a TokenPair,
}

/// Anything that can score a record pair. Implemented by
/// [`TrainedMatcher`] and [`ExternalScores`]-backed adapters.
pub trait Matcher {
    /// Display name used in audit reports.
    fn name(&self) -> &str;

    /// Match score in `[0, 1]`.
    fn score(&self, pair: PairRepr<'_>) -> f64;

    /// Scores for a batch of pairs in both representations.
    fn score_batch(&self, features: &Matrix, tokens: &[TokenPair]) -> Vec<f64> {
        assert_eq!(features.rows(), tokens.len(), "representation misalignment");
        (0..features.rows())
            .map(|i| {
                self.score(PairRepr {
                    features: features.row(i),
                    tokens: &tokens[i],
                })
            })
            .collect()
    }
}

enum Imp {
    Classic {
        model: Box<dyn Classifier + Send + Sync>,
        scaler: StandardScaler,
    },
    Neural(Box<dyn NeuralMatcher + Send + Sync>),
}

impl std::fmt::Debug for Imp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Imp::Classic { .. } => f.write_str("Imp::Classic"),
            Imp::Neural(_) => f.write_str("Imp::Neural"),
        }
    }
}

/// A trained integrated matcher.
#[derive(Debug)]
pub struct TrainedMatcher {
    kind: MatcherKind,
    imp: Imp,
}

impl TrainedMatcher {
    /// Which integrated matcher this is.
    pub fn kind(&self) -> MatcherKind {
        self.kind
    }

    /// The trainer's cooperative-cancel checkpoint granularity (e.g.
    /// `"per-epoch"` for logistic regression, `"per-example"` for the
    /// neural models) — surfaced in train-span annotations so a cut
    /// record names the unit of work that was abandoned.
    pub fn step_unit(&self) -> &'static str {
        match &self.imp {
            Imp::Classic { model, .. } => model.step_unit(),
            Imp::Neural(model) => model.step_unit(),
        }
    }
}

impl Matcher for TrainedMatcher {
    fn name(&self) -> &str {
        self.kind.name()
    }

    fn score(&self, pair: PairRepr<'_>) -> f64 {
        match &self.imp {
            Imp::Classic { model, scaler } => {
                let mut row = pair.features.to_vec();
                scaler.transform_row(&mut row);
                model.score_one(&row)
            }
            Imp::Neural(model) => model.score(pair.tokens),
        }
    }
}

/// User-provided scores for the Evaluation-Only flow: the matching was
/// already executed elsewhere, and the suite only audits the uploaded
/// `(id_a, id_b) → score` predictions.
#[derive(Debug, Clone)]
pub struct ExternalScores {
    name: String,
    scores: HashMap<(String, String), f64>,
}

impl ExternalScores {
    /// Wrap uploaded predictions under a display name.
    pub fn new(
        name: impl Into<String>,
        scores: impl IntoIterator<Item = ((String, String), f64)>,
    ) -> ExternalScores {
        ExternalScores {
            name: name.into(),
            scores: scores.into_iter().collect(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Score for an id pair; pairs the user never scored default to 0.0
    /// (predicted non-match), matching how missing predictions are
    /// treated in benchmark evaluation.
    pub fn score_ids(&self, id_a: &str, id_b: &str) -> f64 {
        self.scores
            .get(&(id_a.to_owned(), id_b.to_owned()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Number of uploaded predictions.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no predictions were uploaded.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

/// How a matcher died: an escaped panic, or a cooperative cut by a
/// budget / cancellation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The matcher panicked; the panic was contained.
    Panic,
    /// The matcher's budget expired (or the run was cancelled) and the
    /// matcher unwound cooperatively at a checkpoint.
    Interrupted(Interrupt),
}

/// One matcher's terminal failure: where it died and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatcherFailure {
    /// Display name of the matcher (e.g. `"DTMatcher"`).
    pub matcher: String,
    /// Stage the failure occurred in ([`Stage::Train`] or [`Stage::Score`]).
    pub stage: Stage,
    /// Captured panic payload / cause.
    pub reason: String,
    /// Panic vs. cooperative interruption.
    pub cause: FailureCause,
}

impl MatcherFailure {
    /// A failure from a contained panic.
    pub fn panicked(matcher: impl Into<String>, stage: Stage, reason: String) -> MatcherFailure {
        MatcherFailure {
            matcher: matcher.into(),
            stage,
            reason,
            cause: FailureCause::Panic,
        }
    }

    /// A failure from a budget expiry / cancellation. The reason text
    /// carries the interrupt's elapsed time and progress.
    pub fn interrupted(
        matcher: impl Into<String>,
        stage: Stage,
        interrupt: Interrupt,
    ) -> MatcherFailure {
        MatcherFailure {
            matcher: matcher.into(),
            stage,
            reason: interrupt.to_string(),
            cause: FailureCause::Interrupted(interrupt),
        }
    }

    /// The interrupt record, when the failure was a cooperative cut.
    pub fn interrupt(&self) -> Option<&Interrupt> {
        match &self.cause {
            FailureCause::Panic => None,
            FailureCause::Interrupted(i) => Some(i),
        }
    }
}

impl std::fmt::Display for MatcherFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verb = match &self.cause {
            FailureCause::Panic => "failed",
            FailureCause::Interrupted(_) => "cut",
        };
        write!(
            f,
            "{} {verb} at {}: {}",
            self.matcher, self.stage, self.reason
        )
    }
}

/// Outcome of one matcher's train/score lifecycle under isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatcherStatus {
    /// Trained and scored; part of the surviving fleet.
    Ok,
    /// Died; the session continues without it.
    Failed {
        /// Stage the matcher died in.
        stage: Stage,
        /// Captured cause.
        reason: String,
    },
}

/// Clamp a matcher's raw scores to the `[0, 1]` contract at the matcher
/// boundary: NaN becomes 0.0 (predicted non-match — the conservative
/// reading of "no usable evidence"), ±inf and out-of-range values clamp
/// to the nearest bound. Returns how many scores were repaired.
pub fn sanitize_scores(scores: &mut [f64]) -> usize {
    let mut repaired = 0;
    for s in scores.iter_mut() {
        if s.is_nan() {
            *s = 0.0;
            repaired += 1;
        } else if !(0.0..=1.0).contains(s) {
            *s = s.clamp(0.0, 1.0);
            repaired += 1;
        }
    }
    repaired
}

/// The trained matcher fleet (the suite's "matcher selection" step).
#[derive(Debug)]
pub struct MatcherRegistry {
    matchers: Vec<TrainedMatcher>,
}

impl MatcherRegistry {
    /// Train the given kinds on shared input, fanned out over one worker
    /// per matcher — the in-process analogue of the original system's
    /// per-container matcher fleet. Results keep the order of `kinds`;
    /// every matcher remains individually deterministic (training
    /// workers share no mutable state).
    ///
    /// # Panics
    /// If any matcher's training panics. Use [`MatcherRegistry::train_isolated`]
    /// for degraded-mode execution.
    pub fn train(
        kinds: &[MatcherKind],
        input: &TrainInput<'_>,
        config: &MatcherTrainConfig,
    ) -> MatcherRegistry {
        let pool = WorkerPool::new(kinds.len());
        let (registry, failures) = MatcherRegistry::train_isolated(
            kinds,
            input,
            config,
            &FaultPlan::default(),
            &pool,
            &CancelToken::inert(),
            Budget::UNLIMITED,
        );
        if let Some(f) = failures.first() {
            // fairem: allow(panic) — documented # Panics contract on the non-try training entrypoint
            panic!("matcher training panicked: {f}");
        }
        registry
    }

    /// Train with per-matcher panic isolation on a worker pool: each
    /// kind trains as one isolated work item, and a training panic (or
    /// an armed [`FaultPlan`] fault) removes only that matcher. Each
    /// matcher trains under its own child of `suite_token` carrying
    /// `matcher_budget`, so a budget expiry (or a suite-wide cancel)
    /// likewise removes only that matcher — with the interrupt's
    /// elapsed/progress recorded in the failure. Returns the surviving
    /// fleet (in `kinds` order, whatever the worker count) plus one
    /// [`MatcherFailure`] per casualty.
    #[allow(clippy::too_many_arguments)]
    pub fn train_isolated(
        kinds: &[MatcherKind],
        input: &TrainInput<'_>,
        config: &MatcherTrainConfig,
        plan: &FaultPlan,
        pool: &WorkerPool,
        suite_token: &CancelToken,
        matcher_budget: Budget,
    ) -> (MatcherRegistry, Vec<MatcherFailure>) {
        // The fan-out itself is not interrupted mid-fleet: every matcher
        // gets its turn, and each one's child token (which also observes
        // the suite token) decides its fate — so attribution stays
        // deterministic whatever the worker count.
        let stage = pool.recorder().span("train");
        let stage = &stage;
        let outcomes = pool.par_map_isolated(kinds.len(), |i| {
            let k = kinds[i];
            let span = stage.child(&format!("train.{}", k.name()));
            // Pessimistic status: a panic unwinds through this guard
            // before any exit path runs, so a record still reading
            // `Panicked` marks the span the panic escaped from.
            span.set_status(SpanStatus::Panicked);
            let cut = |i: &Interrupt| {
                span.set_status(SpanStatus::Cut);
                span.note(i.to_string());
            };
            let token = suite_token.child(matcher_budget);
            plan.stall_if_armed(FaultSite::Train, Some(k), &token)
                .inspect_err(&cut)?;
            plan.trip(FaultSite::Train, Some(k));
            let out = k.train_within(input, config, &token);
            match &out {
                Ok(m) => {
                    span.set_status(SpanStatus::Ok);
                    span.note(format!(
                        "{} checkpoints, {} steps",
                        m.step_unit(),
                        token.steps_done()
                    ));
                }
                Err(i) => cut(i),
            }
            out
        });
        let mut matchers = Vec::new();
        let mut failures = Vec::new();
        for (&kind, outcome) in kinds.iter().zip(outcomes) {
            match outcome {
                Ok(Ok(m)) => matchers.push(m),
                Ok(Err(interrupt)) => {
                    failures.push(MatcherFailure::interrupted(
                        kind.name(),
                        Stage::Train,
                        interrupt,
                    ));
                }
                Err(reason) => {
                    failures.push(MatcherFailure::panicked(kind.name(), Stage::Train, reason));
                }
            }
        }
        (MatcherRegistry { matchers }, failures)
    }

    /// Number of trained matchers.
    pub fn len(&self) -> usize {
        self.matchers.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.matchers.is_empty()
    }

    /// Iterate over trained matchers.
    pub fn iter(&self) -> impl Iterator<Item = &TrainedMatcher> {
        self.matchers.iter()
    }

    /// Look up a matcher by kind.
    pub fn get(&self, kind: MatcherKind) -> Option<&TrainedMatcher> {
        self.matchers.iter().find(|m| m.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_neural::HashVocab;

    /// Tiny aligned dual-representation dataset.
    fn input() -> (Matrix, Vec<TokenPair>, Vec<f64>) {
        let vocab = HashVocab::new(128);
        let mk = |l: &str, r: &str| TokenPair {
            left: vec![vocab.encode_words(l)],
            right: vec![vocab.encode_words(r)],
        };
        let mut rows = Vec::new();
        let mut tokens = Vec::new();
        let mut labels = Vec::new();
        let names = ["li wei", "john smith", "hans muller", "maria garcia"];
        for (i, n) in names.iter().enumerate() {
            // Match: high similarity features.
            rows.push(vec![0.9 - 0.02 * i as f64, 0.85]);
            tokens.push(mk(n, n));
            labels.push(1.0);
            // Non-match: low similarity.
            let other = names[(i + 1) % names.len()];
            rows.push(vec![0.15 + 0.02 * i as f64, 0.2]);
            tokens.push(mk(n, other));
            labels.push(0.0);
        }
        (Matrix::from_rows(&rows), tokens, labels)
    }

    #[test]
    fn all_ten_kinds_train_and_score() {
        let (features, tokens, labels) = input();
        let ti = TrainInput {
            features: &features,
            tokens: &tokens,
            labels: &labels,
        };
        let reg = MatcherRegistry::train(&MatcherKind::ALL, &ti, &MatcherTrainConfig::fast());
        assert_eq!(reg.len(), 10);
        for m in reg.iter() {
            let scores = m.score_batch(&features, &tokens);
            for s in &scores {
                assert!((0.0..=1.0).contains(s), "{} gave {s}", m.name());
            }
            // Every matcher should at least separate the toy classes.
            let pos: f64 = scores.iter().step_by(2).sum::<f64>() / 4.0;
            let neg: f64 = scores.iter().skip(1).step_by(2).sum::<f64>() / 4.0;
            assert!(pos > neg, "{} failed to separate: {pos} vs {neg}", m.name());
        }
    }

    #[test]
    fn kind_metadata_is_consistent() {
        assert_eq!(MatcherKind::ALL.len(), 10);
        assert_eq!(
            MatcherKind::NON_NEURAL.len() + MatcherKind::NEURAL.len(),
            10
        );
        for k in MatcherKind::ALL {
            assert_eq!(k.is_neural(), MatcherKind::NEURAL.contains(&k));
            assert!(!k.description().is_empty());
            let parsed: MatcherKind = k.name().parse().unwrap();
            assert_eq!(parsed, k);
        }
        assert!("Wat".parse::<MatcherKind>().is_err());
    }

    #[test]
    fn registry_lookup_by_kind() {
        let (features, tokens, labels) = input();
        let ti = TrainInput {
            features: &features,
            tokens: &tokens,
            labels: &labels,
        };
        let reg = MatcherRegistry::train(
            &[MatcherKind::DtMatcher, MatcherKind::NbMatcher],
            &ti,
            &MatcherTrainConfig::fast(),
        );
        assert!(reg.get(MatcherKind::DtMatcher).is_some());
        assert!(reg.get(MatcherKind::Mcan).is_none());
        assert_eq!(
            reg.get(MatcherKind::NbMatcher).unwrap().kind(),
            MatcherKind::NbMatcher
        );
    }

    #[test]
    fn external_scores_default_to_zero() {
        let ext = ExternalScores::new("MyMatcher", [(("a1".to_owned(), "b1".to_owned()), 0.9)]);
        assert_eq!(ext.name(), "MyMatcher");
        assert_eq!(ext.score_ids("a1", "b1"), 0.9);
        assert_eq!(ext.score_ids("a1", "b2"), 0.0);
        assert_eq!(ext.len(), 1);
        assert!(!ext.is_empty());
    }
}
