//! The end-to-end suite: import → matcher selection → fairness
//! evaluation → ensemble-based resolution (the demo's four steps, §3).

use std::collections::HashMap;

use fairem_csvio::CsvTable;
use fairem_ml::Matrix;
use fairem_neural::{HashVocab, TokenPair};
use fairem_obs::{Recorder, Span, SpanStatus};
use fairem_par::{
    Budget, CancelToken, Interrupt, MemBudget, MemPressure, MemTracker, ParOutcome, Parallelism,
    WorkerPool,
};

use fairem_calib::{CalibrationSpec, GroupCalibrator};

use crate::audit::{AuditReport, Auditor};
use crate::blocking::Blocker;
use crate::calibrate::{self, CalibratedAudit};
use crate::ckpt::{fnv1a64, CheckpointStore, ShardRecord};
use crate::ensemble::EnsembleExplorer;
use crate::error::{Stage, SuiteError, SuiteResult};
use crate::exec::{Exec, PairBatch};
use crate::explain::Explainer;
use crate::fairness::{Disparity, FairnessMeasure};
use crate::fault::{self, FaultPlan, FaultSite};
use crate::features::{FeatureGenerator, MatrixError};
use crate::matcher::{
    sanitize_scores, ExternalScores, Matcher, MatcherFailure, MatcherKind, MatcherRegistry,
    MatcherTrainConfig, TrainInput,
};
use crate::prep::{default_blocker, prepare_with, PrepConfig, PreparedData};
use crate::quarantine::QuarantineReport;
use crate::schema::{SchemaError, Table};
use crate::sensitive::{GroupId, GroupSpace, GroupVector, SensitiveAttr};
use crate::shard::{window_len, PairCounts, ShardPlan, ShardPolicy};
use crate::workload::{Correspondence, Workload};

/// Suite-wide configuration.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Candidate pairing / splitting configuration.
    pub prep: PrepConfig,
    /// Matcher training hyperparameters.
    pub train: MatcherTrainConfig,
    /// Score cut-off above which a pair is predicted a match.
    pub matching_threshold: f64,
    /// Hashing-vocabulary size for the neural matchers.
    pub vocab_size: u32,
    /// Fault-injection plan (empty by default; used by robustness tests
    /// and chaos drills to rehearse degraded-mode execution).
    pub fault: FaultPlan,
    /// Worker-pool policy for the parallel hot paths (feature matrices,
    /// matcher train/score fan-out, audits, Pareto enumeration). Results
    /// are identical for every policy; only wall-clock time changes.
    pub parallelism: Parallelism,
    /// Whole-suite budget. When it expires the run stops at the next
    /// checkpoint with [`SuiteError::TimedOut`]. Unlimited by default;
    /// an unlimited budget adds no observable behavior — the run is
    /// bit-for-bit the unbudgeted one.
    pub budget: Budget,
    /// Per-matcher train/score budget. Each matcher runs under its own
    /// child token carrying this budget, so an expiry degrades only that
    /// matcher (exactly like a contained panic) and the survivors are
    /// still audited. Unlimited by default.
    pub matcher_budget: Budget,
    /// External cancellation handle: trip it (e.g. from a Ctrl-C
    /// handler) and the run winds down cooperatively at the next
    /// checkpoint, yielding partial results. Inert by default.
    pub cancel: CancelToken,
    /// Observability recorder. The default disabled recorder is
    /// bit-for-bit inert — no locks, no clock reads — so metrics-off
    /// runs are byte-identical to runs predating observability. Pass
    /// [`Recorder::enabled`] (e.g. via [`SuiteBuilder::observe`]) to
    /// collect per-stage spans and `par.*` pool metrics.
    pub observe: Recorder,
    /// Candidate-generation scheme. `None` (the default) runs token
    /// blocking over [`PrepConfig::blocking_columns`] /
    /// [`PrepConfig::max_block`]; set via [`SuiteBuilder::blocker`] to
    /// swap in e.g. [`crate::blocking::SortedNeighborhood`] without
    /// touching prep.
    pub blocker: Option<std::sync::Arc<dyn Blocker>>,
    /// Memory budget over the deterministic cost model (feature-matrix
    /// bytes). Unlimited by default; a finite budget makes the
    /// fully-materialized path fail with [`SuiteError::MemExceeded`]
    /// when a declared build does not fit, while the sharded path
    /// ([`FairEm360::try_run_sharded`]) narrows its scoring windows to
    /// stay inside it.
    pub mem_budget: MemBudget,
    /// Shard count, checkpoint directory, and resume flag for the
    /// out-of-core path. Ignored by [`FairEm360::try_run`].
    pub shard: ShardPolicy,
    /// Per-group score-calibration policy (ref \[10\] style). `None`
    /// (the default) audits raw scores only; a spec makes
    /// [`Session::calibrated_audit`] fit and apply a
    /// [`fairem_calib::GroupCalibrator`] without the caller re-passing
    /// the spec.
    pub calibration: Option<CalibrationSpec>,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            prep: PrepConfig::default(),
            train: MatcherTrainConfig::default(),
            matching_threshold: 0.5,
            vocab_size: 512,
            fault: FaultPlan::default(),
            parallelism: Parallelism::Auto,
            budget: Budget::UNLIMITED,
            matcher_budget: Budget::UNLIMITED,
            cancel: CancelToken::inert(),
            observe: Recorder::disabled(),
            blocker: None,
            mem_budget: MemBudget::UNLIMITED,
            shard: ShardPolicy::default(),
            calibration: None,
        }
    }
}

impl SuiteConfig {
    /// A reduced configuration for fast tests.
    pub fn fast() -> SuiteConfig {
        SuiteConfig {
            train: MatcherTrainConfig::fast(),
            vocab_size: 128,
            ..SuiteConfig::default()
        }
    }
}

/// The one front door for assembling a suite run: collect tables,
/// ground truth, sensitive attributes, and configuration, then
/// [`SuiteBuilder::build`] into a validated [`FairEm360`].
///
/// ```ignore
/// let session = FairEm360::builder()
///     .tables(a, b)
///     .ground_truth(matches)
///     .sensitive([SensitiveAttr::categorical("country")])
///     .parallelism(Parallelism::Fixed(4))
///     .build()?
///     .try_run(&MatcherKind::NON_NEURAL)?;
/// ```
///
/// By default the builder imports leniently — rows with empty or
/// duplicate ids are quarantined (inspect them via
/// [`FairEm360::quarantine`]) instead of failing the dataset. Call
/// [`SuiteBuilder::strict`] to turn any schema violation into an error.
#[derive(Debug, Default)]
pub struct SuiteBuilder {
    table_a: Option<CsvTable>,
    table_b: Option<CsvTable>,
    matches: Vec<(String, String)>,
    sensitive: Vec<SensitiveAttr>,
    config: SuiteConfig,
    strict: bool,
}

impl SuiteBuilder {
    /// The two tables to match (left and right).
    pub fn tables(mut self, table_a: CsvTable, table_b: CsvTable) -> SuiteBuilder {
        self.table_a = Some(table_a);
        self.table_b = Some(table_b);
        self
    }

    /// Ground-truth match id pairs `(id_a, id_b)`.
    pub fn ground_truth(mut self, matches: Vec<(String, String)>) -> SuiteBuilder {
        self.matches = matches;
        self
    }

    /// The sensitive attributes to audit on (appended).
    pub fn sensitive(
        mut self,
        attrs: impl IntoIterator<Item = SensitiveAttr>,
    ) -> SuiteBuilder {
        self.sensitive.extend(attrs);
        self
    }

    /// Replace the whole configuration.
    pub fn config(mut self, config: SuiteConfig) -> SuiteBuilder {
        self.config = config;
        self
    }

    /// Worker-pool policy for the run (shorthand for mutating
    /// [`SuiteConfig::parallelism`]).
    pub fn parallelism(mut self, parallelism: Parallelism) -> SuiteBuilder {
        self.config.parallelism = parallelism;
        self
    }

    /// Fault-injection plan (shorthand for mutating
    /// [`SuiteConfig::fault`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> SuiteBuilder {
        self.config.fault = plan;
        self
    }

    /// Whole-suite budget (shorthand for mutating
    /// [`SuiteConfig::budget`]). When it expires, `try_run` returns
    /// [`SuiteError::TimedOut`] at the next checkpoint.
    pub fn budget(mut self, budget: Budget) -> SuiteBuilder {
        self.config.budget = budget;
        self
    }

    /// Per-matcher budget (shorthand for mutating
    /// [`SuiteConfig::matcher_budget`]). An expiry cuts only that
    /// matcher; the session degrades and the survivors are audited.
    pub fn matcher_budget(mut self, budget: Budget) -> SuiteBuilder {
        self.config.matcher_budget = budget;
        self
    }

    /// External cancellation handle (shorthand for mutating
    /// [`SuiteConfig::cancel`]): trip it from another thread — e.g. a
    /// Ctrl-C handler — to wind the run down cooperatively.
    pub fn cancel_token(mut self, token: CancelToken) -> SuiteBuilder {
        self.config.cancel = token;
        self
    }

    /// Observability recorder (shorthand for mutating
    /// [`SuiteConfig::observe`]): pass [`Recorder::enabled`] to collect
    /// per-stage spans, counters, and pool metrics for this run and its
    /// session's audits/ensembles. The default disabled recorder keeps
    /// the run bit-for-bit identical to one without observability.
    pub fn observe(mut self, recorder: Recorder) -> SuiteBuilder {
        self.config.observe = recorder;
        self
    }

    /// Candidate-generation scheme (shorthand for mutating
    /// [`SuiteConfig::blocker`]): e.g.
    /// `.blocker(SortedNeighborhood { key_column: "name".into(), window: 5 })`.
    /// Without it the suite token-blocks over
    /// [`PrepConfig::blocking_columns`].
    pub fn blocker(mut self, blocker: impl Blocker + 'static) -> SuiteBuilder {
        self.config.blocker = Some(std::sync::Arc::new(blocker));
        self
    }

    /// Number of shards for the out-of-core path (shorthand for
    /// mutating [`ShardPolicy::shards`]): with `n > 1`,
    /// [`FairEm360::try_run_sharded`] partitions the test pair space
    /// into `n` contiguous shards and audits from merged histograms,
    /// bit-for-bit identical to the unsharded run.
    pub fn shards(mut self, n: usize) -> SuiteBuilder {
        self.config.shard.shards = n;
        self
    }

    /// Memory budget over the deterministic cost model (shorthand for
    /// mutating [`SuiteConfig::mem_budget`]).
    pub fn mem_budget(mut self, budget: MemBudget) -> SuiteBuilder {
        self.config.mem_budget = budget;
        self
    }

    /// Directory for `fairem-ckpt/1` shard checkpoints (shorthand for
    /// mutating [`ShardPolicy::checkpoint_dir`]). Each completed shard
    /// is committed there with atomic rename, so a killed run can be
    /// resumed.
    pub fn checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> SuiteBuilder {
        self.config.shard.checkpoint_dir = Some(dir.into());
        self
    }

    /// Reuse committed shards from the checkpoint directory when their
    /// run key matches (shorthand for mutating [`ShardPolicy::resume`]).
    pub fn resume(mut self, resume: bool) -> SuiteBuilder {
        self.config.shard.resume = resume;
        self
    }

    /// Per-group score-calibration policy for the session (shorthand
    /// for mutating [`SuiteConfig::calibration`]): e.g.
    /// `.calibration(CalibrationSpec::isotonic())`. The fitted
    /// calibrators live session-side; audits stay on raw scores unless
    /// the calibrated entry points are used.
    pub fn calibration(mut self, spec: CalibrationSpec) -> SuiteBuilder {
        self.config.calibration = Some(spec);
        self
    }

    /// Treat any schema violation as an error instead of quarantining
    /// the offending rows.
    pub fn strict(mut self) -> SuiteBuilder {
        self.strict = true;
        self
    }

    /// Validate and import. Missing tables are a
    /// [`SuiteError::Config`]; schema problems are quarantined (or, in
    /// strict mode, returned as [`SuiteError::Schema`]).
    pub fn build(self) -> SuiteResult<FairEm360> {
        let SuiteBuilder {
            table_a,
            table_b,
            matches,
            sensitive,
            config,
            strict,
        } = self;
        let (Some(table_a), Some(table_b)) = (table_a, table_b) else {
            return Err(SuiteError::Config {
                detail: "both tables are required: call .tables(table_a, table_b)".into(),
            });
        };
        if strict {
            let table_a = Table::from_csv(table_a).map_err(|source| SuiteError::Schema {
                table: "tableA".into(),
                source,
            })?;
            let table_b = Table::from_csv(table_b).map_err(|source| SuiteError::Schema {
                table: "tableB".into(),
                source,
            })?;
            Ok(FairEm360 {
                table_a,
                table_b,
                matches,
                sensitive,
                config,
                quarantine: QuarantineReport::default(),
            })
        } else {
            FairEm360::import_with(table_a, table_b, matches, sensitive, config)
                .map(|(suite, _quarantine)| suite)
        }
    }
}

/// Step 1 (data import): a dataset loaded into the suite, ready to run.
#[derive(Debug)]
pub struct FairEm360 {
    table_a: Table,
    table_b: Table,
    matches: Vec<(String, String)>,
    sensitive: Vec<SensitiveAttr>,
    config: SuiteConfig,
    quarantine: QuarantineReport,
}

impl FairEm360 {
    /// Start assembling a suite run — the front door for new code.
    pub fn builder() -> SuiteBuilder {
        SuiteBuilder::default()
    }

    /// Rows quarantined during import (empty in strict mode).
    pub fn quarantine(&self) -> &QuarantineReport {
        &self.quarantine
    }

    /// Import a Magellan-shaped dataset: two tables, ground-truth match
    /// id pairs, and the sensitive attributes to audit on. Strict: any
    /// schema violation is an error. Use [`FairEm360::import_with`] for
    /// the quarantining (fault-tolerant) path.
    #[deprecated(note = "use FairEm360::builder()")]
    pub fn import(
        table_a: CsvTable,
        table_b: CsvTable,
        matches: Vec<(String, String)>,
        sensitive: Vec<SensitiveAttr>,
    ) -> Result<FairEm360, SchemaError> {
        Ok(FairEm360 {
            table_a: Table::from_csv(table_a)?,
            table_b: Table::from_csv(table_b)?,
            matches,
            sensitive,
            config: SuiteConfig::default(),
            quarantine: QuarantineReport::default(),
        })
    }

    /// Fault-tolerant import: rows with empty or duplicate ids are
    /// quarantined (first occurrence kept) instead of failing the whole
    /// dataset, and the returned [`QuarantineReport`] itemizes every
    /// rejection. A missing `id` column is still a hard error. When the
    /// config arms an import-site fault, rows are corrupted *before*
    /// hygiene runs, so injected damage flows through the same
    /// quarantine machinery as real damage.
    pub fn import_with(
        table_a: CsvTable,
        table_b: CsvTable,
        matches: Vec<(String, String)>,
        sensitive: Vec<SensitiveAttr>,
        config: SuiteConfig,
    ) -> SuiteResult<(FairEm360, QuarantineReport)> {
        let span = config.observe.span("import");
        let mut table_a = table_a;
        let mut table_b = table_b;
        if config.fault.corrupts_import() {
            for t in [&mut table_a, &mut table_b] {
                if let Some(id_col) = t.column_index("id") {
                    config.fault.corrupt_rows(&mut t.rows, id_col);
                }
            }
        }
        config
            .observe
            .add("import.rows", (table_a.rows.len() + table_b.rows.len()) as u64);
        let mut quarantine = QuarantineReport::default();
        let (table_a, qa) =
            Table::from_csv_lenient(table_a, "tableA").map_err(|source| SuiteError::Schema {
                table: "tableA".into(),
                source,
            })?;
        let (table_b, qb) =
            Table::from_csv_lenient(table_b, "tableB").map_err(|source| SuiteError::Schema {
                table: "tableB".into(),
                source,
            })?;
        quarantine.extend(qa);
        quarantine.extend(qb);
        config
            .observe
            .add("import.quarantined", quarantine.len() as u64);
        span.note(format!("{} row(s) quarantined", quarantine.len()));
        drop(span);
        Ok((
            FairEm360 {
                table_a,
                table_b,
                matches,
                sensitive,
                config,
                quarantine: quarantine.clone(),
            },
            quarantine,
        ))
    }

    /// Replace the configuration.
    pub fn with_config(mut self, config: SuiteConfig) -> FairEm360 {
        self.config = config;
        self
    }

    /// Step 2 (matcher selection) + training: run the Matching-and-
    /// Evaluation flow with the given integrated matchers, producing a
    /// [`Session`] holding trained matchers and the scored test split.
    ///
    /// # Panics
    /// On any stage or matcher failure. Use [`FairEm360::try_run`] for
    /// degraded-mode execution.
    #[deprecated(note = "use FairEm360::builder() and try_run()")]
    pub fn run(self, kinds: &[MatcherKind]) -> Session {
        match self.try_run(kinds) {
            Ok(session) => {
                if let Some(f) = session.failures().first() {
                    // fairem: allow(panic) — documented # Panics contract on the deprecated run() wrapper
                    panic!("matcher failed: {f}");
                }
                session
            }
            // fairem: allow(panic) — documented # Panics contract on the deprecated run() wrapper
            Err(e) => panic!("suite execution failed: {e}"),
        }
    }

    /// Fault-tolerant run: stage panics become [`SuiteError::Stage`],
    /// per-matcher train/score panics degrade the session instead of
    /// aborting it (the survivors are still audited), and every matcher
    /// score passes a non-finite/out-of-range clamp before thresholding.
    /// Only when *no* matcher survives does the run fail, with
    /// [`SuiteError::AllMatchersFailed`] carrying the post-mortem.
    ///
    /// Budgets degrade along the same seams: a per-matcher budget expiry
    /// ([`SuiteConfig::matcher_budget`]) cuts only that matcher, while a
    /// whole-suite expiry or external cancel ([`SuiteConfig::budget`],
    /// [`SuiteConfig::cancel`]) stops the run at the next checkpoint
    /// with [`SuiteError::TimedOut`]. With everything unlimited (the
    /// default) the run is bit-for-bit the unbudgeted one.
    pub fn try_run(self, kinds: &[MatcherKind]) -> SuiteResult<Session> {
        self.run_front(kinds)?.into_session()
    }

    /// The sharded, out-of-core variant of [`FairEm360::try_run`]: the
    /// shared front (prep → blocking → feature build → training) runs
    /// globally, then the *test* split is partitioned by a deterministic
    /// [`ShardPlan`] and each shard is featurized, scored, and
    /// accumulated into per-matcher [`PairCounts`] histograms inside the
    /// memory budget — the full test feature matrix never exists. With a
    /// checkpoint directory configured, each completed shard is
    /// committed atomically and [`ShardPolicy::resume`] reuses committed
    /// shards from an earlier (killed) run of the same key. The returned
    /// [`ShardedRun`] audits bit-for-bit identically to
    /// [`Session::audit_all`] on the same configuration.
    pub fn try_run_sharded(self, kinds: &[MatcherKind]) -> SuiteResult<ShardedRun> {
        self.run_front(kinds)?.into_sharded()
    }

    /// The shared front of both execution paths: prep → blocking →
    /// feature-generator build → train-split featurization → training.
    /// Everything here is global on purpose — the TF-IDF corpus, the
    /// splits, and the trained matchers must see identical data in both
    /// paths, which is what makes the sharded back half bit-for-bit
    /// equivalent to the in-memory one.
    fn run_front(self, kinds: &[MatcherKind]) -> SuiteResult<Front> {
        let FairEm360 {
            table_a,
            table_b,
            matches,
            sensitive,
            config,
            mut quarantine,
        } = self;
        let plan = config.fault.clone();
        let obs = config.observe.clone();
        // One token for the whole run: every stage checkpoints it, every
        // matcher trains/scores under a child of it, and the session
        // keeps it so audits and ensembles observe the same handle.
        let suite_token = config.cancel.child(config.budget);

        let prep_span = obs.span("prep");
        suite_token.checkpoint().map_err(|i| {
            cut_span(&prep_span, &i);
            timed_out(Stage::Prep, i)
        })?;
        let space = fault::guard(|| GroupSpace::extract(&[&table_a, &table_b], sensitive))
            .map_err(|detail| {
                prep_span.set_status(SpanStatus::Panicked);
                SuiteError::Stage {
                    stage: Stage::Prep,
                    detail,
                }
            })?;
        let enc_a = space.encode_table(&table_a);
        let enc_b = space.encode_table(&table_b);
        drop(prep_span);

        // The one execution context every batch stage runs under: the
        // suite pool and token, unlimited per-call budget (the suite
        // budget lives on the token itself), the suite recorder, and the
        // run's memory account (unlimited trackers record but never
        // reject, so budget-free runs are bit-for-bit unchanged).
        let pool = WorkerPool::with_parallelism(config.parallelism).observe(obs.clone());
        let exec = Exec::with_pool(pool.clone())
            .cancel(suite_token.clone())
            .observe(obs.clone())
            .mem(MemTracker::with_budget(config.mem_budget));

        let blocking_span = obs.span("blocking");
        let blocker: std::sync::Arc<dyn Blocker> = match &config.blocker {
            Some(b) => std::sync::Arc::clone(b),
            None => std::sync::Arc::new(default_blocker(&config.prep)),
        };
        blocking_span.note(format!("scheme: {}", blocker.name()));
        let (prepared, prep_quarantine) = fault::guard(|| {
            prepare_with(
                &table_a,
                &table_b,
                &matches,
                &config.prep,
                blocker.as_ref(),
                &exec,
            )
        })
        .map_err(|detail| {
            blocking_span.set_status(SpanStatus::Panicked);
            SuiteError::Stage {
                stage: Stage::Blocking,
                detail,
            }
        })??;
        quarantine.extend(prep_quarantine);
        obs.gauge("pairs.train", prepared.train_idx.len() as f64);
        obs.gauge("pairs.valid", prepared.valid_idx.len() as f64);
        obs.gauge("pairs.test", prepared.test_idx.len() as f64);
        drop(blocking_span);

        let exclude: Vec<&str> = space.attrs().iter().map(|a| a.column.as_str()).collect();
        let build_span = obs.span("features");
        build_span.note("build generator");
        suite_token.checkpoint().map_err(|i| {
            cut_span(&build_span, &i);
            timed_out(Stage::FeatureGen, i)
        })?;
        plan.stall_if_armed(FaultSite::FeatureGen, None, &suite_token)
            .map_err(|i| {
                cut_span(&build_span, &i);
                timed_out(Stage::FeatureGen, i)
            })?;
        let features = fault::guard(|| {
            plan.trip(FaultSite::FeatureGen, None);
            FeatureGenerator::build(&table_a, &table_b, &exclude)
        })
        .map_err(|detail| {
            build_span.set_status(SpanStatus::Panicked);
            SuiteError::Stage {
                stage: Stage::FeatureGen,
                detail,
            }
        })?;
        drop(build_span);
        let vocab = HashVocab::new(config.vocab_size);

        let (train_pairs, train_labels) = prepared.split(&prepared.train_idx);
        let train_features = feature_matrix(&features, &exec, &obs, "train", &train_pairs)?;
        // The training matrix stays resident for the whole run (repair /
        // calibration reuse it), so its cost is persisted on the account.
        exec.mem
            .try_hold(features.matrix_cost(train_pairs.len()))
            .map_err(|m| mem_exceeded(Stage::FeatureGen, m))?
            .persist();
        obs.gauge("mem.stage_peak_bytes.train", exec.mem.peak() as f64);
        let train_tokens = features.tokenize_all(&PairBatch::new(&train_pairs), &vocab);
        let input = TrainInput {
            features: &train_features,
            tokens: &train_tokens,
            labels: &train_labels,
        };
        suite_token
            .checkpoint()
            .map_err(|i| timed_out(Stage::Train, i))?;
        let (registry, failures) = MatcherRegistry::train_isolated(
            kinds,
            &input,
            &config.train,
            &plan,
            &pool,
            &suite_token,
            config.matcher_budget,
        );

        Ok(Front {
            table_a,
            table_b,
            space,
            enc_a,
            enc_b,
            prepared,
            features,
            vocab,
            registry,
            failures,
            train_pairs,
            train_labels,
            train_features,
            train_tokens,
            quarantine,
            pool,
            exec,
            suite_token,
            obs,
            plan,
            config,
        })
    }
}

/// Everything both execution back halves need from the shared front:
/// built features, trained fleet, splits, and the run's execution
/// handles.
struct Front {
    table_a: Table,
    table_b: Table,
    space: GroupSpace,
    enc_a: Vec<GroupVector>,
    enc_b: Vec<GroupVector>,
    prepared: PreparedData,
    features: FeatureGenerator,
    vocab: HashVocab,
    registry: MatcherRegistry,
    failures: Vec<MatcherFailure>,
    train_pairs: Vec<(usize, usize)>,
    train_labels: Vec<f64>,
    train_features: Matrix,
    train_tokens: Vec<TokenPair>,
    quarantine: QuarantineReport,
    pool: WorkerPool,
    exec: Exec,
    suite_token: CancelToken,
    obs: Recorder,
    plan: FaultPlan,
    config: SuiteConfig,
}

impl Front {
    /// The in-memory back half: materialize the valid and test feature
    /// matrices, score the whole test split per matcher, and assemble a
    /// [`Session`].
    fn into_session(self) -> SuiteResult<Session> {
        let Front {
            table_a,
            table_b,
            space,
            enc_a,
            enc_b,
            prepared,
            features,
            vocab,
            registry,
            mut failures,
            train_pairs,
            train_labels,
            train_features,
            train_tokens,
            quarantine,
            pool,
            exec,
            suite_token,
            obs,
            plan,
            config,
        } = self;
        let train_config = config.train;

        let (valid_pairs, valid_labels) = prepared.split(&prepared.valid_idx);
        let valid_features = feature_matrix(&features, &exec, &obs, "valid", &valid_pairs)?;
        exec.mem
            .try_hold(features.matrix_cost(valid_pairs.len()))
            .map_err(|m| mem_exceeded(Stage::FeatureGen, m))?
            .persist();
        let valid_tokens = features.tokenize_all(&PairBatch::new(&valid_pairs), &vocab);

        let (test_pairs, test_labels) = prepared.split(&prepared.test_idx);
        let test_features = feature_matrix(&features, &exec, &obs, "test", &test_pairs)?;
        exec.mem
            .try_hold(features.matrix_cost(test_pairs.len()))
            .map_err(|m| mem_exceeded(Stage::FeatureGen, m))?
            .persist();
        obs.gauge("mem.stage_peak_bytes.features", exec.mem.peak() as f64);
        let test_tokens = features.tokenize_all(&PairBatch::new(&test_pairs), &vocab);

        // Per-matcher scoring fan-out: each matcher is one isolated work
        // item, so a scoring panic degrades only that matcher no matter
        // how the pool schedules the fleet. Outcomes come back in
        // registry order, keeping degradation bookkeeping deterministic.
        // As at train time, each matcher scores under its own child of
        // the suite token, so a budget cut removes only that matcher.
        suite_token
            .checkpoint()
            .map_err(|i| timed_out(Stage::Score, i))?;
        let fleet: Vec<_> = registry.iter().collect();
        let score_span = obs.span("score");
        let outcomes = pool.par_map_isolated(fleet.len(), |i| {
            let m = fleet[i];
            let span = score_span.child(&format!("score.{}", m.name()));
            // Pessimistic status (see train_isolated): a contained panic
            // leaves the record at `Panicked`.
            span.set_status(SpanStatus::Panicked);
            let token = suite_token.child(config.matcher_budget);
            let cut = |i: &Interrupt| cut_span(&span, i);
            plan.stall_if_armed(FaultSite::Score, Some(m.kind()), &token)
                .inspect_err(&cut)?;
            token.checkpoint().inspect_err(&cut)?;
            plan.trip(FaultSite::Score, Some(m.kind()));
            let s = m.score_batch(&test_features, &test_tokens);
            span.set_status(SpanStatus::Ok);
            Ok(s)
        });
        drop(score_span);
        let mut scores = HashMap::new();
        let mut clamped_scores = 0usize;
        for (m, outcome) in fleet.iter().zip(outcomes) {
            match outcome {
                Ok(Ok(mut s)) => {
                    if plan.poisons(m.kind()) {
                        plan.corrupt_scores(m.kind(), &mut s);
                    }
                    clamped_scores += sanitize_scores(&mut s);
                    scores.insert(m.name().to_owned(), s);
                }
                Ok(Err(interrupt)) => failures.push(MatcherFailure::interrupted(
                    m.name(),
                    Stage::Score,
                    interrupt,
                )),
                Err(reason) => {
                    failures.push(MatcherFailure::panicked(m.name(), Stage::Score, reason))
                }
            }
        }
        if scores.is_empty() && (!failures.is_empty() || registry.iter().next().is_some()) {
            return Err(SuiteError::AllMatchersFailed { failures });
        }
        obs.gauge("mem.peak_bytes", exec.mem.peak() as f64);
        obs.gauge("shard.count", 1.0);

        // Pseudo-workload over the training split (scores = truth) for
        // train-side representation explanations.
        let train_workload = Workload::new(
            train_pairs
                .iter()
                .zip(&train_labels)
                .map(|(&(ra, rb), &y)| Correspondence {
                    a_row: ra,
                    b_row: rb,
                    score: y,
                    truth: y == 1.0,
                    left: enc_a[ra],
                    right: enc_b[rb],
                })
                .collect(),
            0.5,
        );

        Ok(Session {
            table_a,
            table_b,
            space,
            prepared,
            features,
            registry,
            matching_threshold: config.matching_threshold,
            enc_a,
            enc_b,
            test_pairs,
            test_labels,
            test_features,
            test_tokens,
            scores,
            train_workload,
            train_pairs,
            train_labels,
            train_features,
            train_tokens,
            train_config,
            valid_pairs,
            valid_labels,
            valid_features,
            valid_tokens,
            calibration: config.calibration,
            failures,
            quarantine,
            clamped_scores,
            parallelism: config.parallelism,
            cancel: suite_token,
            observe: obs,
        })
    }

    /// The out-of-core back half: partition the test split with a
    /// deterministic [`ShardPlan`], process each shard in budget-sized
    /// windows (build window matrix → score → accumulate → drop), and
    /// commit each completed shard to the checkpoint store.
    fn into_sharded(self) -> SuiteResult<ShardedRun> {
        let Front {
            table_a,
            table_b,
            space,
            enc_a,
            enc_b,
            prepared,
            features,
            vocab,
            registry,
            mut failures,
            quarantine,
            pool,
            exec,
            suite_token,
            obs,
            plan,
            config,
            ..
        } = self;

        let (test_pairs, test_labels) = prepared.split(&prepared.test_idx);
        let shard_plan = ShardPlan::partition(test_pairs.len(), config.shard.shards.max(1));
        obs.gauge("shard.count", shard_plan.len() as f64);

        let fleet: Vec<_> = registry.iter().collect();
        let fleet_names: Vec<String> = fleet.iter().map(|m| m.name().to_owned()).collect();

        let store = match &config.shard.checkpoint_dir {
            Some(dir) => {
                let key = run_key(&table_a, &table_b, &space, &config, &fleet_names, shard_plan.len());
                Some(CheckpointStore::open(
                    dir,
                    key,
                    shard_plan.len(),
                    config.shard.resume,
                )?)
            }
            None => None,
        };

        // Per-matcher merged histograms, aligned with `fleet`. A matcher
        // knocked out by a scoring failure mid-run is marked dead: it is
        // excluded from the remaining shards and its partial histogram is
        // discarded at the end, mirroring how the in-memory path drops a
        // failed matcher's scores entirely.
        let mut merged: Vec<PairCounts> = fleet.iter().map(|_| PairCounts::new()).collect();
        let mut clamped_scores: u64 = 0;
        let mut dead: Vec<bool> = vec![false; fleet.len()];
        // Transient build bytes per pair (the staging-plus-matrix factor
        // `try_matrix` declares) — drives the deterministic window width.
        let per_pair = 2 * features.matrix_cost(1);

        for shard in shard_plan.shards() {
            suite_token
                .checkpoint()
                .map_err(|i| timed_out(Stage::Score, i))?;
            let span = obs.span("shard");
            span.note(format!(
                "shard {} [{}..{})",
                shard.index, shard.start, shard.end
            ));
            if config.shard.resume {
                if let Some(store) = &store {
                    if let Some(rec) = store.load_shard(shard.index) {
                        let committed: Vec<&str> =
                            rec.matchers.iter().map(|(n, _)| n.as_str()).collect();
                        let current: Vec<&str> =
                            fleet_names.iter().map(String::as_str).collect();
                        if committed == current {
                            for ((_, counts), acc) in rec.matchers.iter().zip(&mut merged) {
                                acc.merge(counts);
                            }
                            clamped_scores += rec.clamped;
                            obs.add("ckpt.shards_skipped", 1);
                            span.note("resumed from checkpoint");
                            continue;
                        }
                    }
                    obs.add("ckpt.shards_recomputed", 1);
                }
            }
            let mut rec = ShardRecord {
                matchers: fleet_names
                    .iter()
                    .map(|n| (n.clone(), PairCounts::new()))
                    .collect(),
                clamped: 0,
            };
            let mut start = shard.start;
            while start < shard.end {
                let window = window_len(shard.end - start, exec.mem.headroom(), per_pair);
                let end = (start + window).min(shard.end);
                let pairs = &test_pairs[start..end];
                let labels = &test_labels[start..end];
                let batch = PairBatch::new(pairs);
                let window_features = match features.try_matrix(&batch, &exec) {
                    Err(MatrixError::Panic(p)) => {
                        span.set_status(SpanStatus::Panicked);
                        return Err(SuiteError::Stage {
                            stage: Stage::FeatureGen,
                            detail: p.to_string(),
                        });
                    }
                    Err(MatrixError::Mem(m)) => {
                        span.note(m.to_string());
                        return Err(mem_exceeded(Stage::FeatureGen, m));
                    }
                    Ok(ParOutcome::Interrupted { interrupt, .. }) => {
                        cut_span(&span, &interrupt);
                        return Err(timed_out(Stage::FeatureGen, interrupt));
                    }
                    Ok(ParOutcome::Complete(m)) => m,
                };
                let tokens = features.tokenize_all(&batch, &vocab);
                let live: Vec<usize> = (0..fleet.len()).filter(|&i| !dead[i]).collect();
                let outcomes = pool.par_map_isolated(live.len(), |j| {
                    let m = fleet[live[j]];
                    let token = suite_token.child(config.matcher_budget);
                    plan.stall_if_armed(FaultSite::Score, Some(m.kind()), &token)?;
                    token.checkpoint()?;
                    plan.trip(FaultSite::Score, Some(m.kind()));
                    Ok(m.score_batch(&window_features, &tokens))
                });
                for (&fi, outcome) in live.iter().zip(outcomes) {
                    let m = fleet[fi];
                    match outcome {
                        Ok(Ok(mut s)) => {
                            if plan.poisons(m.kind()) {
                                plan.corrupt_scores(m.kind(), &mut s);
                            }
                            rec.clamped += sanitize_scores(&mut s) as u64;
                            let counts = &mut rec.matchers[fi].1;
                            for ((&(ra, rb), &y), score) in
                                pairs.iter().zip(labels).zip(&s)
                            {
                                counts.record(
                                    enc_a[ra],
                                    enc_b[rb],
                                    *score >= config.matching_threshold,
                                    y == 1.0,
                                );
                            }
                        }
                        Ok(Err(interrupt)) => {
                            dead[fi] = true;
                            failures.push(MatcherFailure::interrupted(
                                m.name(),
                                Stage::Score,
                                interrupt,
                            ));
                        }
                        Err(reason) => {
                            dead[fi] = true;
                            failures.push(MatcherFailure::panicked(
                                m.name(),
                                Stage::Score,
                                reason,
                            ));
                        }
                    }
                }
                start = end;
            }
            for (i, (_, counts)) in rec.matchers.iter().enumerate() {
                merged[i].merge(counts);
            }
            clamped_scores += rec.clamped;
            // Checkpoint only clean shards: once the fleet is degraded,
            // shard records no longer describe the full fleet and a later
            // resume must recompute instead of trusting them.
            if dead.iter().all(|&d| !d) {
                if let Some(store) = &store {
                    store.store_shard(shard.index, &rec)?;
                    obs.add("ckpt.shards_written", 1);
                }
            }
        }
        obs.gauge("mem.peak_bytes", exec.mem.peak() as f64);
        obs.gauge("mem.stage_peak_bytes.score", exec.mem.peak() as f64);

        let counts: Vec<(String, PairCounts)> = fleet_names
            .iter()
            .zip(merged)
            .enumerate()
            .filter(|&(i, _)| !dead[i])
            .map(|(_, (n, c))| (n.clone(), c))
            .collect();
        if counts.is_empty() && (!failures.is_empty() || !fleet.is_empty()) {
            return Err(SuiteError::AllMatchersFailed { failures });
        }
        Ok(ShardedRun {
            space,
            counts,
            matching_threshold: config.matching_threshold,
            failures,
            quarantine,
            clamped_scores: clamped_scores as usize,
            parallelism: config.parallelism,
            observe: obs,
            test_size: test_pairs.len(),
            shards: shard_plan.len(),
        })
    }
}

/// One stage-cut error with no matcher attribution.
fn timed_out(stage: Stage, interrupt: Interrupt) -> SuiteError {
    SuiteError::TimedOut {
        stage,
        matcher: None,
        elapsed: interrupt.elapsed,
    }
}

/// Annotate a stage span that ended in a cooperative cut, so the
/// Interrupt record carries (and the trace shows) which span the
/// budget/cancel severed.
fn cut_span(span: &Span, i: &Interrupt) {
    span.set_status(SpanStatus::Cut);
    span.note(i.to_string());
}

/// Convert a memory-budget refusal into its suite error.
fn mem_exceeded(stage: Stage, m: MemPressure) -> SuiteError {
    SuiteError::MemExceeded {
        stage,
        requested: m.requested,
        in_use: m.in_use,
        limit: m.limit,
    }
}

/// Build one split's feature matrix under the run's execution context,
/// converting panics, budget refusals, and cooperative cuts into suite
/// errors.
fn feature_matrix(
    features: &FeatureGenerator,
    exec: &Exec,
    obs: &Recorder,
    split: &str,
    pairs: &[(usize, usize)],
) -> SuiteResult<Matrix> {
    let span = obs.span("features");
    span.note(format!("{split} split: {} pair(s)", pairs.len()));
    match features.try_matrix(&PairBatch::new(pairs), exec) {
        Err(MatrixError::Panic(p)) => {
            span.set_status(SpanStatus::Panicked);
            Err(SuiteError::Stage {
                stage: Stage::FeatureGen,
                detail: p.to_string(),
            })
        }
        Err(MatrixError::Mem(m)) => {
            span.note(m.to_string());
            Err(mem_exceeded(Stage::FeatureGen, m))
        }
        Ok(ParOutcome::Interrupted { interrupt, .. }) => {
            cut_span(&span, &interrupt);
            Err(timed_out(Stage::FeatureGen, interrupt))
        }
        Ok(ParOutcome::Complete(m)) => Ok(m),
    }
}

/// The canonical run fingerprint for checkpoint reuse: FNV-1a 64 over a
/// description of everything that determines shard *content* — both
/// tables (schema and cells), prep/train configuration, threshold,
/// vocabulary, sensitive columns, the surviving fleet, the blocking
/// scheme, and the shard count (shard boundaries move with it). The
/// memory budget is deliberately excluded: shard results are
/// window-size independent, so a resume may change `--mem-budget`.
fn run_key(
    table_a: &Table,
    table_b: &Table,
    space: &GroupSpace,
    config: &SuiteConfig,
    fleet_names: &[String],
    shards: usize,
) -> u64 {
    let sens: Vec<&str> = space.attrs().iter().map(|a| a.column.as_str()).collect();
    let blocker = config
        .blocker
        .as_ref()
        .map_or_else(|| "token".to_owned(), |b| b.name().to_owned());
    let desc = format!(
        "fairem-ckpt/1|a:{:x}|b:{:x}|prep:{:?}|train:{:?}|thr:{:x}|vocab:{}|sens:{:?}|fleet:{:?}|blocker:{}|shards:{}",
        table_fingerprint(table_a),
        table_fingerprint(table_b),
        config.prep,
        config.train,
        config.matching_threshold.to_bits(),
        config.vocab_size,
        sens,
        fleet_names,
        blocker,
        shards
    );
    fnv1a64(desc.as_bytes())
}

/// FNV-1a 64 over a table's columns, ids, and every cell (with
/// unit-separator framing so cell boundaries can't alias).
fn table_fingerprint(t: &Table) -> u64 {
    let mut buf = String::new();
    for c in t.columns() {
        buf.push_str(c);
        buf.push('\u{1f}');
    }
    for r in 0..t.len() {
        buf.push_str(t.id(r));
        buf.push('\u{1f}');
        for c in 0..t.columns().len() {
            buf.push_str(t.value(r, c));
            buf.push('\u{1f}');
        }
        buf.push('\u{1e}');
    }
    fnv1a64(buf.as_bytes())
}

/// The result of a sharded, out-of-core run: merged per-matcher
/// [`PairCounts`] histograms instead of materialized score vectors.
/// Audits from it are bit-for-bit identical to [`Session`] audits of
/// the same configuration (pinned by the equivalence suite), while the
/// peak tracked memory stays bounded by the configured budget.
#[derive(Debug)]
pub struct ShardedRun {
    space: GroupSpace,
    counts: Vec<(String, PairCounts)>,
    matching_threshold: f64,
    failures: Vec<MatcherFailure>,
    quarantine: QuarantineReport,
    clamped_scores: usize,
    parallelism: Parallelism,
    observe: Recorder,
    test_size: usize,
    shards: usize,
}

impl ShardedRun {
    /// Names of the matchers with merged histograms — the survivors, in
    /// registry order (the sharded analogue of
    /// [`Session::matcher_names`]).
    pub fn matcher_names(&self) -> Vec<&str> {
        self.counts.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Per-matcher casualties, empty on a clean run.
    pub fn failures(&self) -> &[MatcherFailure] {
        &self.failures
    }

    /// Rows quarantined during import and prep.
    pub fn quarantine(&self) -> &QuarantineReport {
        &self.quarantine
    }

    /// Number of matcher scores repaired by the non-finite/range clamp.
    pub fn clamped_scores(&self) -> usize {
        self.clamped_scores
    }

    /// True when at least one requested matcher failed.
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Fleet coverage as `(survivors, requested)`.
    pub fn coverage(&self) -> (usize, usize) {
        let survivors = self.counts.len();
        (survivors, survivors + self.failures.len())
    }

    /// Number of test correspondences processed across all shards.
    pub fn test_size(&self) -> usize {
        self.test_size
    }

    /// Number of shards the test split was partitioned into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The worker-pool policy the run used.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The observability recorder the run recorded into.
    pub fn recorder(&self) -> &Recorder {
        &self.observe
    }

    /// The extracted group space.
    pub fn space(&self) -> &GroupSpace {
        &self.space
    }

    /// A matcher's merged histogram, if it survived.
    pub fn counts(&self, matcher: &str) -> Option<&PairCounts> {
        self.counts
            .iter()
            .find(|(n, _)| n == matcher)
            .map(|(_, c)| c)
    }

    /// Audit one matcher from its merged histogram. Unknown names are a
    /// [`SuiteError::UnknownMatcher`], exactly like [`Session::audit`].
    pub fn audit(&self, matcher: &str, auditor: &Auditor) -> SuiteResult<AuditReport> {
        let counts = self.counts(matcher).ok_or_else(|| SuiteError::UnknownMatcher {
            matcher: matcher.to_owned(),
            known: self
                .matcher_names()
                .iter()
                .map(|n| (*n).to_owned())
                .collect(),
        })?;
        let mut report =
            auditor.audit_counts(matcher, counts, self.matching_threshold, &self.space);
        report.degraded = self.failures.clone();
        Ok(report)
    }

    /// Audit every surviving matcher, in [`ShardedRun::matcher_names`]
    /// order — the sharded analogue of [`Session::audit_all`].
    pub fn audit_all(&self, auditor: &Auditor) -> Vec<AuditReport> {
        let span = self.observe.span("audit");
        self.counts
            .iter()
            .map(|(n, _)| {
                let _child = span.child(&format!("audit.{n}"));
                self.audit(n, auditor)
            })
            .filter_map(Result::ok) // names come from the map, so always Ok
            .collect()
    }
}

/// A trained, scored session — the state behind demo Steps 3 and 4.
#[derive(Debug)]
pub struct Session {
    /// Left table.
    pub table_a: Table,
    /// Right table.
    pub table_b: Table,
    /// The extracted group space.
    pub space: GroupSpace,
    /// Pairing and splits.
    pub prepared: PreparedData,
    /// The fitted feature generator.
    pub features: FeatureGenerator,
    /// The trained matcher fleet.
    pub registry: MatcherRegistry,
    /// Matching threshold for workloads.
    pub matching_threshold: f64,
    enc_a: Vec<GroupVector>,
    enc_b: Vec<GroupVector>,
    test_pairs: Vec<(usize, usize)>,
    test_labels: Vec<f64>,
    test_features: Matrix,
    test_tokens: Vec<TokenPair>,
    scores: HashMap<String, Vec<f64>>,
    train_workload: Workload,
    train_pairs: Vec<(usize, usize)>,
    train_labels: Vec<f64>,
    train_features: Matrix,
    train_tokens: Vec<TokenPair>,
    train_config: MatcherTrainConfig,
    valid_pairs: Vec<(usize, usize)>,
    valid_labels: Vec<f64>,
    valid_features: Matrix,
    valid_tokens: Vec<TokenPair>,
    calibration: Option<CalibrationSpec>,
    failures: Vec<MatcherFailure>,
    quarantine: QuarantineReport,
    clamped_scores: usize,
    parallelism: Parallelism,
    cancel: CancelToken,
    observe: Recorder,
}

impl Session {
    /// Names of the matchers with cached test scores — i.e. the
    /// survivors. Matchers that failed at train or score time are
    /// excluded, so audits, ensembles, and Pareto exploration run over
    /// this degraded fleet transparently.
    pub fn matcher_names(&self) -> Vec<&str> {
        self.registry
            .iter()
            .map(|m| m.name())
            .filter(|n| self.scores.contains_key(*n))
            .collect()
    }

    /// Per-matcher casualties (train- or score-stage), empty on a clean
    /// run.
    pub fn failures(&self) -> &[MatcherFailure] {
        &self.failures
    }

    /// Rows quarantined during import and prep.
    pub fn quarantine(&self) -> &QuarantineReport {
        &self.quarantine
    }

    /// Number of matcher scores repaired by the non-finite/range clamp.
    pub fn clamped_scores(&self) -> usize {
        self.clamped_scores
    }

    /// True when at least one requested matcher failed (the session
    /// completed over a reduced fleet).
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Fleet coverage as `(survivors, requested)`.
    pub fn coverage(&self) -> (usize, usize) {
        let survivors = self.matcher_names().len();
        (survivors, survivors + self.failures.len())
    }

    /// Number of test correspondences.
    pub fn test_size(&self) -> usize {
        self.test_pairs.len()
    }

    /// The training-split pseudo-workload (for representation analysis).
    pub fn train_workload(&self) -> &Workload {
        &self.train_workload
    }

    /// The worker-pool policy this session was run (and audits) with.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The error for a matcher name the session does not hold.
    fn unknown_matcher(&self, matcher: &str) -> SuiteError {
        SuiteError::UnknownMatcher {
            matcher: matcher.to_owned(),
            known: self
                .matcher_names()
                .iter()
                .map(|n| (*n).to_owned())
                .collect(),
        }
    }

    /// Build the evaluation workload for a trained matcher. A name the
    /// session does not hold (never trained, or quarantined by a
    /// failure) is a [`SuiteError::UnknownMatcher`], not a panic.
    pub fn workload(&self, matcher: &str) -> SuiteResult<Workload> {
        let scores = self
            .scores
            .get(matcher)
            .ok_or_else(|| self.unknown_matcher(matcher))?;
        Ok(self.workload_from_scores(scores.clone()))
    }

    /// Build a workload from raw scores aligned with the test pairs
    /// (used for ensemble strategies and custom score vectors).
    pub fn workload_from_scores(&self, scores: Vec<f64>) -> Workload {
        assert_eq!(scores.len(), self.test_pairs.len(), "score/test alignment");
        let items = self
            .test_pairs
            .iter()
            .zip(&self.test_labels)
            .zip(scores)
            .map(|((&(ra, rb), &y), score)| Correspondence {
                a_row: ra,
                b_row: rb,
                score,
                truth: y == 1.0,
                left: self.enc_a[ra],
                right: self.enc_b[rb],
            })
            .collect();
        Workload::new(items, self.matching_threshold)
    }

    /// Score the session's test split with any [`Matcher`] (e.g. one
    /// trained outside the session or an ensemble adapter) and return
    /// the aligned score vector.
    pub fn score_test_with(&self, matcher: &dyn Matcher) -> Vec<f64> {
        matcher.score_batch(&self.test_features, &self.test_tokens)
    }

    /// Build a workload for uploaded external scores (the
    /// Evaluation-Only flow): pairs the user never scored default to 0.
    pub fn external_workload(&self, ext: &ExternalScores) -> Workload {
        let scores = self
            .test_pairs
            .iter()
            .map(|&(ra, rb)| ext.score_ids(self.table_a.id(ra), self.table_b.id(rb)))
            .collect();
        self.workload_from_scores(scores)
    }

    /// Step 3: audit one matcher. When the session is degraded, the
    /// report carries the failed matchers so readers see the reduced
    /// coverage alongside the verdicts. Unknown names are a
    /// [`SuiteError::UnknownMatcher`].
    pub fn audit(&self, matcher: &str, auditor: &Auditor) -> SuiteResult<AuditReport> {
        let mut report = auditor.audit(matcher, &self.workload(matcher)?, &self.space);
        report.degraded = self.failures.clone();
        Ok(report)
    }

    /// Audit every surviving matcher, fanned out over the session's
    /// worker pool (one matcher per work item; each audit covers every
    /// measure). Reports come back in [`Session::matcher_names`] order
    /// for any worker count.
    pub fn audit_all(&self, auditor: &Auditor) -> Vec<AuditReport> {
        self.try_audit_all(auditor).0
    }

    /// Cancellable [`Session::audit_all`]: when the run token trips
    /// mid-fleet, returns the contiguous prefix of reports finished so
    /// far plus the [`Interrupt`] record — the graceful-shutdown path
    /// for Step 3. With no budget configured the interrupt is `None` and
    /// the reports are exactly the `audit_all` output.
    pub fn try_audit_all(&self, auditor: &Auditor) -> (Vec<AuditReport>, Option<Interrupt>) {
        self.try_audit_all_within(auditor, &self.cancel)
    }

    /// [`Session::try_audit_all`] under an explicit cancellation token
    /// instead of the session's own run token. This is the repeated-read
    /// entry point for long-lived callers (the audit server): the session
    /// and its cached feature matrices live on across requests while each
    /// request audits under its *own* deadline token, so one expired
    /// request degrades to a partial report without tripping anything
    /// shared. Reports come back in [`Session::matcher_names`] order for
    /// any worker count, bit-identical across tokens that never trip.
    pub fn try_audit_all_within(
        &self,
        auditor: &Auditor,
        cancel: &CancelToken,
    ) -> (Vec<AuditReport>, Option<Interrupt>) {
        let names = self.matcher_names();
        let span = self.observe.span("audit");
        let pool =
            WorkerPool::with_parallelism(self.parallelism).observe(self.observe.clone());
        let outcome = pool.par_map_within(names.len(), cancel, |i| {
            let _child = span.child(&format!("audit.{}", names[i]));
            self.audit(names[i], auditor)
        });
        let (reports, interrupt) = match outcome {
            ParOutcome::Complete(reports) => (reports, None),
            ParOutcome::Interrupted {
                done, interrupt, ..
            } => {
                span.set_status(SpanStatus::Cut);
                span.note(interrupt.to_string());
                (done, Some(interrupt))
            }
        };
        (
            reports
                .into_iter()
                .filter_map(Result::ok) // names are known, so always Ok
                .collect(),
            interrupt,
        )
    }

    /// The run's cancellation token: audits, ensembles, and any caller
    /// polling for graceful shutdown observe this handle.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The observability recorder the run recorded into (disabled unless
    /// [`SuiteBuilder::observe`] attached an enabled one). Snapshot it
    /// after audits/ensembles to get the full per-stage picture.
    pub fn recorder(&self) -> &Recorder {
        &self.observe
    }

    /// Build an explainer over a matcher's workload (the workload must
    /// outlive the explainer, so the caller holds it).
    pub fn explainer<'s>(&'s self, workload: &'s Workload, disparity: Disparity) -> Explainer<'s> {
        Explainer::new(
            workload,
            &self.space,
            &self.table_a,
            &self.table_b,
            Some(&self.train_workload),
            disparity,
        )
    }

    /// Step 4: build the ensemble explorer over the level-1 groups of a
    /// sensitive attribute, scoring assignments under `measure`.
    pub fn ensemble(
        &self,
        attr_index: usize,
        measure: FairnessMeasure,
        disparity: Disparity,
    ) -> EnsembleExplorer {
        let groups: Vec<GroupId> = self.space.level1_of_attr(attr_index);
        let workloads: Vec<(String, Workload)> = self
            .matcher_names()
            .iter()
            .filter_map(|n| {
                // `matcher_names` only lists matchers with cached scores.
                let scores = self.scores.get(*n)?;
                Some(((*n).to_owned(), self.workload_from_scores(scores.clone())))
            })
            .collect();
        let refs: Vec<(String, &Workload)> =
            workloads.iter().map(|(n, w)| (n.clone(), w)).collect();
        EnsembleExplorer::build(&refs, &self.space, &groups, measure, disparity)
            .with_parallelism(self.parallelism)
            .with_cancel(self.cancel.clone())
            .with_observe(self.observe.clone())
    }

    /// Tune a matcher's matching threshold on the *validation* split:
    /// returns the grid threshold maximizing validation F1, falling back
    /// to the session default when the validation split is empty or F1
    /// is undefined everywhere. This is the data-driven answer to the
    /// demo's Step-3 "specify the matching threshold" knob. Unknown
    /// names are a [`SuiteError::UnknownMatcher`].
    pub fn tune_threshold(&self, matcher: &str) -> SuiteResult<f64> {
        let m = self
            .registry
            .iter()
            .find(|m| m.name() == matcher)
            .ok_or_else(|| self.unknown_matcher(matcher))?;
        if self.valid_labels.is_empty() {
            return Ok(self.matching_threshold);
        }
        let scores = m.score_batch(&self.valid_features, &self.valid_tokens);
        let truths: Vec<bool> = self.valid_labels.iter().map(|&y| y == 1.0).collect();
        let mut best: Option<(f64, f64)> = None; // (f1, threshold)
        for i in 1..100 {
            let t = i as f64 / 100.0;
            let preds: Vec<bool> = scores.iter().map(|&s| s >= t).collect();
            let f1 = fairem_ml::f1_score(&preds, &truths);
            if f1.is_finite() && best.is_none_or(|(bf, _)| f1 > bf) {
                best = Some((f1, t));
            }
        }
        Ok(best.map_or(self.matching_threshold, |(_, t)| t))
    }

    /// Data-repair resolution (refs \[12\]/\[16\] style): retrain a matcher
    /// with the target group's training pairs oversampled, and return
    /// the repaired evaluation workload. `positives_only` replicates
    /// only the group's matching pairs (the recall lever).
    pub fn retrain_with_oversampling(
        &self,
        kind: MatcherKind,
        group: crate::sensitive::GroupId,
        factor: usize,
        positives_only: bool,
    ) -> Workload {
        let left: Vec<crate::sensitive::GroupVector> = self
            .train_pairs
            .iter()
            .map(|&(ra, _)| self.enc_a[ra])
            .collect();
        let right: Vec<crate::sensitive::GroupVector> = self
            .train_pairs
            .iter()
            .map(|&(_, rb)| self.enc_b[rb])
            .collect();
        let idx = crate::repair::oversample_group(
            &self.train_labels,
            &left,
            &right,
            group,
            factor,
            positives_only,
        );
        let features = self.train_features.select_rows(&idx);
        let tokens: Vec<TokenPair> = idx.iter().map(|&i| self.train_tokens[i].clone()).collect();
        let labels: Vec<f64> = idx.iter().map(|&i| self.train_labels[i]).collect();
        let input = TrainInput {
            features: &features,
            tokens: &tokens,
            labels: &labels,
        };
        let matcher = kind.train(&input, &self.train_config);
        let scores = matcher.score_batch(&self.test_features, &self.test_tokens);
        self.workload_from_scores(scores)
    }

    /// Calibration-based resolution (ref \[10\] style): per-group Platt
    /// calibration of a matcher's scores fitted on the training split,
    /// applied to the evaluation workload. Unknown names are a
    /// [`SuiteError::UnknownMatcher`].
    pub fn calibrated_workload(
        &self,
        matcher: &str,
        groups: &[crate::sensitive::GroupId],
    ) -> SuiteResult<Workload> {
        // Score the *training* pairs with the trained matcher to fit the
        // calibrators on held-in data.
        let m = self
            .registry
            .iter()
            .find(|m| m.name() == matcher)
            .ok_or_else(|| self.unknown_matcher(matcher))?;
        let train_scores = m.score_batch(&self.train_features, &self.train_tokens);
        let train_items: Vec<Correspondence> = self
            .train_pairs
            .iter()
            .zip(&self.train_labels)
            .zip(train_scores)
            .map(|((&(ra, rb), &y), score)| Correspondence {
                a_row: ra,
                b_row: rb,
                score,
                truth: y == 1.0,
                left: self.enc_a[ra],
                right: self.enc_b[rb],
            })
            .collect();
        let train_workload = Workload::new(train_items, self.matching_threshold);
        Ok(crate::threshold::calibrate_per_group(
            &train_workload,
            &self.workload(matcher)?,
            groups,
        ))
    }

    /// The session's configured calibration policy (from
    /// [`SuiteBuilder::calibration`]), if any.
    pub fn calibration(&self) -> Option<CalibrationSpec> {
        self.calibration
    }

    /// Fit a [`GroupCalibrator`] for one matcher under `spec`: per-group
    /// fits on the *validation* split (falling back to the training
    /// split when the validation split is empty — small runs with
    /// `valid_frac: 0.0` still calibrate, just on held-in data), with
    /// groups below the spec's support floor routed to the global fit.
    /// Fitting fans out over the session's worker pool (bit-for-bit
    /// identical for every [`Parallelism`] policy) and observes the
    /// session's cancellation token. Unknown names are a
    /// [`SuiteError::UnknownMatcher`].
    pub fn group_calibrator(
        &self,
        matcher: &str,
        spec: CalibrationSpec,
        groups: &[GroupId],
    ) -> SuiteResult<GroupCalibrator> {
        let m = self
            .registry
            .iter()
            .find(|m| m.name() == matcher)
            .ok_or_else(|| self.unknown_matcher(matcher))?;
        let (pairs, labels, mut scores) = if self.valid_labels.is_empty() {
            (
                &self.train_pairs,
                &self.train_labels,
                m.score_batch(&self.train_features, &self.train_tokens),
            )
        } else {
            (
                &self.valid_pairs,
                &self.valid_labels,
                m.score_batch(&self.valid_features, &self.valid_tokens),
            )
        };
        // Same boundary contract as test-time scoring.
        sanitize_scores(&mut scores);
        let items: Vec<Correspondence> = pairs
            .iter()
            .zip(labels.iter())
            .zip(scores)
            .map(|((&(ra, rb), &y), score)| Correspondence {
                a_row: ra,
                b_row: rb,
                score,
                truth: y == 1.0,
                left: self.enc_a[ra],
                right: self.enc_b[rb],
            })
            .collect();
        let fit_workload = Workload::new(items, self.matching_threshold);
        let pool = WorkerPool::with_parallelism(self.parallelism).observe(self.observe.clone());
        calibrate::fit_on_workload(spec, &fit_workload, groups, &pool, &self.cancel)
            .map_err(|i| timed_out(Stage::Audit, i))
    }

    /// Evaluation workload with per-group calibrated scores: fit via
    /// [`Session::group_calibrator`], then remap the matcher's test
    /// scores. Unknown names are a [`SuiteError::UnknownMatcher`].
    pub fn calibrated_workload_with(
        &self,
        matcher: &str,
        spec: CalibrationSpec,
        groups: &[GroupId],
    ) -> SuiteResult<Workload> {
        let cal = self.group_calibrator(matcher, spec, groups)?;
        Ok(calibrate::apply_calibrator(
            &cal,
            &self.workload(matcher)?,
            groups,
        ))
    }

    /// The threshold-independent `CalibratedAudit` section for one
    /// matcher: KS / 1-Wasserstein score-distribution distances per
    /// group and the trapezoid-swept fairness area per measure, for the
    /// raw scores — and, when the session has a calibration policy
    /// ([`SuiteBuilder::calibration`]), the same audit after per-group
    /// calibration, side by side. Runs under a `calib` root span with
    /// `calib.*` counters when observability is on.
    pub fn calibrated_audit(
        &self,
        matcher: &str,
        measures: &[FairnessMeasure],
        disparity: Disparity,
        grid: &[f64],
        groups: &[GroupId],
    ) -> SuiteResult<CalibratedAudit> {
        self.cancel
            .checkpoint()
            .map_err(|i| timed_out(Stage::Audit, i))?;
        let span = self.observe.span("calib");
        let w = self.workload(matcher)?;
        let baseline =
            calibrate::distribution_audit(&w, &self.space, groups, measures, disparity, grid);
        let mut report = CalibratedAudit {
            matcher: matcher.to_owned(),
            calibration: None,
            groups_fitted: 0,
            fallbacks: 0,
            baseline,
            calibrated: None,
        };
        if let Some(spec) = self.calibration {
            let cal = match self.group_calibrator(matcher, spec, groups) {
                Ok(cal) => cal,
                Err(e) => {
                    span.set_status(SpanStatus::Cut);
                    drop(span);
                    return Err(e);
                }
            };
            let cw = calibrate::apply_calibrator(&cal, &w, groups);
            report.calibration = Some(spec.label());
            report.groups_fitted = cal.groups_fitted();
            report.fallbacks = cal.fallbacks();
            report.calibrated = Some(calibrate::distribution_audit(
                &cw,
                &self.space,
                groups,
                measures,
                disparity,
                grid,
            ));
        }
        drop(span);
        Ok(report)
    }

    /// Step 4 with calibrator choice as an extra knob: each surviving
    /// matcher contributes its raw workload plus one per-group-calibrated
    /// variant per spec (named `{matcher}+{spec label}`), and the Pareto
    /// explorer enumerates over all of them — calibrator choice sits in
    /// the assignment space right next to matcher choice.
    pub fn ensemble_with_calibrators(
        &self,
        attr_index: usize,
        measure: FairnessMeasure,
        disparity: Disparity,
        specs: &[CalibrationSpec],
    ) -> SuiteResult<EnsembleExplorer> {
        let groups: Vec<GroupId> = self.space.level1_of_attr(attr_index);
        let mut workloads: Vec<(String, Workload)> = Vec::new();
        for n in self.matcher_names() {
            // `matcher_names` only lists matchers with cached scores.
            let Some(scores) = self.scores.get(n) else {
                continue;
            };
            let raw = self.workload_from_scores(scores.clone());
            for spec in specs {
                let cal = self.group_calibrator(n, *spec, &groups)?;
                workloads.push((
                    format!("{n}+{}", spec.label()),
                    calibrate::apply_calibrator(&cal, &raw, &groups),
                ));
            }
            workloads.push((n.to_owned(), raw));
        }
        let refs: Vec<(String, &Workload)> =
            workloads.iter().map(|(n, w)| (n.clone(), w)).collect();
        Ok(
            EnsembleExplorer::build(&refs, &self.space, &groups, measure, disparity)
                .with_parallelism(self.parallelism)
                .with_cancel(self.cancel.clone())
                .with_observe(self.observe.clone()),
        )
    }

    /// Matching-quality summary of a matcher on the test split
    /// (F1 / precision / recall / accuracy at the session threshold) —
    /// the demo's matcher-selection card. Unknown names are a
    /// [`SuiteError::UnknownMatcher`].
    pub fn performance(&self, matcher: &str) -> SuiteResult<MatcherPerformance> {
        let w = self.workload(matcher)?;
        let cm = w.overall_confusion();
        Ok(MatcherPerformance {
            matcher: matcher.to_owned(),
            f1: cm.f1(),
            precision: cm.ppv(),
            recall: cm.tpr(),
            accuracy: cm.accuracy(),
        })
    }
}

/// Test-split matching quality of one matcher.
#[derive(Debug, Clone)]
pub struct MatcherPerformance {
    /// Matcher name.
    pub matcher: String,
    /// F1 at the session threshold.
    pub f1: f64,
    /// Precision (PPV).
    pub precision: f64,
    /// Recall (TPR).
    pub recall: f64,
    /// Accuracy.
    pub accuracy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditConfig;
    use fairem_csvio::parse_csv_str;

    /// A tiny but learnable two-group dataset: duplicated people with
    /// noisy B-side copies plus distractors.
    fn dataset() -> (CsvTable, CsvTable, Vec<(String, String)>) {
        let mut a = String::from("id,name,university,country\n");
        let mut b = String::from("id,name,university,country\n");
        let mut matches = Vec::new();
        let people = [
            ("li wei", "wei li", "cn"),
            ("zhang min", "min zhang", "cn"),
            ("wang jun", "wang jun", "cn"),
            ("liu yan", "liu yan", "cn"),
            ("john smith", "jon smith", "us"),
            ("mary jones", "mary jones", "us"),
            ("david brown", "david brown", "us"),
            ("susan miller", "susan miler", "us"),
        ];
        for (i, (name_a, name_b, g)) in people.iter().enumerate() {
            a.push_str(&format!("a{i},{name_a},state university,{g}\n"));
            b.push_str(&format!("b{i},{name_b},state univ,{g}\n"));
            matches.push((format!("a{i}"), format!("b{i}")));
        }
        // Distractors sharing tokens.
        let extras = [
            ("li min", "cn"),
            ("zhang wei", "cn"),
            ("james smith", "us"),
            ("mary brown", "us"),
        ];
        for (i, (name, g)) in extras.iter().enumerate() {
            b.push_str(&format!("bx{i},{name},state university,{g}\n"));
        }
        (
            parse_csv_str(&a).unwrap(),
            parse_csv_str(&b).unwrap(),
            matches,
        )
    }

    fn config() -> SuiteConfig {
        SuiteConfig {
            prep: PrepConfig {
                train_frac: 0.5,
                valid_frac: 0.0,
                negative_ratio: f64::INFINITY,
                ..PrepConfig::default()
            },
            ..SuiteConfig::fast()
        }
    }

    fn session() -> Session {
        let (a, b, m) = dataset();
        FairEm360::builder()
            .tables(a, b)
            .ground_truth(m)
            .sensitive([SensitiveAttr::categorical("country")])
            .config(config())
            .build()
            .unwrap()
            .try_run(&[MatcherKind::DtMatcher, MatcherKind::LinRegMatcher])
            .unwrap()
    }

    #[test]
    fn builder_selects_the_blocking_scheme() {
        use crate::blocking::SortedNeighborhood;
        let (a, b, m) = dataset();
        let s = FairEm360::builder()
            .tables(a, b)
            .ground_truth(m)
            .sensitive([SensitiveAttr::categorical("country")])
            .config(config())
            .blocker(SortedNeighborhood {
                key_column: "name".into(),
                window: 4,
            })
            .build()
            .unwrap()
            .try_run(&[MatcherKind::DtMatcher])
            .unwrap();
        assert_eq!(s.matcher_names(), vec!["DTMatcher"]);
        assert!(s.test_size() > 0);
    }

    #[test]
    fn end_to_end_flow_produces_auditable_workloads() {
        let s = session();
        assert_eq!(s.matcher_names(), vec!["DTMatcher", "LinRegMatcher"]);
        assert!(s.test_size() > 0);
        let w = s.workload("DTMatcher").unwrap();
        assert_eq!(w.len(), s.test_size());
        let auditor = Auditor::new(AuditConfig {
            min_support: 1,
            ..AuditConfig::default()
        });
        let report = s.audit("DTMatcher", &auditor).unwrap();
        assert!(!report.entries.is_empty());
        let all = s.audit_all(&auditor);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn external_workload_maps_ids() {
        let s = session();
        // Score every test pair 1.0 via the external path.
        let preds: Vec<((String, String), f64)> = s
            .test_pairs
            .iter()
            .map(|&(ra, rb)| {
                (
                    (s.table_a.id(ra).to_owned(), s.table_b.id(rb).to_owned()),
                    1.0,
                )
            })
            .collect();
        let ext = ExternalScores::new("Mine", preds);
        let w = s.external_workload(&ext);
        let cm = w.overall_confusion();
        assert_eq!(cm.fn_ + cm.tn, 0.0); // everything predicted match
    }

    #[test]
    fn performance_summary_is_finite_for_trained_matcher() {
        let s = session();
        let p = s.performance("DTMatcher").unwrap();
        assert!(p.accuracy.is_finite());
        assert_eq!(p.matcher, "DTMatcher");
    }

    #[test]
    fn ensemble_explorer_builds_from_session() {
        let s = session();
        let e = s.ensemble(0, FairnessMeasure::AccuracyParity, Disparity::Subtraction);
        assert_eq!(e.groups().len(), 2);
        assert_eq!(e.matchers().len(), 2);
        let f = e.pareto_frontier();
        assert!(!f.is_empty());
    }

    #[test]
    fn tune_threshold_returns_grid_point_or_default() {
        let (a, b, m) = dataset();
        // With a validation split.
        let s = FairEm360::builder()
            .tables(a.clone(), b.clone())
            .ground_truth(m.clone())
            .sensitive([SensitiveAttr::categorical("country")])
            .config(SuiteConfig {
                prep: PrepConfig {
                    train_frac: 0.5,
                    valid_frac: 0.2,
                    negative_ratio: f64::INFINITY,
                    ..PrepConfig::default()
                },
                ..SuiteConfig::fast()
            })
            .build()
            .unwrap()
            .try_run(&[MatcherKind::DtMatcher])
            .unwrap();
        let t = s.tune_threshold("DTMatcher").unwrap();
        assert!((0.0..=1.0).contains(&t));
        // Without one: falls back to the session default.
        let s = FairEm360::builder()
            .tables(a, b)
            .ground_truth(m)
            .sensitive([SensitiveAttr::categorical("country")])
            .config(config())
            .build()
            .unwrap()
            .try_run(&[MatcherKind::DtMatcher])
            .unwrap();
        assert_eq!(s.tune_threshold("DTMatcher").unwrap(), s.matching_threshold);
    }

    #[test]
    fn explainer_runs_on_session_workload() {
        let s = session();
        let w = s.workload("LinRegMatcher").unwrap();
        let ex = s.explainer(&w, Disparity::Subtraction);
        let rep = ex.representation("cn");
        assert!(rep.share_overall > 0.0);
        assert!(rep.train_shares.is_some());
    }

    #[test]
    fn unknown_matcher_is_a_checked_error() {
        let s = session();
        for outcome in [
            s.workload("MCAN").map(|_| ()),
            s.tune_threshold("MCAN").map(|_| ()),
            s.performance("MCAN").map(|_| ()),
            s.calibrated_workload("MCAN", &[]).map(|_| ()),
        ] {
            match outcome {
                Err(SuiteError::UnknownMatcher { matcher, known }) => {
                    assert_eq!(matcher, "MCAN");
                    assert_eq!(known, vec!["DTMatcher", "LinRegMatcher"]);
                }
                other => panic!("expected UnknownMatcher, got {other:?}"),
            }
        }
    }

    #[test]
    fn builder_without_tables_is_a_config_error() {
        let err = FairEm360::builder().build().expect_err("must fail");
        assert!(matches!(err, SuiteError::Config { .. }), "{err}");
        assert!(err.to_string().contains(".tables("), "{err}");
    }

    #[test]
    fn builder_strict_mode_surfaces_schema_errors() {
        let bad = parse_csv_str("id,name\na0,x\na0,y\n").unwrap();
        let good = parse_csv_str("id,name\nb0,z\n").unwrap();
        let err = FairEm360::builder()
            .tables(bad.clone(), good.clone())
            .strict()
            .build()
            .expect_err("duplicate id must fail strict import");
        assert!(matches!(err, SuiteError::Schema { .. }), "{err}");
        // Lenient default quarantines instead.
        let suite = FairEm360::builder().tables(bad, good).build().unwrap();
        assert_eq!(suite.quarantine().len(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_import_and_run_still_work() {
        let (a, b, m) = dataset();
        let s = FairEm360::import(a, b, m, vec![SensitiveAttr::categorical("country")])
            .unwrap()
            .with_config(config())
            .run(&[MatcherKind::DtMatcher]);
        assert_eq!(s.matcher_names(), vec!["DTMatcher"]);
    }

    #[test]
    fn sessions_agree_across_parallelism_policies() {
        let run = |p: Parallelism| {
            let (a, b, m) = dataset();
            FairEm360::builder()
                .tables(a, b)
                .ground_truth(m)
                .sensitive([SensitiveAttr::categorical("country")])
                .config(config())
                .parallelism(p)
                .build()
                .unwrap()
                .try_run(&[MatcherKind::DtMatcher, MatcherKind::LinRegMatcher])
                .unwrap()
        };
        let base = run(Parallelism::Off);
        let wide = run(Parallelism::Fixed(4));
        for name in base.matcher_names() {
            let (wb, ww) = (base.workload(name).unwrap(), wide.workload(name).unwrap());
            assert_eq!(wb.len(), ww.len());
            for (x, y) in wb.items.iter().zip(&ww.items) {
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{name}");
            }
        }
    }
}
