//! The end-to-end suite: import → matcher selection → fairness
//! evaluation → ensemble-based resolution (the demo's four steps, §3).

use std::collections::HashMap;

use fairem_csvio::CsvTable;
use fairem_ml::Matrix;
use fairem_neural::{HashVocab, TokenPair};

use crate::audit::{AuditReport, Auditor};
use crate::ensemble::EnsembleExplorer;
use crate::error::{Stage, SuiteError, SuiteResult};
use crate::explain::Explainer;
use crate::fairness::{Disparity, FairnessMeasure};
use crate::fault::{self, FaultPlan, FaultSite};
use crate::features::FeatureGenerator;
use crate::matcher::{
    sanitize_scores, ExternalScores, Matcher, MatcherFailure, MatcherKind, MatcherRegistry,
    MatcherTrainConfig, TrainInput,
};
use crate::prep::{prepare_checked, PrepConfig, PreparedData};
use crate::quarantine::QuarantineReport;
use crate::schema::{SchemaError, Table};
use crate::sensitive::{GroupId, GroupSpace, GroupVector, SensitiveAttr};
use crate::workload::{Correspondence, Workload};

/// Suite-wide configuration.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Candidate pairing / splitting configuration.
    pub prep: PrepConfig,
    /// Matcher training hyperparameters.
    pub train: MatcherTrainConfig,
    /// Score cut-off above which a pair is predicted a match.
    pub matching_threshold: f64,
    /// Hashing-vocabulary size for the neural matchers.
    pub vocab_size: u32,
    /// Fault-injection plan (empty by default; used by robustness tests
    /// and chaos drills to rehearse degraded-mode execution).
    pub fault: FaultPlan,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            prep: PrepConfig::default(),
            train: MatcherTrainConfig::default(),
            matching_threshold: 0.5,
            vocab_size: 512,
            fault: FaultPlan::default(),
        }
    }
}

impl SuiteConfig {
    /// A reduced configuration for fast tests.
    pub fn fast() -> SuiteConfig {
        SuiteConfig {
            train: MatcherTrainConfig::fast(),
            vocab_size: 128,
            ..SuiteConfig::default()
        }
    }
}

/// Step 1 (data import): a dataset loaded into the suite, ready to run.
#[derive(Debug)]
pub struct FairEm360 {
    table_a: Table,
    table_b: Table,
    matches: Vec<(String, String)>,
    sensitive: Vec<SensitiveAttr>,
    config: SuiteConfig,
    quarantine: QuarantineReport,
}

impl FairEm360 {
    /// Import a Magellan-shaped dataset: two tables, ground-truth match
    /// id pairs, and the sensitive attributes to audit on. Strict: any
    /// schema violation is an error. Use [`FairEm360::import_with`] for
    /// the quarantining (fault-tolerant) path.
    pub fn import(
        table_a: CsvTable,
        table_b: CsvTable,
        matches: Vec<(String, String)>,
        sensitive: Vec<SensitiveAttr>,
    ) -> Result<FairEm360, SchemaError> {
        Ok(FairEm360 {
            table_a: Table::from_csv(table_a)?,
            table_b: Table::from_csv(table_b)?,
            matches,
            sensitive,
            config: SuiteConfig::default(),
            quarantine: QuarantineReport::default(),
        })
    }

    /// Fault-tolerant import: rows with empty or duplicate ids are
    /// quarantined (first occurrence kept) instead of failing the whole
    /// dataset, and the returned [`QuarantineReport`] itemizes every
    /// rejection. A missing `id` column is still a hard error. When the
    /// config arms an import-site fault, rows are corrupted *before*
    /// hygiene runs, so injected damage flows through the same
    /// quarantine machinery as real damage.
    pub fn import_with(
        table_a: CsvTable,
        table_b: CsvTable,
        matches: Vec<(String, String)>,
        sensitive: Vec<SensitiveAttr>,
        config: SuiteConfig,
    ) -> SuiteResult<(FairEm360, QuarantineReport)> {
        let mut table_a = table_a;
        let mut table_b = table_b;
        if config.fault.corrupts_import() {
            for t in [&mut table_a, &mut table_b] {
                if let Some(id_col) = t.column_index("id") {
                    config.fault.corrupt_rows(&mut t.rows, id_col);
                }
            }
        }
        let mut quarantine = QuarantineReport::default();
        let (table_a, qa) =
            Table::from_csv_lenient(table_a, "tableA").map_err(|source| SuiteError::Schema {
                table: "tableA".into(),
                source,
            })?;
        let (table_b, qb) =
            Table::from_csv_lenient(table_b, "tableB").map_err(|source| SuiteError::Schema {
                table: "tableB".into(),
                source,
            })?;
        quarantine.extend(qa);
        quarantine.extend(qb);
        Ok((
            FairEm360 {
                table_a,
                table_b,
                matches,
                sensitive,
                config,
                quarantine: quarantine.clone(),
            },
            quarantine,
        ))
    }

    /// Replace the configuration.
    pub fn with_config(mut self, config: SuiteConfig) -> FairEm360 {
        self.config = config;
        self
    }

    /// Step 2 (matcher selection) + training: run the Matching-and-
    /// Evaluation flow with the given integrated matchers, producing a
    /// [`Session`] holding trained matchers and the scored test split.
    ///
    /// # Panics
    /// On any stage or matcher failure. Use [`FairEm360::try_run`] for
    /// degraded-mode execution.
    pub fn run(self, kinds: &[MatcherKind]) -> Session {
        match self.try_run(kinds) {
            Ok(session) => {
                if let Some(f) = session.failures().first() {
                    panic!("matcher failed: {f}");
                }
                session
            }
            Err(e) => panic!("suite execution failed: {e}"),
        }
    }

    /// Fault-tolerant run: stage panics become [`SuiteError::Stage`],
    /// per-matcher train/score panics degrade the session instead of
    /// aborting it (the survivors are still audited), and every matcher
    /// score passes a non-finite/out-of-range clamp before thresholding.
    /// Only when *no* matcher survives does the run fail, with
    /// [`SuiteError::AllMatchersFailed`] carrying the post-mortem.
    pub fn try_run(self, kinds: &[MatcherKind]) -> SuiteResult<Session> {
        let FairEm360 {
            table_a,
            table_b,
            matches,
            sensitive,
            config,
            mut quarantine,
        } = self;
        let plan = config.fault.clone();

        let space = fault::guard(|| GroupSpace::extract(&[&table_a, &table_b], sensitive))
            .map_err(|detail| SuiteError::Stage {
                stage: Stage::Prep,
                detail,
            })?;
        let enc_a = space.encode_table(&table_a);
        let enc_b = space.encode_table(&table_b);

        let (prepared, prep_quarantine) =
            fault::guard(|| prepare_checked(&table_a, &table_b, &matches, &config.prep)).map_err(
                |detail| SuiteError::Stage {
                    stage: Stage::Blocking,
                    detail,
                },
            )??;
        quarantine.extend(prep_quarantine);

        let exclude: Vec<&str> = space.attrs().iter().map(|a| a.column.as_str()).collect();
        let features = fault::guard(|| {
            plan.trip(FaultSite::FeatureGen, None);
            FeatureGenerator::build(&table_a, &table_b, &exclude)
        })
        .map_err(|detail| SuiteError::Stage {
            stage: Stage::FeatureGen,
            detail,
        })?;
        let vocab = HashVocab::new(config.vocab_size);

        let (train_pairs, train_labels) = prepared.split(&prepared.train_idx);
        let train_features = features.matrix(&table_a, &table_b, &train_pairs);
        let train_tokens = features.tokenize_all(&table_a, &table_b, &train_pairs, &vocab);
        let input = TrainInput {
            features: &train_features,
            tokens: &train_tokens,
            labels: &train_labels,
        };
        let (registry, mut failures) =
            MatcherRegistry::train_isolated(kinds, &input, &config.train, &plan);
        let train_config = config.train;

        let (valid_pairs, valid_labels) = prepared.split(&prepared.valid_idx);
        let valid_features = features.matrix(&table_a, &table_b, &valid_pairs);
        let valid_tokens = features.tokenize_all(&table_a, &table_b, &valid_pairs, &vocab);

        let (test_pairs, test_labels) = prepared.split(&prepared.test_idx);
        let test_features = features.matrix(&table_a, &table_b, &test_pairs);
        let test_tokens = features.tokenize_all(&table_a, &table_b, &test_pairs, &vocab);
        let mut scores = HashMap::new();
        let mut clamped_scores = 0usize;
        for m in registry.iter() {
            let kind = m.kind();
            match fault::guard(|| {
                plan.trip(FaultSite::Score, Some(kind));
                m.score_batch(&test_features, &test_tokens)
            }) {
                Ok(mut s) => {
                    if plan.poisons(kind) {
                        plan.corrupt_scores(kind, &mut s);
                    }
                    clamped_scores += sanitize_scores(&mut s);
                    scores.insert(m.name().to_owned(), s);
                }
                Err(reason) => failures.push(MatcherFailure {
                    matcher: m.name().to_owned(),
                    stage: Stage::Score,
                    reason,
                }),
            }
        }
        if scores.is_empty() && !kinds.is_empty() {
            return Err(SuiteError::AllMatchersFailed { failures });
        }

        // Pseudo-workload over the training split (scores = truth) for
        // train-side representation explanations.
        let train_workload = Workload::new(
            train_pairs
                .iter()
                .zip(&train_labels)
                .map(|(&(ra, rb), &y)| Correspondence {
                    a_row: ra,
                    b_row: rb,
                    score: y,
                    truth: y == 1.0,
                    left: enc_a[ra],
                    right: enc_b[rb],
                })
                .collect(),
            0.5,
        );

        Ok(Session {
            table_a,
            table_b,
            space,
            prepared,
            features,
            registry,
            matching_threshold: config.matching_threshold,
            enc_a,
            enc_b,
            test_pairs,
            test_labels,
            test_features,
            test_tokens,
            scores,
            train_workload,
            train_pairs,
            train_labels,
            train_features,
            train_tokens,
            train_config,
            valid_labels,
            valid_features,
            valid_tokens,
            failures,
            quarantine,
            clamped_scores,
        })
    }
}

/// A trained, scored session — the state behind demo Steps 3 and 4.
#[derive(Debug)]
pub struct Session {
    /// Left table.
    pub table_a: Table,
    /// Right table.
    pub table_b: Table,
    /// The extracted group space.
    pub space: GroupSpace,
    /// Pairing and splits.
    pub prepared: PreparedData,
    /// The fitted feature generator.
    pub features: FeatureGenerator,
    /// The trained matcher fleet.
    pub registry: MatcherRegistry,
    /// Matching threshold for workloads.
    pub matching_threshold: f64,
    enc_a: Vec<GroupVector>,
    enc_b: Vec<GroupVector>,
    test_pairs: Vec<(usize, usize)>,
    test_labels: Vec<f64>,
    test_features: Matrix,
    test_tokens: Vec<TokenPair>,
    scores: HashMap<String, Vec<f64>>,
    train_workload: Workload,
    train_pairs: Vec<(usize, usize)>,
    train_labels: Vec<f64>,
    train_features: Matrix,
    train_tokens: Vec<TokenPair>,
    train_config: MatcherTrainConfig,
    valid_labels: Vec<f64>,
    valid_features: Matrix,
    valid_tokens: Vec<TokenPair>,
    failures: Vec<MatcherFailure>,
    quarantine: QuarantineReport,
    clamped_scores: usize,
}

impl Session {
    /// Names of the matchers with cached test scores — i.e. the
    /// survivors. Matchers that failed at train or score time are
    /// excluded, so audits, ensembles, and Pareto exploration run over
    /// this degraded fleet transparently.
    pub fn matcher_names(&self) -> Vec<&str> {
        self.registry
            .iter()
            .map(|m| m.name())
            .filter(|n| self.scores.contains_key(*n))
            .collect()
    }

    /// Per-matcher casualties (train- or score-stage), empty on a clean
    /// run.
    pub fn failures(&self) -> &[MatcherFailure] {
        &self.failures
    }

    /// Rows quarantined during import and prep.
    pub fn quarantine(&self) -> &QuarantineReport {
        &self.quarantine
    }

    /// Number of matcher scores repaired by the non-finite/range clamp.
    pub fn clamped_scores(&self) -> usize {
        self.clamped_scores
    }

    /// True when at least one requested matcher failed (the session
    /// completed over a reduced fleet).
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Fleet coverage as `(survivors, requested)`.
    pub fn coverage(&self) -> (usize, usize) {
        let survivors = self.matcher_names().len();
        (survivors, survivors + self.failures.len())
    }

    /// Number of test correspondences.
    pub fn test_size(&self) -> usize {
        self.test_pairs.len()
    }

    /// The training-split pseudo-workload (for representation analysis).
    pub fn train_workload(&self) -> &Workload {
        &self.train_workload
    }

    /// Build the evaluation workload for a trained matcher.
    ///
    /// # Panics
    /// If the matcher was not part of this session.
    pub fn workload(&self, matcher: &str) -> Workload {
        let scores = self
            .scores
            .get(matcher)
            .unwrap_or_else(|| panic!("matcher {matcher:?} not in session"));
        self.workload_from_scores(scores.clone())
    }

    /// Build a workload from raw scores aligned with the test pairs
    /// (used for ensemble strategies and custom score vectors).
    pub fn workload_from_scores(&self, scores: Vec<f64>) -> Workload {
        assert_eq!(scores.len(), self.test_pairs.len(), "score/test alignment");
        let items = self
            .test_pairs
            .iter()
            .zip(&self.test_labels)
            .zip(scores)
            .map(|((&(ra, rb), &y), score)| Correspondence {
                a_row: ra,
                b_row: rb,
                score,
                truth: y == 1.0,
                left: self.enc_a[ra],
                right: self.enc_b[rb],
            })
            .collect();
        Workload::new(items, self.matching_threshold)
    }

    /// Score the session's test split with any [`Matcher`] (e.g. one
    /// trained outside the session or an ensemble adapter) and return
    /// the aligned score vector.
    pub fn score_test_with(&self, matcher: &dyn Matcher) -> Vec<f64> {
        matcher.score_batch(&self.test_features, &self.test_tokens)
    }

    /// Build a workload for uploaded external scores (the
    /// Evaluation-Only flow): pairs the user never scored default to 0.
    pub fn external_workload(&self, ext: &ExternalScores) -> Workload {
        let scores = self
            .test_pairs
            .iter()
            .map(|&(ra, rb)| ext.score_ids(self.table_a.id(ra), self.table_b.id(rb)))
            .collect();
        self.workload_from_scores(scores)
    }

    /// Step 3: audit one matcher. When the session is degraded, the
    /// report carries the failed matchers so readers see the reduced
    /// coverage alongside the verdicts.
    pub fn audit(&self, matcher: &str, auditor: &Auditor) -> AuditReport {
        let mut report = auditor.audit(matcher, &self.workload(matcher), &self.space);
        report.degraded = self.failures.clone();
        report
    }

    /// Audit every surviving matcher.
    pub fn audit_all(&self, auditor: &Auditor) -> Vec<AuditReport> {
        self.matcher_names()
            .iter()
            .map(|name| self.audit(name, auditor))
            .collect()
    }

    /// Build an explainer over a matcher's workload (the workload must
    /// outlive the explainer, so the caller holds it).
    pub fn explainer<'s>(&'s self, workload: &'s Workload, disparity: Disparity) -> Explainer<'s> {
        Explainer::new(
            workload,
            &self.space,
            &self.table_a,
            &self.table_b,
            Some(&self.train_workload),
            disparity,
        )
    }

    /// Step 4: build the ensemble explorer over the level-1 groups of a
    /// sensitive attribute, scoring assignments under `measure`.
    pub fn ensemble(
        &self,
        attr_index: usize,
        measure: FairnessMeasure,
        disparity: Disparity,
    ) -> EnsembleExplorer {
        let groups: Vec<GroupId> = self.space.level1_of_attr(attr_index);
        let workloads: Vec<(String, Workload)> = self
            .matcher_names()
            .iter()
            .map(|n| ((*n).to_owned(), self.workload(n)))
            .collect();
        let refs: Vec<(String, &Workload)> =
            workloads.iter().map(|(n, w)| (n.clone(), w)).collect();
        EnsembleExplorer::build(&refs, &self.space, &groups, measure, disparity)
    }

    /// Tune a matcher's matching threshold on the *validation* split:
    /// returns the grid threshold maximizing validation F1, falling back
    /// to the session default when the validation split is empty or F1
    /// is undefined everywhere. This is the data-driven answer to the
    /// demo's Step-3 "specify the matching threshold" knob.
    pub fn tune_threshold(&self, matcher: &str) -> f64 {
        if self.valid_labels.is_empty() {
            return self.matching_threshold;
        }
        let m = self
            .registry
            .iter()
            .find(|m| m.name() == matcher)
            .unwrap_or_else(|| panic!("matcher {matcher:?} not in session"));
        let scores = m.score_batch(&self.valid_features, &self.valid_tokens);
        let truths: Vec<bool> = self.valid_labels.iter().map(|&y| y == 1.0).collect();
        let mut best: Option<(f64, f64)> = None; // (f1, threshold)
        for i in 1..100 {
            let t = i as f64 / 100.0;
            let preds: Vec<bool> = scores.iter().map(|&s| s >= t).collect();
            let f1 = fairem_ml::f1_score(&preds, &truths);
            if f1.is_finite() && best.is_none_or(|(bf, _)| f1 > bf) {
                best = Some((f1, t));
            }
        }
        best.map_or(self.matching_threshold, |(_, t)| t)
    }

    /// Data-repair resolution (refs \[12\]/\[16\] style): retrain a matcher
    /// with the target group's training pairs oversampled, and return
    /// the repaired evaluation workload. `positives_only` replicates
    /// only the group's matching pairs (the recall lever).
    pub fn retrain_with_oversampling(
        &self,
        kind: MatcherKind,
        group: crate::sensitive::GroupId,
        factor: usize,
        positives_only: bool,
    ) -> Workload {
        let left: Vec<crate::sensitive::GroupVector> = self
            .train_pairs
            .iter()
            .map(|&(ra, _)| self.enc_a[ra])
            .collect();
        let right: Vec<crate::sensitive::GroupVector> = self
            .train_pairs
            .iter()
            .map(|&(_, rb)| self.enc_b[rb])
            .collect();
        let idx = crate::repair::oversample_group(
            &self.train_labels,
            &left,
            &right,
            group,
            factor,
            positives_only,
        );
        let features = self.train_features.select_rows(&idx);
        let tokens: Vec<TokenPair> = idx.iter().map(|&i| self.train_tokens[i].clone()).collect();
        let labels: Vec<f64> = idx.iter().map(|&i| self.train_labels[i]).collect();
        let input = TrainInput {
            features: &features,
            tokens: &tokens,
            labels: &labels,
        };
        let matcher = kind.train(&input, &self.train_config);
        let scores = matcher.score_batch(&self.test_features, &self.test_tokens);
        self.workload_from_scores(scores)
    }

    /// Calibration-based resolution (ref \[10\] style): per-group Platt
    /// calibration of a matcher's scores fitted on the training split,
    /// applied to the evaluation workload.
    pub fn calibrated_workload(
        &self,
        matcher: &str,
        groups: &[crate::sensitive::GroupId],
    ) -> Workload {
        // Score the *training* pairs with the trained matcher to fit the
        // calibrators on held-in data.
        let m = self
            .registry
            .iter()
            .find(|m| m.name() == matcher)
            .unwrap_or_else(|| panic!("matcher {matcher:?} not in session"));
        let train_scores = m.score_batch(&self.train_features, &self.train_tokens);
        let train_items: Vec<Correspondence> = self
            .train_pairs
            .iter()
            .zip(&self.train_labels)
            .zip(train_scores)
            .map(|((&(ra, rb), &y), score)| Correspondence {
                a_row: ra,
                b_row: rb,
                score,
                truth: y == 1.0,
                left: self.enc_a[ra],
                right: self.enc_b[rb],
            })
            .collect();
        let train_workload = Workload::new(train_items, self.matching_threshold);
        crate::threshold::calibrate_per_group(&train_workload, &self.workload(matcher), groups)
    }

    /// Matching-quality summary of a matcher on the test split
    /// (F1 / precision / recall / accuracy at the session threshold) —
    /// the demo's matcher-selection card.
    pub fn performance(&self, matcher: &str) -> MatcherPerformance {
        let w = self.workload(matcher);
        let cm = w.overall_confusion();
        MatcherPerformance {
            matcher: matcher.to_owned(),
            f1: cm.f1(),
            precision: cm.ppv(),
            recall: cm.tpr(),
            accuracy: cm.accuracy(),
        }
    }
}

/// Test-split matching quality of one matcher.
#[derive(Debug, Clone)]
pub struct MatcherPerformance {
    /// Matcher name.
    pub matcher: String,
    /// F1 at the session threshold.
    pub f1: f64,
    /// Precision (PPV).
    pub precision: f64,
    /// Recall (TPR).
    pub recall: f64,
    /// Accuracy.
    pub accuracy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditConfig;
    use fairem_csvio::parse_csv_str;

    /// A tiny but learnable two-group dataset: duplicated people with
    /// noisy B-side copies plus distractors.
    fn dataset() -> (CsvTable, CsvTable, Vec<(String, String)>) {
        let mut a = String::from("id,name,university,country\n");
        let mut b = String::from("id,name,university,country\n");
        let mut matches = Vec::new();
        let people = [
            ("li wei", "wei li", "cn"),
            ("zhang min", "min zhang", "cn"),
            ("wang jun", "wang jun", "cn"),
            ("liu yan", "liu yan", "cn"),
            ("john smith", "jon smith", "us"),
            ("mary jones", "mary jones", "us"),
            ("david brown", "david brown", "us"),
            ("susan miller", "susan miler", "us"),
        ];
        for (i, (name_a, name_b, g)) in people.iter().enumerate() {
            a.push_str(&format!("a{i},{name_a},state university,{g}\n"));
            b.push_str(&format!("b{i},{name_b},state univ,{g}\n"));
            matches.push((format!("a{i}"), format!("b{i}")));
        }
        // Distractors sharing tokens.
        let extras = [
            ("li min", "cn"),
            ("zhang wei", "cn"),
            ("james smith", "us"),
            ("mary brown", "us"),
        ];
        for (i, (name, g)) in extras.iter().enumerate() {
            b.push_str(&format!("bx{i},{name},state university,{g}\n"));
        }
        (
            parse_csv_str(&a).unwrap(),
            parse_csv_str(&b).unwrap(),
            matches,
        )
    }

    fn session() -> Session {
        let (a, b, m) = dataset();
        let suite = FairEm360::import(a, b, m, vec![SensitiveAttr::categorical("country")])
            .unwrap()
            .with_config(SuiteConfig {
                prep: PrepConfig {
                    train_frac: 0.5,
                    valid_frac: 0.0,
                    negative_ratio: f64::INFINITY,
                    ..PrepConfig::default()
                },
                ..SuiteConfig::fast()
            });
        suite.run(&[MatcherKind::DtMatcher, MatcherKind::LinRegMatcher])
    }

    #[test]
    fn end_to_end_flow_produces_auditable_workloads() {
        let s = session();
        assert_eq!(s.matcher_names(), vec!["DTMatcher", "LinRegMatcher"]);
        assert!(s.test_size() > 0);
        let w = s.workload("DTMatcher");
        assert_eq!(w.len(), s.test_size());
        let auditor = Auditor::new(AuditConfig {
            min_support: 1,
            ..AuditConfig::default()
        });
        let report = s.audit("DTMatcher", &auditor);
        assert!(!report.entries.is_empty());
        let all = s.audit_all(&auditor);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn external_workload_maps_ids() {
        let s = session();
        // Score every test pair 1.0 via the external path.
        let preds: Vec<((String, String), f64)> = s
            .test_pairs
            .iter()
            .map(|&(ra, rb)| {
                (
                    (s.table_a.id(ra).to_owned(), s.table_b.id(rb).to_owned()),
                    1.0,
                )
            })
            .collect();
        let ext = ExternalScores::new("Mine", preds);
        let w = s.external_workload(&ext);
        let cm = w.overall_confusion();
        assert_eq!(cm.fn_ + cm.tn, 0.0); // everything predicted match
    }

    #[test]
    fn performance_summary_is_finite_for_trained_matcher() {
        let s = session();
        let p = s.performance("DTMatcher");
        assert!(p.accuracy.is_finite());
        assert_eq!(p.matcher, "DTMatcher");
    }

    #[test]
    fn ensemble_explorer_builds_from_session() {
        let s = session();
        let e = s.ensemble(0, FairnessMeasure::AccuracyParity, Disparity::Subtraction);
        assert_eq!(e.groups().len(), 2);
        assert_eq!(e.matchers().len(), 2);
        let f = e.pareto_frontier();
        assert!(!f.is_empty());
    }

    #[test]
    fn tune_threshold_returns_grid_point_or_default() {
        let (a, b, m) = dataset();
        // With a validation split.
        let s = FairEm360::import(
            a.clone(),
            b.clone(),
            m.clone(),
            vec![SensitiveAttr::categorical("country")],
        )
        .unwrap()
        .with_config(SuiteConfig {
            prep: PrepConfig {
                train_frac: 0.5,
                valid_frac: 0.2,
                negative_ratio: f64::INFINITY,
                ..PrepConfig::default()
            },
            ..SuiteConfig::fast()
        })
        .run(&[MatcherKind::DtMatcher]);
        let t = s.tune_threshold("DTMatcher");
        assert!((0.0..=1.0).contains(&t));
        // Without one: falls back to the session default.
        let s = FairEm360::import(a, b, m, vec![SensitiveAttr::categorical("country")])
            .unwrap()
            .with_config(SuiteConfig {
                prep: PrepConfig {
                    train_frac: 0.5,
                    valid_frac: 0.0,
                    negative_ratio: f64::INFINITY,
                    ..PrepConfig::default()
                },
                ..SuiteConfig::fast()
            })
            .run(&[MatcherKind::DtMatcher]);
        assert_eq!(s.tune_threshold("DTMatcher"), s.matching_threshold);
    }

    #[test]
    fn explainer_runs_on_session_workload() {
        let s = session();
        let w = s.workload("LinRegMatcher");
        let ex = s.explainer(&w, Disparity::Subtraction);
        let rep = ex.representation("cn");
        assert!(rep.share_overall > 0.0);
        assert!(rep.train_shares.is_some());
    }

    #[test]
    #[should_panic(expected = "not in session")]
    fn unknown_matcher_workload_panics() {
        let s = session();
        let _ = s.workload("MCAN");
    }
}
