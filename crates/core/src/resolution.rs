//! The human-in-the-loop resolution loop (paper §3, Step 4): the user
//! walks the fairness/performance Pareto frontier, telling the system
//! whether the proposed ensemble strategy is still too unfair or not
//! accurate enough, "until the user is satisfied".
//!
//! [`ResolutionSession`] encodes that exploratory process as a state
//! machine over the frontier: feedback tightens a constraint box
//! (max unfairness / min performance) and the session proposes the best
//! remaining non-dominated strategy.

use crate::ensemble::{EnsembleExplorer, ParetoPoint};

/// User feedback on the currently proposed strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feedback {
    /// The user accepts the proposal; the session is finished.
    Accept,
    /// The proposal's unfairness is too high — demand strictly fairer.
    TooUnfair,
    /// The proposal's performance is too low — demand strictly better.
    TooInaccurate,
}

/// Outcome of a feedback step.
#[derive(Debug, Clone, PartialEq)]
pub enum Proposal {
    /// A new strategy satisfying all constraints so far.
    Candidate(ParetoPoint),
    /// The accepted final strategy.
    Accepted(ParetoPoint),
    /// No frontier point satisfies the accumulated constraints; the
    /// user must relax one (the session keeps its previous proposal).
    Infeasible,
}

/// Interactive exploration state over a Pareto frontier.
#[derive(Debug)]
pub struct ResolutionSession {
    frontier: Vec<ParetoPoint>,
    /// Oriented performance: bigger is always better.
    oriented: Vec<f64>,
    current: usize,
    max_unfairness: f64,
    min_performance: f64,
    accepted: bool,
    history: Vec<Feedback>,
}

impl ResolutionSession {
    /// Start a session over an explorer's frontier, proposing the
    /// balanced starting point: the best-performance strategy within
    /// `initial_fairness_threshold` (or the fairest point if none).
    ///
    /// # Panics
    /// If the frontier is empty (explorers never produce one).
    pub fn start(
        explorer: &EnsembleExplorer,
        initial_fairness_threshold: f64,
    ) -> ResolutionSession {
        let frontier = explorer.pareto_frontier();
        assert!(!frontier.is_empty(), "frontier is never empty");
        let higher = explorer.measure().higher_is_better();
        let oriented: Vec<f64> = frontier
            .iter()
            .map(|p| {
                if higher {
                    p.performance
                } else {
                    -p.performance
                }
            })
            .collect();
        // Frontier is sorted by unfairness asc with performance improving;
        // the best point within the threshold is the last one under it.
        let current = frontier
            .iter()
            .enumerate()
            .filter(|(_, p)| p.unfairness <= initial_fairness_threshold)
            .map(|(i, _)| i)
            .next_back()
            .unwrap_or(0);
        ResolutionSession {
            frontier,
            oriented,
            current,
            max_unfairness: f64::INFINITY,
            min_performance: f64::NEG_INFINITY,
            accepted: false,
            history: Vec::new(),
        }
    }

    /// The currently proposed strategy.
    pub fn current(&self) -> &ParetoPoint {
        &self.frontier[self.current]
    }

    /// Has the user accepted a strategy?
    pub fn is_accepted(&self) -> bool {
        self.accepted
    }

    /// The feedback given so far, in order.
    pub fn history(&self) -> &[Feedback] {
        &self.history
    }

    /// Number of frontier points satisfying the current constraints.
    pub fn feasible_count(&self) -> usize {
        self.feasible().count()
    }

    fn feasible(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.frontier.len()).filter(move |&i| {
            self.frontier[i].unfairness <= self.max_unfairness
                && self.oriented[i] >= self.min_performance
        })
    }

    /// Apply one round of feedback and get the next proposal.
    ///
    /// # Panics
    /// If called after acceptance.
    pub fn feedback(&mut self, f: Feedback) -> Proposal {
        assert!(!self.accepted, "session already accepted a strategy");
        self.history.push(f);
        match f {
            Feedback::Accept => {
                self.accepted = true;
                Proposal::Accepted(self.current().clone())
            }
            Feedback::TooUnfair => {
                // Strictly fairer than the current proposal.
                let bound = self.frontier[self.current].unfairness;
                self.max_unfairness = self.max_unfairness.min(next_below(bound));
                // Among feasible, take the best performance.
                match self
                    .feasible()
                    .max_by(|&a, &b| self.oriented[a].total_cmp(&self.oriented[b]))
                {
                    Some(i) => {
                        self.current = i;
                        Proposal::Candidate(self.current().clone())
                    }
                    None => {
                        // Revert the constraint; stay put.
                        self.max_unfairness = f64::INFINITY;
                        Proposal::Infeasible
                    }
                }
            }
            Feedback::TooInaccurate => {
                let bound = self.oriented[self.current];
                self.min_performance = self.min_performance.max(next_above(bound));
                // Among feasible, take the lowest unfairness.
                match self.feasible().min_by(|&a, &b| {
                    self.frontier[a]
                        .unfairness
                        .total_cmp(&self.frontier[b].unfairness)
                }) {
                    Some(i) => {
                        self.current = i;
                        Proposal::Candidate(self.current().clone())
                    }
                    None => {
                        self.min_performance = f64::NEG_INFINITY;
                        Proposal::Infeasible
                    }
                }
            }
        }
    }
}

fn next_below(v: f64) -> f64 {
    v - 1e-12 - v.abs() * 1e-12
}

fn next_above(v: f64) -> f64 {
    v + 1e-12 + v.abs() * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::{Disparity, FairnessMeasure};
    use crate::schema::Table;
    use crate::sensitive::{GroupId, GroupSpace, GroupVector, SensitiveAttr};
    use crate::workload::{Correspondence, Workload};
    use fairem_csvio::parse_csv_str;

    fn explorer() -> EnsembleExplorer {
        let t = Table::from_csv(parse_csv_str("id,g\na1,cn\na2,us\n").unwrap()).unwrap();
        let space = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")]);
        let groups: Vec<GroupId> = space.ids().collect();
        let c = |score: f64, truth: bool, bits: u64| Correspondence {
            a_row: 0,
            b_row: 0,
            score,
            truth,
            left: GroupVector(bits),
            right: GroupVector(bits),
        };
        // Three matchers with different fairness/perf profiles on TPR.
        let mk = |cn_hit: usize, us_hit: usize| {
            let mut items = Vec::new();
            for i in 0..10 {
                items.push(c(if i < cn_hit { 0.9 } else { 0.1 }, true, 0b01));
                items.push(c(if i < us_hit { 0.9 } else { 0.1 }, true, 0b10));
                items.push(c(0.1, false, 0b11));
            }
            Workload::new(items, 0.5)
        };
        let a = mk(3, 10); // accurate on us, poor cn → unfair, high max perf
        let b = mk(8, 8); // balanced
        let d = mk(6, 9);
        let wa = Box::leak(Box::new(a));
        let wb = Box::leak(Box::new(b));
        let wd = Box::leak(Box::new(d));
        EnsembleExplorer::build(
            &[
                ("A".to_owned(), &*wa),
                ("B".to_owned(), &*wb),
                ("D".to_owned(), &*wd),
            ],
            &space,
            &groups,
            FairnessMeasure::TruePositiveRateParity,
            Disparity::Subtraction,
        )
    }

    #[test]
    fn starts_at_best_fair_point() {
        let e = explorer();
        let s = ResolutionSession::start(&e, 0.2);
        assert!(s.current().unfairness <= 0.2);
        assert!(!s.is_accepted());
        assert!(s.feasible_count() >= 1);
    }

    #[test]
    fn too_unfair_moves_strictly_fairer() {
        let e = explorer();
        let mut s = ResolutionSession::start(&e, f64::INFINITY);
        let before = s.current().unfairness;
        match s.feedback(Feedback::TooUnfair) {
            Proposal::Candidate(p) => {
                assert!(p.unfairness < before, "{} vs {before}", p.unfairness)
            }
            Proposal::Infeasible => {
                // Already at the fairest point — acceptable if before was 0.
                assert!(before <= 1e-9);
            }
            Proposal::Accepted(_) => panic!("not accepted"),
        }
    }

    #[test]
    fn too_inaccurate_moves_strictly_better_or_infeasible() {
        let e = explorer();
        let mut s = ResolutionSession::start(&e, 0.0);
        let before = s.current().performance;
        match s.feedback(Feedback::TooInaccurate) {
            Proposal::Candidate(p) => assert!(p.performance > before),
            Proposal::Infeasible => {}
            Proposal::Accepted(_) => panic!("not accepted"),
        }
    }

    #[test]
    fn accept_finishes_the_session() {
        let e = explorer();
        let mut s = ResolutionSession::start(&e, 0.2);
        let chosen = s.current().clone();
        match s.feedback(Feedback::Accept) {
            Proposal::Accepted(p) => assert_eq!(p, chosen),
            other => panic!("{other:?}"),
        }
        assert!(s.is_accepted());
        assert_eq!(s.history(), &[Feedback::Accept]);
    }

    #[test]
    fn infeasible_keeps_previous_proposal() {
        let e = explorer();
        let mut s = ResolutionSession::start(&e, f64::INFINITY);
        // Demand better than the best repeatedly until infeasible.
        let mut last = s.current().clone();
        for _ in 0..10 {
            match s.feedback(Feedback::TooInaccurate) {
                Proposal::Candidate(p) => last = p,
                Proposal::Infeasible => {
                    assert_eq!(s.current(), &last);
                    return;
                }
                Proposal::Accepted(_) => unreachable!(),
            }
        }
        panic!("never became infeasible");
    }

    #[test]
    #[should_panic(expected = "already accepted")]
    fn feedback_after_accept_panics() {
        let e = explorer();
        let mut s = ResolutionSession::start(&e, 0.2);
        let _ = s.feedback(Feedback::Accept);
        let _ = s.feedback(Feedback::TooUnfair);
    }
}
