//! The unified execution context for batch APIs.
//!
//! Every fan-out entry point used to take its own ad-hoc combination of
//! pool / token / budget arguments (`matrix`, `matrix_with`,
//! `matrix_within`, ...). [`Exec`] folds them into one context struct a
//! caller builds once and threads everywhere, and [`PairBatch`] names
//! the unit of work those entry points consume. The defaults are the
//! hermetic ones: sequential pool, inert cancel token, unlimited
//! budget, disabled recorder — an `Exec::default()` run is bit-for-bit
//! the plain sequential computation.

use fairem_obs::Recorder;
use fairem_par::{Budget, CancelToken, MemTracker, WorkerPool};

/// A batch of candidate record pairs to evaluate.
///
/// Row indices refer to the tables the consuming [`FeatureGenerator`]
/// was built from — the generator owns the prepared (interned) columns
/// of exactly those tables, so the batch only needs to carry the pair
/// list itself.
///
/// [`FeatureGenerator`]: crate::features::FeatureGenerator
#[derive(Debug, Clone, Copy)]
pub struct PairBatch<'a> {
    /// `(row_in_a, row_in_b)` index pairs.
    pub pairs: &'a [(usize, usize)],
}

impl<'a> PairBatch<'a> {
    /// Wrap a pair list.
    pub fn new(pairs: &'a [(usize, usize)]) -> PairBatch<'a> {
        PairBatch { pairs }
    }

    /// Number of pairs in the batch.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the batch holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Execution context for batch entry points: where to run (`pool`), how
/// to stop early (`cancel` + `budget`), and where to count work
/// (`recorder`).
///
/// `cancel` and `budget` compose the same way the suite pipeline does:
/// when the budget is unlimited the call runs directly under `cancel`
/// (same token, same step accounting); otherwise each call runs under a
/// fresh child of `cancel` carrying `budget`, so one call's allowance
/// never leaks into the next.
#[derive(Debug, Clone)]
pub struct Exec {
    /// Worker pool the batch is chunked over.
    pub pool: WorkerPool,
    /// Cooperative cancellation observed between chunks.
    pub cancel: CancelToken,
    /// Per-call allowance layered on top of `cancel` (unlimited by
    /// default: the call then polls `cancel` itself).
    pub budget: Budget,
    /// Metrics sink; the disabled recorder never touches the clock.
    pub recorder: Recorder,
    /// Deterministic allocation account for the columnar build path.
    /// The default tracker is unlimited: it records current/peak bytes
    /// but never rejects a build.
    pub mem: MemTracker,
}

impl Default for Exec {
    fn default() -> Exec {
        Exec::sequential()
    }
}

impl Exec {
    /// The hermetic context: one worker, inert token, unlimited budget,
    /// disabled recorder. Batch results under it are bit-for-bit the
    /// sequential scalar computation.
    pub fn sequential() -> Exec {
        Exec::with_pool(WorkerPool::new(1))
    }

    /// A context running on `pool` with no cancellation, budget, or
    /// metrics armed.
    pub fn with_pool(pool: WorkerPool) -> Exec {
        Exec {
            pool,
            cancel: CancelToken::inert(),
            budget: Budget::UNLIMITED,
            recorder: Recorder::disabled(),
            mem: MemTracker::unlimited(),
        }
    }

    /// Replace the cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Exec {
        self.cancel = token;
        self
    }

    /// Arm a per-call budget.
    pub fn budget(mut self, budget: Budget) -> Exec {
        self.budget = budget;
        self
    }

    /// Attach a metrics recorder.
    pub fn observe(mut self, recorder: Recorder) -> Exec {
        self.recorder = recorder;
        self
    }

    /// Attach a memory tracker (allocation accounting / budget).
    pub fn mem(mut self, tracker: MemTracker) -> Exec {
        self.mem = tracker;
        self
    }

    /// The token one batch call runs under: `cancel` itself when the
    /// budget is unlimited (identical step accounting to passing the
    /// token straight through), else a fresh budgeted child.
    pub fn run_token(&self) -> CancelToken {
        if self.budget.is_unlimited() {
            self.cancel.clone()
        } else {
            self.cancel.child(self.budget)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_exec_is_hermetic() {
        let e = Exec::default();
        assert_eq!(e.pool.workers(), 1);
        assert!(e.budget.is_unlimited());
        assert!(!e.recorder.is_enabled());
        assert!(!e.cancel.is_cancelled());
    }

    #[test]
    fn unbudgeted_run_token_shares_step_accounting() {
        let e = Exec::sequential();
        let t = e.run_token();
        t.checkpoint().expect("inert token");
        // Same underlying token: steps recorded on the run token are
        // visible on the context's token.
        assert_eq!(e.cancel.steps_done(), 1);
    }

    #[test]
    fn budgeted_run_token_is_a_fresh_child() {
        let e = Exec::sequential().budget(Budget::steps(1));
        let t = e.run_token();
        assert!(t.checkpoint().is_ok());
        assert!(t.checkpoint().is_err(), "child budget trips");
        assert!(!e.cancel.is_cancelled(), "parent unaffected");
        let t2 = e.run_token();
        assert!(t2.checkpoint().is_ok(), "each call gets a fresh allowance");
    }

    #[test]
    fn cancelling_the_context_trips_budgeted_children() {
        let e = Exec::sequential().budget(Budget::steps(1_000));
        e.cancel.cancel();
        assert!(e.run_token().checkpoint().is_err());
    }

    #[test]
    fn pair_batch_reports_size() {
        let pairs = [(0, 1), (2, 3)];
        let b = PairBatch::new(&pairs);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert!(PairBatch::new(&[]).is_empty());
    }
}
