//! Rendering of audit artifacts: fixed-width text tables (the CLI's
//! presentation layer) and machine-readable JSON.

use fairem_csvio::Json;

use crate::audit::AuditReport;
use crate::calibrate::CalibratedAudit;
use crate::ensemble::{EnsembleExplorer, ParetoPoint};
use crate::multiworkload::MultiWorkloadReport;

fn fmt(v: f64) -> String {
    if v.is_nan() {
        "  n/a".to_owned()
    } else {
        format!("{v:.3}")
    }
}

/// Render an audit report as an aligned text table (one row per
/// measure × group), mirroring Figure 4's audit pane.
pub fn audit_text(report: &AuditReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "audit: {} (match threshold {:.2}, fairness threshold {:.2})\n",
        report.matcher, report.matching_threshold, report.fairness_threshold
    ));
    if report.is_degraded() {
        out.push_str(&format!(
            "DEGRADED COVERAGE: {} matcher(s) failed and are absent from this audit\n",
            report.degraded.len()
        ));
        for f in &report.degraded {
            out.push_str(&format!("  {f}\n"));
        }
    }
    out.push_str(&format!(
        "{:<10} {:<18} {:>8} {:>8} {:>9} {:>8}  {}\n",
        "measure", "group", "value", "overall", "disparity", "support", "verdict"
    ));
    for e in &report.entries {
        let verdict = if e.insufficient() {
            "insufficient"
        } else if e.unfair {
            "UNFAIR"
        } else {
            "fair"
        };
        out.push_str(&format!(
            "{:<10} {:<18} {:>8} {:>8} {:>9} {:>8}  {}\n",
            e.measure.name(),
            e.group,
            fmt(e.group_value),
            fmt(e.overall_value),
            fmt(e.disparity),
            e.support,
            verdict
        ));
    }
    out
}

/// Render an audit report as unicode bar charts per measure — the
/// textual cousin of Figure 4's plot pane. Each bar shows the group's
/// disparity scaled to the axis `[0, max(2·threshold, max disparity)]`;
/// the `|` marks the fairness threshold (the demo's red line).
pub fn audit_bars(report: &AuditReport) -> String {
    const WIDTH: usize = 40;
    let mut out = String::new();
    out.push_str(&format!("unfairness bars: {}\n", report.matcher));
    let axis_max = report
        .entries
        .iter()
        .map(|e| e.disparity)
        .filter(|d| d.is_finite())
        .fold(report.fairness_threshold * 2.0, f64::max);
    let threshold_col = ((report.fairness_threshold / axis_max) * WIDTH as f64).round() as usize;
    // Group rows under each measure, preserving entry order.
    let mut measures: Vec<crate::fairness::FairnessMeasure> = Vec::new();
    for e in &report.entries {
        if !measures.contains(&e.measure) {
            measures.push(e.measure);
        }
    }
    for m in measures {
        out.push_str(&format!("{} ({})\n", m.name(), m.description()));
        for e in report.entries.iter().filter(|e| e.measure == m) {
            let mut bar: Vec<char> = vec![' '; WIDTH + 1];
            if e.disparity.is_finite() {
                let filled = ((e.disparity / axis_max) * WIDTH as f64).round() as usize;
                for slot in bar.iter_mut().take(filled.min(WIDTH)) {
                    *slot = '█';
                }
            }
            if threshold_col <= WIDTH {
                bar[threshold_col] = '|';
            }
            let bar: String = bar.into_iter().collect();
            let tag = if e.insufficient() {
                " (insufficient)"
            } else if e.unfair {
                " UNFAIR"
            } else {
                ""
            };
            out.push_str(&format!(
                "  {:<18} {} {}{}\n",
                e.group,
                bar,
                if e.disparity.is_finite() {
                    format!("{:.3}", e.disparity)
                } else {
                    "n/a".into()
                },
                tag
            ));
        }
    }
    out
}

/// Serialize an audit report to JSON.
pub fn audit_json(report: &AuditReport) -> Json {
    Json::obj([
        ("matcher", report.matcher.as_str().into()),
        ("matching_threshold", report.matching_threshold.into()),
        ("fairness_threshold", report.fairness_threshold.into()),
        ("degraded", Json::arr(report.degraded.iter().map(|f| {
            Json::obj([
                ("matcher", f.matcher.as_str().into()),
                ("stage", f.stage.to_string().into()),
                ("reason", f.reason.as_str().into()),
            ])
        }))),
        (
            "entries",
            Json::arr(report.entries.iter().map(|e| {
                Json::obj([
                    ("measure", e.measure.name().into()),
                    ("paradigm", e.paradigm.to_string().into()),
                    ("group", e.group.as_str().into()),
                    ("group_value", e.group_value.into()),
                    ("overall_value", e.overall_value.into()),
                    ("disparity", e.disparity.into()),
                    ("support", e.support.into()),
                    ("unfair", e.unfair.into()),
                ])
            })),
        ),
    ])
}

/// Render a threshold-independent calibrated audit as text: per-group
/// score-distribution distances vs the overall distribution and
/// per-measure fairness areas, raw vs calibrated side by side when a
/// calibration policy ran.
pub fn calibrated_audit_text(report: &CalibratedAudit) -> String {
    let mut out = String::new();
    match &report.calibration {
        Some(label) => out.push_str(&format!(
            "calibrated audit: {} (calibration {}, {} group(s) fitted, {} fallback(s))\n",
            report.matcher, label, report.groups_fitted, report.fallbacks
        )),
        None => out.push_str(&format!(
            "calibrated audit: {} (calibration off — raw scores only)\n",
            report.matcher
        )),
    }
    out.push_str("score-distribution distances vs overall (threshold-independent):\n");
    if report.calibrated.is_some() {
        out.push_str(&format!(
            "  {:<18} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
            "group", "support", "ks(raw)", "w1(raw)", "ks(cal)", "w1(cal)"
        ));
    } else {
        out.push_str(&format!(
            "  {:<18} {:>8} {:>9} {:>9}\n",
            "group", "support", "ks", "w1"
        ));
    }
    for (i, e) in report.baseline.entries.iter().enumerate() {
        match report.calibrated.as_ref().and_then(|c| c.entries.get(i)) {
            Some(ce) => out.push_str(&format!(
                "  {:<18} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
                e.group,
                e.support,
                fmt(e.ks),
                fmt(e.wasserstein),
                fmt(ce.ks),
                fmt(ce.wasserstein)
            )),
            None => out.push_str(&format!(
                "  {:<18} {:>8} {:>9} {:>9}\n",
                e.group,
                e.support,
                fmt(e.ks),
                fmt(e.wasserstein)
            )),
        }
    }
    out.push_str("fairness areas (max disparity integrated over all thresholds):\n");
    if report.calibrated.is_some() {
        out.push_str(&format!(
            "  {:<10} {:>10} {:>10}\n",
            "measure", "area(raw)", "area(cal)"
        ));
    } else {
        out.push_str(&format!("  {:<10} {:>10}\n", "measure", "area"));
    }
    for (i, a) in report.baseline.areas.iter().enumerate() {
        match report.calibrated.as_ref().and_then(|c| c.areas.get(i)) {
            Some(ca) => out.push_str(&format!(
                "  {:<10} {:>10} {:>10}\n",
                a.measure.name(),
                fmt(a.area),
                fmt(ca.area)
            )),
            None => out.push_str(&format!(
                "  {:<10} {:>10}\n",
                a.measure.name(),
                fmt(a.area)
            )),
        }
    }
    match (&report.calibrated, report.ks_improved()) {
        (Some(c), Some(improved)) => out.push_str(&format!(
            "KS disparity: raw {}, calibrated {} ({})\n",
            fmt(report.baseline.max_ks()),
            fmt(c.max_ks()),
            if improved { "improved" } else { "REGRESSED" }
        )),
        _ => out.push_str(&format!(
            "KS disparity: raw {}\n",
            fmt(report.baseline.max_ks())
        )),
    }
    out
}

fn distribution_audit_json(audit: &crate::calibrate::DistributionAudit) -> Json {
    Json::obj([
        ("max_ks", audit.max_ks().into()),
        ("max_wasserstein", audit.max_wasserstein().into()),
        (
            "entries",
            Json::arr(audit.entries.iter().map(|e| {
                Json::obj([
                    ("group", e.group.as_str().into()),
                    ("support", e.support.into()),
                    ("ks", e.ks.into()),
                    ("wasserstein", e.wasserstein.into()),
                ])
            })),
        ),
        (
            "areas",
            Json::arr(audit.areas.iter().map(|a| {
                Json::obj([
                    ("measure", a.measure.name().into()),
                    ("area", a.area.into()),
                ])
            })),
        ),
    ])
}

/// Serialize a threshold-independent calibrated audit to JSON.
pub fn calibrated_audit_json(report: &CalibratedAudit) -> Json {
    Json::obj([
        ("matcher", report.matcher.as_str().into()),
        (
            "calibration",
            match &report.calibration {
                Some(label) => label.as_str().into(),
                None => Json::Null,
            },
        ),
        ("groups_fitted", report.groups_fitted.into()),
        ("fallbacks", report.fallbacks.into()),
        ("baseline", distribution_audit_json(&report.baseline)),
        (
            "calibrated",
            match &report.calibrated {
                Some(c) => distribution_audit_json(c),
                None => Json::Null,
            },
        ),
    ])
}

/// Render a multiple-workload analysis as text.
pub fn multiworkload_text(report: &MultiWorkloadReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "multi-workload analysis: {} over k={} workloads (alpha {:.3})\n",
        report.matcher, report.k, report.alpha
    ));
    out.push_str(&format!(
        "{:<10} {:<18} {:>9} {:>8} {:>9} {:>10}  {}\n",
        "measure", "group", "mean-disp", "std", "z", "p-value", "verdict"
    ));
    for t in &report.tests {
        out.push_str(&format!(
            "{:<10} {:<18} {:>9} {:>8} {:>9} {:>10}  {}\n",
            t.measure.name(),
            t.group,
            fmt(t.disparities.mean),
            fmt(t.disparities.std),
            if t.z.is_finite() {
                format!("{:.2}", t.z)
            } else {
                format!("{}", t.z)
            },
            format!("{:.2e}", t.p_value),
            if t.significant {
                "SIGNIFICANT"
            } else {
                "not significant"
            }
        ));
    }
    out
}

/// Serialize a multiple-workload analysis to JSON.
pub fn multiworkload_json(report: &MultiWorkloadReport) -> Json {
    Json::obj([
        ("matcher", report.matcher.as_str().into()),
        ("k", report.k.into()),
        ("alpha", report.alpha.into()),
        (
            "tests",
            Json::arr(report.tests.iter().map(|t| {
                Json::obj([
                    ("measure", t.measure.name().into()),
                    ("group", t.group.as_str().into()),
                    ("mean_disparity", t.disparities.mean.into()),
                    ("std", t.disparities.std.into()),
                    ("z", t.z.into()),
                    ("p_value", t.p_value.into()),
                    ("significant", t.significant.into()),
                    ("valid_workloads", t.valid_workloads.into()),
                ])
            })),
        ),
    ])
}

/// Serialize the four explanation families for one (measure, group)
/// query to a single JSON object (Figure 5's screen as machine output).
pub fn explanation_json(
    explainer: &crate::explain::Explainer<'_>,
    measure: crate::fairness::FairnessMeasure,
    group: &str,
    n_examples: usize,
    seed: u64,
) -> Json {
    let me = explainer.measure_based(measure, group);
    let rep = explainer.representation(group);
    let sub = explainer.subgroup(measure, group);
    let ex = explainer.examples(measure, group, n_examples, seed);
    Json::obj([
        ("group", group.into()),
        ("measure", measure.name().into()),
        (
            "measure_based",
            Json::obj([
                (
                    "confusion",
                    Json::obj([
                        ("tp", me.confusion.tp.into()),
                        ("fp", me.confusion.fp.into()),
                        ("fn", me.confusion.fn_.into()),
                        ("tn", me.confusion.tn.into()),
                    ]),
                ),
                (
                    "rates",
                    Json::arr(me.rates.iter().map(|(name, gv, ov)| {
                        Json::obj([
                            ("rate", (*name).into()),
                            ("group", (*gv).into()),
                            ("overall", (*ov).into()),
                        ])
                    })),
                ),
                ("narrative", me.narrative.as_str().into()),
            ]),
        ),
        (
            "representation",
            Json::obj([
                ("share_overall", rep.share_overall.into()),
                ("share_matches", rep.share_matches.into()),
                ("share_nonmatches", rep.share_nonmatches.into()),
                (
                    "train",
                    match rep.train_shares {
                        Some((o, m, n)) => Json::obj([
                            ("share_overall", o.into()),
                            ("share_matches", m.into()),
                            ("share_nonmatches", n.into()),
                        ]),
                        None => Json::Null,
                    },
                ),
            ]),
        ),
        (
            "subgroups",
            Json::arr(sub.rows.iter().map(|r| {
                Json::obj([
                    ("group", r.group.as_str().into()),
                    ("value", r.value.into()),
                    ("disparity", r.disparity.into()),
                    ("support", r.support.into()),
                ])
            })),
        ),
        (
            "examples",
            Json::arr(ex.examples.iter().map(|e| {
                Json::obj([
                    ("left", e.left.as_str().into()),
                    ("right", e.right.as_str().into()),
                    ("score", e.score.into()),
                    ("predicted", e.predicted.into()),
                    ("truth", e.truth.into()),
                ])
            })),
        ),
    ])
}

/// Render a Pareto frontier as text (Figure 6's trade-off plot, as a
/// table: each row one ensemble strategy).
pub fn pareto_text(explorer: &EnsembleExplorer, frontier: &[ParetoPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fairness/performance Pareto frontier ({} points, measure {})\n",
        frontier.len(),
        explorer.measure()
    ));
    out.push_str(&format!(
        "{:>10} {:>12}  {}\n",
        "unfairness", "performance", "assignment"
    ));
    for p in frontier {
        out.push_str(&format!(
            "{:>10} {:>12}  {}\n",
            fmt(p.unfairness),
            fmt(p.performance),
            explorer.describe(&p.assignment)
        ));
    }
    out
}

/// Serialize a Pareto frontier to JSON.
pub fn pareto_json(explorer: &EnsembleExplorer, frontier: &[ParetoPoint]) -> Json {
    Json::obj([
        ("measure", explorer.measure().name().into()),
        (
            "points",
            Json::arr(frontier.iter().map(|p| {
                Json::obj([
                    ("unfairness", p.unfairness.into()),
                    ("performance", p.performance.into()),
                    (
                        "assignment",
                        Json::arr(p.assignment.iter().enumerate().map(|(g, &m)| {
                            Json::obj([
                                ("group", explorer.groups()[g].as_str().into()),
                                ("matcher", explorer.matchers()[m].as_str().into()),
                            ])
                        })),
                    ),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{AuditConfig, Auditor};
    use crate::fairness::FairnessMeasure;
    use crate::schema::Table;
    use crate::sensitive::{GroupSpace, GroupVector, SensitiveAttr};
    use crate::workload::{Correspondence, Workload};
    use fairem_csvio::parse_csv_str;

    fn report() -> AuditReport {
        let t = Table::from_csv(parse_csv_str("id,g\na1,cn\na2,us\n").unwrap()).unwrap();
        let space = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")]);
        let items = vec![
            Correspondence {
                a_row: 0,
                b_row: 0,
                score: 0.9,
                truth: true,
                left: GroupVector(1),
                right: GroupVector(1),
            },
            Correspondence {
                a_row: 0,
                b_row: 0,
                score: 0.1,
                truth: true,
                left: GroupVector(2),
                right: GroupVector(2),
            },
        ];
        let w = Workload::new(items, 0.5);
        Auditor::new(AuditConfig {
            measures: vec![FairnessMeasure::TruePositiveRateParity],
            min_support: 1,
            ..AuditConfig::default()
        })
        .audit("DT", &w, &space)
    }

    #[test]
    fn audit_text_contains_rows_and_verdicts() {
        let txt = audit_text(&report());
        assert!(txt.contains("audit: DT"));
        assert!(txt.contains("TPRP"));
        assert!(txt.contains("cn"));
        assert!(txt.contains("UNFAIR") || txt.contains("fair"));
    }

    #[test]
    fn audit_bars_mark_threshold_and_unfair_rows() {
        let txt = audit_bars(&report());
        assert!(txt.contains('|'), "threshold marker missing");
        assert!(txt.contains("TPRP"));
        assert!(txt.contains("cn"));
        // The cn row (disparity 1.0 here) must be flagged and have a bar.
        assert!(txt.contains("UNFAIR"));
        assert!(txt.contains('█'));
    }

    #[test]
    fn audit_json_is_valid_shape() {
        let j = audit_json(&report());
        let s = j.to_string_compact();
        assert!(s.contains("\"matcher\":\"DT\""));
        assert!(s.contains("\"entries\":["));
        assert!(s.contains("\"unfair\""));
    }

    #[test]
    fn explanation_json_has_all_four_families() {
        let t = Table::from_csv(parse_csv_str("id,g\na1,cn\na2,us\n").unwrap()).unwrap();
        let space = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")]);
        let items = vec![
            Correspondence {
                a_row: 0,
                b_row: 0,
                score: 0.1,
                truth: true,
                left: GroupVector(1),
                right: GroupVector(1),
            },
            Correspondence {
                a_row: 1,
                b_row: 1,
                score: 0.9,
                truth: true,
                left: GroupVector(2),
                right: GroupVector(2),
            },
        ];
        let w = Workload::new(items, 0.5);
        let ex = crate::explain::Explainer::new(
            &w,
            &space,
            &t,
            &t,
            None,
            crate::fairness::Disparity::Subtraction,
        );
        let j = explanation_json(&ex, FairnessMeasure::TruePositiveRateParity, "cn", 2, 1);
        let s = j.to_string_compact();
        for key in [
            "measure_based",
            "representation",
            "subgroups",
            "examples",
            "narrative",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert!(s.contains("a1")); // the missed cn pair shows up as example
    }

    #[test]
    fn nan_renders_as_na_and_null() {
        let mut r = report();
        r.entries[0].disparity = f64::NAN;
        assert!(audit_text(&r).contains("n/a"));
        assert!(audit_json(&r)
            .to_string_compact()
            .contains("\"disparity\":null"));
    }
}
