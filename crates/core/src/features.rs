//! Magellan-style similarity feature generation for record pairs.
//!
//! Columns present in both tables (matched by name, excluding `id` and
//! the sensitive columns — group membership must never leak into the
//! matcher input) become feature groups: numeric columns contribute
//! difference-based similarities, text columns a battery of string
//! measures plus a corpus-weighted TF-IDF cosine.

use fairem_ml::Matrix;
use fairem_neural::{HashVocab, TokenPair};
use fairem_par::{CancelToken, ChunkPanic, Interrupt, ParOutcome, WorkerPool};
use fairem_text::{rel_diff_sim, StringMeasure, TfIdfCorpus, TfIdfCorpusBuilder};

use crate::schema::Table;

/// The string measures applied to each text column, in feature order.
pub const TEXT_MEASURES: [StringMeasure; 6] = [
    StringMeasure::Levenshtein,
    StringMeasure::JaroWinkler,
    StringMeasure::JaccardWords,
    StringMeasure::JaccardQgrams,
    StringMeasure::MongeElkan,
    StringMeasure::CosineWords,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColKind {
    Numeric,
    Text,
}

#[derive(Debug, Clone)]
struct AlignedColumn {
    name: String,
    a_col: usize,
    b_col: usize,
    kind: ColKind,
}

/// A fitted feature generator bound to one pair of tables.
#[derive(Debug, Clone)]
pub struct FeatureGenerator {
    columns: Vec<AlignedColumn>,
    tfidf: TfIdfCorpus,
}

impl FeatureGenerator {
    /// Align the attribute columns of two tables (excluding `id` and
    /// `exclude`, typically the sensitive columns) and fit the TF-IDF
    /// corpus over every text value in both tables.
    ///
    /// # Panics
    /// If no columns align.
    pub fn build(a: &Table, b: &Table, exclude: &[&str]) -> FeatureGenerator {
        let mut columns = Vec::new();
        let mut corpus = TfIdfCorpusBuilder::new();
        for (a_col, name) in a.columns().iter().enumerate() {
            if name == "id" || exclude.contains(&name.as_str()) {
                continue;
            }
            let Some(b_col) = b.column_index(name) else {
                continue;
            };
            let numeric = all_numeric(a, a_col) && all_numeric(b, b_col);
            let kind = if numeric {
                ColKind::Numeric
            } else {
                ColKind::Text
            };
            if kind == ColKind::Text {
                for row in 0..a.len() {
                    corpus.add_document(a.value(row, a_col));
                }
                for row in 0..b.len() {
                    corpus.add_document(b.value(row, b_col));
                }
            }
            columns.push(AlignedColumn {
                name: name.clone(),
                a_col,
                b_col,
                kind,
            });
        }
        assert!(
            !columns.is_empty(),
            "no alignable feature columns between tables"
        );
        FeatureGenerator {
            columns,
            tfidf: corpus.build(),
        }
    }

    /// Number of features per pair.
    pub fn n_features(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c.kind {
                ColKind::Numeric => 2,
                ColKind::Text => TEXT_MEASURES.len() + 1,
            })
            .sum()
    }

    /// Stable feature names (`column.measure`).
    pub fn names(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.n_features());
        for c in &self.columns {
            match c.kind {
                ColKind::Numeric => {
                    out.push(format!("{}.rel_diff", c.name));
                    out.push(format!("{}.exact", c.name));
                }
                ColKind::Text => {
                    for m in TEXT_MEASURES {
                        out.push(format!("{}.{}", c.name, m.name()));
                    }
                    out.push(format!("{}.tfidf", c.name));
                }
            }
        }
        out
    }

    /// Feature vector for one record pair.
    pub fn features(&self, a: &Table, a_row: usize, b: &Table, b_row: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_features());
        for c in &self.columns {
            let va = a.value(a_row, c.a_col);
            let vb = b.value(b_row, c.b_col);
            match c.kind {
                ColKind::Numeric => {
                    let (na, nb) = (parse_num(va), parse_num(vb));
                    out.push(rel_diff_sim(na, nb));
                    out.push(if va == vb && !va.is_empty() { 1.0 } else { 0.0 });
                }
                ColKind::Text => {
                    for m in TEXT_MEASURES {
                        out.push(m.eval(va, vb));
                    }
                    out.push(self.tfidf.cosine(va, vb));
                }
            }
        }
        out
    }

    /// Feature matrix for a batch of pairs.
    pub fn matrix(&self, a: &Table, b: &Table, pairs: &[(usize, usize)]) -> Matrix {
        let d = self.n_features();
        let mut m = Matrix::zeros(pairs.len(), d);
        for (i, &(ra, rb)) in pairs.iter().enumerate() {
            let f = self.features(a, ra, b, rb);
            m.row_mut(i).copy_from_slice(&f);
        }
        m
    }

    /// [`FeatureGenerator::matrix`] fanned out over a worker pool,
    /// pair-chunked. Row `i` of the result is always `features(pairs[i])`
    /// — the pool stitches chunks in index order, so the matrix is
    /// bit-for-bit identical to the sequential one for any worker count.
    /// A panic inside feature evaluation is contained and returned as a
    /// [`ChunkPanic`] naming the pair range it escaped from.
    pub fn matrix_with(
        &self,
        a: &Table,
        b: &Table,
        pairs: &[(usize, usize)],
        pool: &WorkerPool,
    ) -> Result<Matrix, ChunkPanic> {
        match self.matrix_within(a, b, pairs, pool, &CancelToken::inert())? {
            // An inert token never trips.
            Err(i) => unreachable!("inert token interrupted feature generation: {i}"),
            Ok(m) => Ok(m),
        }
    }

    /// Cancellable [`FeatureGenerator::matrix_with`]: the pool observes
    /// `token` between pair chunks, so a budget expiry or cancel stops
    /// the fan-out promptly. An interrupted build returns the
    /// [`Interrupt`] record (inner `Err`); a contained panic still wins
    /// and comes back as the outer [`ChunkPanic`].
    pub fn matrix_within(
        &self,
        a: &Table,
        b: &Table,
        pairs: &[(usize, usize)],
        pool: &WorkerPool,
        token: &CancelToken,
    ) -> Result<Result<Matrix, Interrupt>, ChunkPanic> {
        let d = self.n_features();
        let rows = match pool.try_par_map_within(pairs.len(), token, |i| {
            let (ra, rb) = pairs[i];
            self.features(a, ra, b, rb)
        })? {
            ParOutcome::Complete(rows) => rows,
            ParOutcome::Interrupted { interrupt, .. } => return Ok(Err(interrupt)),
        };
        let mut m = Matrix::zeros(pairs.len(), d);
        for (i, f) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(f);
        }
        Ok(Ok(m))
    }

    /// Tokenize one pair for the neural matchers over the same aligned
    /// columns (one attribute per column).
    pub fn tokenize(
        &self,
        a: &Table,
        a_row: usize,
        b: &Table,
        b_row: usize,
        vocab: &HashVocab,
    ) -> TokenPair {
        let left = self
            .columns
            .iter()
            .map(|c| vocab.encode_words(a.value(a_row, c.a_col)))
            .collect();
        let right = self
            .columns
            .iter()
            .map(|c| vocab.encode_words(b.value(b_row, c.b_col)))
            .collect();
        TokenPair { left, right }
    }

    /// Tokenize a batch of pairs.
    pub fn tokenize_all(
        &self,
        a: &Table,
        b: &Table,
        pairs: &[(usize, usize)],
        vocab: &HashVocab,
    ) -> Vec<TokenPair> {
        pairs
            .iter()
            .map(|&(ra, rb)| self.tokenize(a, ra, b, rb, vocab))
            .collect()
    }
}

fn all_numeric(t: &Table, col: usize) -> bool {
    if t.is_empty() {
        return false;
    }
    (0..t.len()).all(|r| {
        let v = t.value(r, col);
        v.is_empty() || v.parse::<f64>().is_ok()
    })
}

fn parse_num(v: &str) -> f64 {
    v.parse().unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_csvio::parse_csv_str;

    fn tables() -> (Table, Table) {
        let a = Table::from_csv(
            parse_csv_str("id,name,price,country\na0,li wei,10.0,cn\na1,john smith,22.5,us\n")
                .unwrap(),
        )
        .unwrap();
        let b = Table::from_csv(
            parse_csv_str("id,name,price,country\nb0,wei li,10.0,cn\nb1,jon smyth,44.0,us\n")
                .unwrap(),
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn aligns_columns_and_excludes_sensitive() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let names = g.names();
        assert!(names.iter().all(|n| !n.starts_with("country")));
        assert!(names.iter().all(|n| !n.starts_with("id")));
        assert!(names.contains(&"name.jw".to_owned()));
        assert!(names.contains(&"price.rel_diff".to_owned()));
        assert_eq!(names.len(), g.n_features());
        // name: 7 features, price: 2 features.
        assert_eq!(g.n_features(), 9);
    }

    #[test]
    fn features_reflect_similarity() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let same_person = g.features(&a, 0, &b, 0); // li wei vs wei li, same price
        let diff_person = g.features(&a, 0, &b, 1);
        // Token-order-insensitive measures should be 1.0 for the flip.
        let names = g.names();
        let jac = names.iter().position(|n| n == "name.jac_w").unwrap();
        assert_eq!(same_person[jac], 1.0);
        assert!(same_person[jac] > diff_person[jac]);
        let rel = names.iter().position(|n| n == "price.rel_diff").unwrap();
        assert_eq!(same_person[rel], 1.0);
        for v in &same_person {
            assert!((0.0..=1.0).contains(v), "{v}");
        }
    }

    #[test]
    fn matrix_stacks_pairs() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let m = g.matrix(&a, &b, &[(0, 0), (1, 1), (0, 1)]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), g.n_features());
        assert_eq!(m.row(0), g.features(&a, 0, &b, 0).as_slice());
    }

    #[test]
    fn parallel_matrix_is_bitwise_identical_to_sequential() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let pairs: Vec<(usize, usize)> = (0..a.len())
            .flat_map(|ra| (0..b.len()).map(move |rb| (ra, rb)))
            .collect();
        let seq = g.matrix(&a, &b, &pairs);
        for workers in [1, 4] {
            let par = g
                .matrix_with(&a, &b, &pairs, &WorkerPool::new(workers))
                .unwrap();
            assert_eq!(par.rows(), seq.rows());
            for i in 0..seq.rows() {
                let (s, p) = (seq.row(i), par.row(i));
                assert!(
                    s.iter().zip(p).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "row {i} differs with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn tokenize_covers_aligned_columns() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let vocab = HashVocab::new(128);
        let tp = g.tokenize(&a, 0, &b, 0, &vocab);
        assert_eq!(tp.n_attrs(), 2); // name + price
        assert_eq!(tp.left[0].len(), 2); // li, wei
    }

    #[test]
    fn empty_numeric_values_yield_zero_similarity() {
        let a = Table::from_csv(parse_csv_str("id,v\na0,\n").unwrap()).unwrap();
        let b = Table::from_csv(parse_csv_str("id,v\nb0,3.5\n").unwrap()).unwrap();
        let g = FeatureGenerator::build(&a, &b, &[]);
        let f = g.features(&a, 0, &b, 0);
        assert_eq!(f[0], 0.0); // NaN rel-diff → 0 via rel_diff_sim
        assert_eq!(f[1], 0.0); // not exact
    }

    #[test]
    #[should_panic(expected = "no alignable")]
    fn disjoint_schemas_panic() {
        let a = Table::from_csv(parse_csv_str("id,x\na0,1\n").unwrap()).unwrap();
        let b = Table::from_csv(parse_csv_str("id,y\nb0,2\n").unwrap()).unwrap();
        let _ = FeatureGenerator::build(&a, &b, &[]);
    }
}
