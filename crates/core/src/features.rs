//! Magellan-style similarity feature generation for record pairs.
//!
//! Columns present in both tables (matched by name, excluding `id` and
//! the sensitive columns — group membership must never leak into the
//! matcher input) become feature groups: numeric columns contribute
//! difference-based similarities, text columns a battery of string
//! measures plus a corpus-weighted TF-IDF cosine.
//!
//! # Columnar execution
//!
//! [`FeatureGenerator::build`] normalizes and tokenizes every cell of
//! every aligned column exactly once, interning tokens to dense `u32`
//! ids ([`TokenInterner`]) and storing each column as a
//! struct-of-arrays [`PreparedColumn`] (normalized chars, word-token
//! ids, q-gram sets, TF-IDF weight vectors). The batch entry point
//! [`FeatureGenerator::matrix`] then runs integer-slice kernels with
//! per-chunk scratch buffers over a [`PairBatch`] — no per-pair
//! normalization, tokenization, or hashing. The scalar per-pair path
//! ([`FeatureGenerator::features`]) is kept as the reference
//! implementation; the batch kernels are bit-for-bit identical to it
//! for every measure (the equivalence suite pins this).

use std::collections::HashMap;
use std::sync::Arc;

use fairem_ml::Matrix;
use fairem_neural::{HashVocab, TokenPair};
use fairem_par::{CancelToken, ChunkPanic, Interrupt, MemPressure, ParOutcome, WorkerPool};
use fairem_text::{
    measure_cells, rel_diff_sim, tfidf_cosine_cells, word_tokens, PreparedColumn, SimScratch,
    StringMeasure, TfIdfCorpus, TokenInterner,
};

use crate::exec::{Exec, PairBatch};
use crate::schema::Table;

/// The string measures applied to each text column, in feature order.
pub const TEXT_MEASURES: [StringMeasure; 6] = [
    StringMeasure::Levenshtein,
    StringMeasure::JaroWinkler,
    StringMeasure::JaccardWords,
    StringMeasure::JaccardQgrams,
    StringMeasure::MongeElkan,
    StringMeasure::CosineWords,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColKind {
    Numeric,
    Text,
}

#[derive(Debug, Clone)]
struct AlignedColumn {
    name: String,
    a_col: usize,
    b_col: usize,
    kind: ColKind,
    /// Index into the kind-matching prepared-column store.
    slot: usize,
}

/// A numeric column prepared once at build time: parsed values, interned
/// whole-cell ids (for the exact-match feature), and interned raw word
/// tokens (for the neural tokenizer).
#[derive(Debug, Default, Clone)]
struct NumericColumn {
    value: Vec<f64>,
    cell: Vec<u32>,
    empty: Vec<bool>,
    words: Vec<u32>,
    words_off: Vec<u32>,
}

impl NumericColumn {
    fn prepare<'a>(
        cells: impl Iterator<Item = &'a str>,
        interner: &mut TokenInterner,
    ) -> NumericColumn {
        let mut col = NumericColumn {
            words_off: vec![0],
            ..NumericColumn::default()
        };
        for cell in cells {
            col.value.push(parse_num(cell));
            col.cell.push(interner.intern(cell));
            col.empty.push(cell.is_empty());
            for w in word_tokens(cell) {
                col.words.push(interner.intern(&w));
            }
            col.words_off.push(col.words.len() as u32);
        }
        col
    }

    fn words(&self, row: usize) -> &[u32] {
        &self.words[self.words_off[row] as usize..self.words_off[row + 1] as usize]
    }
}

/// The columnar build product: one shared interner plus, per aligned
/// column, the prepared struct-of-arrays for both tables. Immutable
/// after `build`, so the parallel pair loop reads it without locks.
#[derive(Debug)]
struct Interned {
    interner: TokenInterner,
    text: Vec<(PreparedColumn, PreparedColumn)>,
    numeric: Vec<(NumericColumn, NumericColumn)>,
}

/// A fitted feature generator bound to one pair of tables.
#[derive(Debug, Clone)]
pub struct FeatureGenerator {
    columns: Vec<AlignedColumn>,
    tfidf: TfIdfCorpus,
    interned: Arc<Interned>,
}

/// Why a batch feature build failed: a contained worker panic, or the
/// execution context's memory budget refusing the build's declared
/// footprint before any row was computed.
#[derive(Debug)]
pub enum MatrixError {
    /// A panic escaped feature evaluation on a worker.
    Panic(ChunkPanic),
    /// The declared build footprint did not fit the memory budget.
    Mem(MemPressure),
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::Panic(p) => write!(f, "{p}"),
            MatrixError::Mem(m) => write!(f, "{m}"),
        }
    }
}

impl From<ChunkPanic> for MatrixError {
    fn from(p: ChunkPanic) -> MatrixError {
        MatrixError::Panic(p)
    }
}

impl FeatureGenerator {
    /// Align the attribute columns of two tables (excluding `id` and
    /// `exclude`, typically the sensitive columns), tokenize and intern
    /// every cell once, and fit the TF-IDF corpus over every text value
    /// in both tables.
    ///
    /// # Panics
    /// If no columns align.
    pub fn build(a: &Table, b: &Table, exclude: &[&str]) -> FeatureGenerator {
        let mut columns = Vec::new();
        let mut interner = TokenInterner::new();
        let mut text: Vec<(PreparedColumn, PreparedColumn)> = Vec::new();
        let mut numeric: Vec<(NumericColumn, NumericColumn)> = Vec::new();
        for (a_col, name) in a.columns().iter().enumerate() {
            if name == "id" || exclude.contains(&name.as_str()) {
                continue;
            }
            let Some(b_col) = b.column_index(name) else {
                continue;
            };
            let kind = if all_numeric(a, a_col) && all_numeric(b, b_col) {
                ColKind::Numeric
            } else {
                ColKind::Text
            };
            let slot = match kind {
                ColKind::Text => {
                    let pa = PreparedColumn::prepare(
                        (0..a.len()).map(|r| a.value(r, a_col)),
                        &mut interner,
                    );
                    let pb = PreparedColumn::prepare(
                        (0..b.len()).map(|r| b.value(r, b_col)),
                        &mut interner,
                    );
                    text.push((pa, pb));
                    text.len() - 1
                }
                ColKind::Numeric => {
                    let na = NumericColumn::prepare(
                        (0..a.len()).map(|r| a.value(r, a_col)),
                        &mut interner,
                    );
                    let nb = NumericColumn::prepare(
                        (0..b.len()).map(|r| b.value(r, b_col)),
                        &mut interner,
                    );
                    numeric.push((na, nb));
                    numeric.len() - 1
                }
            };
            columns.push(AlignedColumn {
                name: name.clone(),
                a_col,
                b_col,
                kind,
                slot,
            });
        }
        assert!(
            !columns.is_empty(),
            "no alignable feature columns between tables"
        );
        // Document frequencies over the raw word tokens of every text
        // cell (a's rows then b's rows per column — df is a pure count,
        // so the accumulation order is immaterial to the result).
        let mut df: Vec<u32> = Vec::new();
        let mut n_docs = 0usize;
        for (pa, pb) in &text {
            n_docs += pa.accumulate_doc_freq(&mut df);
            n_docs += pb.accumulate_doc_freq(&mut df);
        }
        df.resize(interner.len(), 0);
        let rank = interner.string_ranks();
        for (pa, pb) in &mut text {
            pa.finish_tfidf(&df, n_docs, &rank);
            pb.finish_tfidf(&df, n_docs, &rank);
        }
        // Materialize the value-identical scalar corpus for the string
        // per-pair path: the incremental builder would have produced
        // exactly these (token, df) entries for exactly these documents.
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        for (id, &count) in df.iter().enumerate() {
            if count > 0 {
                doc_freq.insert(interner.resolve(id as u32).to_owned(), count as usize);
            }
        }
        FeatureGenerator {
            columns,
            tfidf: TfIdfCorpus::from_parts(doc_freq, n_docs),
            interned: Arc::new(Interned {
                interner,
                text,
                numeric,
            }),
        }
    }

    /// Number of features per pair.
    pub fn n_features(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c.kind {
                ColKind::Numeric => 2,
                ColKind::Text => TEXT_MEASURES.len() + 1,
            })
            .sum()
    }

    /// Stable feature names (`column.measure`).
    pub fn names(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.n_features());
        for c in &self.columns {
            match c.kind {
                ColKind::Numeric => {
                    out.push(format!("{}.rel_diff", c.name));
                    out.push(format!("{}.exact", c.name));
                }
                ColKind::Text => {
                    for m in TEXT_MEASURES {
                        out.push(format!("{}.{}", c.name, m.name()));
                    }
                    out.push(format!("{}.tfidf", c.name));
                }
            }
        }
        out
    }

    /// Feature vector for one record pair — the scalar reference path,
    /// evaluating measures on the raw cell strings. The batch kernels
    /// behind [`FeatureGenerator::matrix`] are bit-for-bit identical to
    /// this for every feature.
    pub fn features(&self, a: &Table, a_row: usize, b: &Table, b_row: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_features());
        for c in &self.columns {
            let va = a.value(a_row, c.a_col);
            let vb = b.value(b_row, c.b_col);
            match c.kind {
                ColKind::Numeric => {
                    let (na, nb) = (parse_num(va), parse_num(vb));
                    out.push(rel_diff_sim(na, nb));
                    out.push(if va == vb && !va.is_empty() { 1.0 } else { 0.0 });
                }
                ColKind::Text => {
                    for m in TEXT_MEASURES {
                        out.push(m.eval(va, vb));
                    }
                    out.push(self.tfidf.cosine(va, vb));
                }
            }
        }
        out
    }

    /// One row of the batch kernel: same features as
    /// [`FeatureGenerator::features`], computed from the prepared
    /// columns with `scratch` reused across the chunk.
    fn row_features(&self, ra: usize, rb: usize, scratch: &mut SimScratch, out: &mut Vec<f64>) {
        let it = &*self.interned;
        for c in &self.columns {
            match c.kind {
                ColKind::Numeric => {
                    let (na, nb) = &it.numeric[c.slot];
                    out.push(rel_diff_sim(na.value[ra], nb.value[rb]));
                    let exact = na.cell[ra] == nb.cell[rb] && !na.empty[ra];
                    out.push(if exact { 1.0 } else { 0.0 });
                }
                ColKind::Text => {
                    let (pa, pb) = &it.text[c.slot];
                    for m in TEXT_MEASURES {
                        out.push(measure_cells(m, pa, ra, pb, rb, &it.interner, scratch));
                    }
                    out.push(tfidf_cosine_cells(pa, ra, pb, rb));
                }
            }
        }
    }

    /// Feature matrix for a batch of pairs, run under `exec`.
    ///
    /// The pool chunks the batch, each chunk reuses one scratch buffer,
    /// and rows are stitched in pair order — the result is bit-for-bit
    /// identical for any worker count, and bit-for-bit the scalar
    /// [`FeatureGenerator::features`] per row. Cancellation/budget
    /// expiry surfaces as [`ParOutcome::Interrupted`] carrying the rows
    /// finished before the cut.
    ///
    /// # Panics
    /// Re-raises a panic that escaped feature evaluation on a worker
    /// (mirroring `WorkerPool::par_map`); use
    /// [`FeatureGenerator::try_matrix`] to handle it as a value.
    pub fn matrix(&self, batch: &PairBatch, exec: &Exec) -> ParOutcome<Matrix> {
        match self.try_matrix(batch, exec) {
            Ok(outcome) => outcome,
            // fairem: allow(panic) — documented # Panics contract: re-raises a contained worker panic (or budget refusal) for callers that did not opt into handling it.
            Err(p) => panic!("feature batch failed: {p}"),
        }
    }

    /// Resident bytes of the feature matrix for `n_pairs` pairs: one
    /// `f64` per feature per pair. This is the deterministic cost model
    /// the memory budget accounts against — declared sizes, never
    /// allocator or OS measurements.
    pub fn matrix_cost(&self, n_pairs: usize) -> u64 {
        (n_pairs as u64) * (self.n_features() as u64) * 8
    }

    /// [`FeatureGenerator::matrix`] with failures returned as values:
    /// contained worker panics as [`MatrixError::Panic`], and memory
    /// budget refusals as [`MatrixError::Mem`].
    ///
    /// The build declares a transient footprint of twice the matrix
    /// cost (per-chunk staging rows plus the stitched matrix) against
    /// `exec.mem` before computing anything; the hold is released when
    /// the call returns, so callers that keep the result resident take
    /// their own one-matrix hold.
    pub fn try_matrix(
        &self,
        batch: &PairBatch,
        exec: &Exec,
    ) -> Result<ParOutcome<Matrix>, MatrixError> {
        let _build_hold = exec
            .mem
            .try_hold(2 * self.matrix_cost(batch.len()))
            .map_err(MatrixError::Mem)?;
        exec.recorder.add("features.pairs", batch.len() as u64);
        let token = exec.run_token();
        let d = self.n_features();
        let pairs = batch.pairs;
        let outcome = exec.pool.try_par_scratch_within(
            pairs.len(),
            &token,
            SimScratch::new,
            |scratch, i| {
                let (ra, rb) = pairs[i];
                let mut row = Vec::with_capacity(d);
                self.row_features(ra, rb, scratch, &mut row);
                row
            },
        )?;
        Ok(outcome.map(|rows| {
            let mut m = Matrix::zeros(rows.len(), d);
            for (i, f) in rows.iter().enumerate() {
                m.row_mut(i).copy_from_slice(f);
            }
            m
        }))
    }

    /// Feature matrix via the scalar per-pair path.
    #[deprecated(note = "use `matrix(&PairBatch, &Exec)`; this scalar path stays as the \
                         bit-for-bit reference for the equivalence suite")]
    pub fn matrix_pairs(&self, a: &Table, b: &Table, pairs: &[(usize, usize)]) -> Matrix {
        let d = self.n_features();
        let mut m = Matrix::zeros(pairs.len(), d);
        for (i, &(ra, rb)) in pairs.iter().enumerate() {
            let f = self.features(a, ra, b, rb);
            m.row_mut(i).copy_from_slice(&f);
        }
        m
    }

    /// Scalar-path feature matrix fanned out over a worker pool.
    #[deprecated(note = "use `matrix(&PairBatch, &Exec)` with `Exec::with_pool`")]
    #[allow(deprecated)]
    pub fn matrix_with(
        &self,
        a: &Table,
        b: &Table,
        pairs: &[(usize, usize)],
        pool: &WorkerPool,
    ) -> Result<Matrix, ChunkPanic> {
        match self.matrix_within(a, b, pairs, pool, &CancelToken::inert())? {
            // fairem: allow(panic) — an inert token never trips; Err is unreachable by construction
            Err(i) => unreachable!("inert token interrupted feature generation: {i}"),
            Ok(m) => Ok(m),
        }
    }

    /// Cancellable scalar-path feature matrix.
    #[deprecated(note = "use `matrix(&PairBatch, &Exec)` with `Exec::cancel`")]
    pub fn matrix_within(
        &self,
        a: &Table,
        b: &Table,
        pairs: &[(usize, usize)],
        pool: &WorkerPool,
        token: &CancelToken,
    ) -> Result<Result<Matrix, Interrupt>, ChunkPanic> {
        let d = self.n_features();
        let rows = match pool.try_par_map_within(pairs.len(), token, |i| {
            let (ra, rb) = pairs[i];
            self.features(a, ra, b, rb)
        })? {
            ParOutcome::Complete(rows) => rows,
            ParOutcome::Interrupted { interrupt, .. } => return Ok(Err(interrupt)),
        };
        let mut m = Matrix::zeros(pairs.len(), d);
        for (i, f) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(f);
        }
        Ok(Ok(m))
    }

    /// Tokenize one pair for the neural matchers over the same aligned
    /// columns (one attribute per column) — the scalar reference for
    /// [`FeatureGenerator::tokenize_all`].
    pub fn tokenize(
        &self,
        a: &Table,
        a_row: usize,
        b: &Table,
        b_row: usize,
        vocab: &HashVocab,
    ) -> TokenPair {
        let left = self
            .columns
            .iter()
            .map(|c| vocab.encode_words(a.value(a_row, c.a_col)))
            .collect();
        let right = self
            .columns
            .iter()
            .map(|c| vocab.encode_words(b.value(b_row, c.b_col)))
            .collect();
        TokenPair { left, right }
    }

    /// Tokenize a batch of pairs from the interned build product: the
    /// vocabulary code of every distinct token is computed once, then
    /// each cell maps its cached token ids through that table — no
    /// re-tokenization of text the interner already processed. Output
    /// is exactly [`FeatureGenerator::tokenize`] per pair.
    pub fn tokenize_all(&self, batch: &PairBatch, vocab: &HashVocab) -> Vec<TokenPair> {
        let it = &*self.interned;
        let codes: Vec<u32> = (0..it.interner.len() as u32)
            .map(|id| vocab.id(it.interner.resolve(id)))
            .collect();
        let cell_words = |c: &AlignedColumn, side: usize, row: usize| match (c.kind, side) {
            (ColKind::Text, 0) => it.text[c.slot].0.raw_words(row),
            (ColKind::Text, _) => it.text[c.slot].1.raw_words(row),
            (ColKind::Numeric, 0) => it.numeric[c.slot].0.words(row),
            (ColKind::Numeric, _) => it.numeric[c.slot].1.words(row),
        };
        batch
            .pairs
            .iter()
            .map(|&(ra, rb)| TokenPair {
                left: self
                    .columns
                    .iter()
                    .map(|c| vocab.encode_interned(cell_words(c, 0, ra), &codes))
                    .collect(),
                right: self
                    .columns
                    .iter()
                    .map(|c| vocab.encode_interned(cell_words(c, 1, rb), &codes))
                    .collect(),
            })
            .collect()
    }
}

fn all_numeric(t: &Table, col: usize) -> bool {
    if t.is_empty() {
        return false;
    }
    (0..t.len()).all(|r| {
        let v = t.value(r, col);
        v.is_empty() || v.parse::<f64>().is_ok()
    })
}

fn parse_num(v: &str) -> f64 {
    v.parse().unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_csvio::parse_csv_str;
    use fairem_par::Budget;

    fn tables() -> (Table, Table) {
        let a = Table::from_csv(
            parse_csv_str("id,name,price,country\na0,li wei,10.0,cn\na1,john smith,22.5,us\n")
                .unwrap(),
        )
        .unwrap();
        let b = Table::from_csv(
            parse_csv_str("id,name,price,country\nb0,wei li,10.0,cn\nb1,jon smyth,44.0,us\n")
                .unwrap(),
        )
        .unwrap();
        (a, b)
    }

    fn all_pairs(a: &Table, b: &Table) -> Vec<(usize, usize)> {
        (0..a.len())
            .flat_map(|ra| (0..b.len()).map(move |rb| (ra, rb)))
            .collect()
    }

    fn complete(outcome: ParOutcome<Matrix>) -> Matrix {
        match outcome {
            ParOutcome::Complete(m) => m,
            ParOutcome::Interrupted { interrupt, .. } => {
                unreachable!("unexpected interrupt: {interrupt}")
            }
        }
    }

    #[test]
    fn aligns_columns_and_excludes_sensitive() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let names = g.names();
        assert!(names.iter().all(|n| !n.starts_with("country")));
        assert!(names.iter().all(|n| !n.starts_with("id")));
        assert!(names.contains(&"name.jw".to_owned()));
        assert!(names.contains(&"price.rel_diff".to_owned()));
        assert_eq!(names.len(), g.n_features());
        // name: 7 features, price: 2 features.
        assert_eq!(g.n_features(), 9);
    }

    #[test]
    fn features_reflect_similarity() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let same_person = g.features(&a, 0, &b, 0); // li wei vs wei li, same price
        let diff_person = g.features(&a, 0, &b, 1);
        // Token-order-insensitive measures should be 1.0 for the flip.
        let names = g.names();
        let jac = names.iter().position(|n| n == "name.jac_w").unwrap();
        assert_eq!(same_person[jac], 1.0);
        assert!(same_person[jac] > diff_person[jac]);
        let rel = names.iter().position(|n| n == "price.rel_diff").unwrap();
        assert_eq!(same_person[rel], 1.0);
        for v in &same_person {
            assert!((0.0..=1.0).contains(v), "{v}");
        }
    }

    #[test]
    fn matrix_stacks_pairs() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let pairs = [(0, 0), (1, 1), (0, 1)];
        let m = complete(g.matrix(&PairBatch::new(&pairs), &Exec::default()));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), g.n_features());
        assert_eq!(m.row(0), g.features(&a, 0, &b, 0).as_slice());
    }

    #[test]
    fn batch_kernels_match_scalar_features_bit_for_bit() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let pairs = all_pairs(&a, &b);
        let m = complete(g.matrix(&PairBatch::new(&pairs), &Exec::default()));
        for (i, &(ra, rb)) in pairs.iter().enumerate() {
            let scalar = g.features(&a, ra, &b, rb);
            let batch = m.row(i);
            assert!(
                scalar.iter().zip(batch).all(|(x, y)| x.to_bits() == y.to_bits()),
                "pair ({ra},{rb}): scalar {scalar:?} vs batch {batch:?}"
            );
        }
    }

    #[test]
    fn parallel_matrix_is_bitwise_identical_to_sequential() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let pairs = all_pairs(&a, &b);
        let batch = PairBatch::new(&pairs);
        let seq = complete(g.matrix(&batch, &Exec::default()));
        for workers in [1, 4] {
            let exec = Exec::with_pool(WorkerPool::new(workers));
            let par = complete(g.matrix(&batch, &exec));
            assert_eq!(par.rows(), seq.rows());
            for i in 0..seq.rows() {
                let (s, p) = (seq.row(i), par.row(i));
                assert!(
                    s.iter().zip(p).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "row {i} differs with {workers} workers"
                );
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_scalar_shims_agree_with_the_batch_path() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let pairs = all_pairs(&a, &b);
        let new = complete(g.matrix(&PairBatch::new(&pairs), &Exec::default()));
        let old = g.matrix_pairs(&a, &b, &pairs);
        let pooled = g
            .matrix_with(&a, &b, &pairs, &WorkerPool::new(2))
            .unwrap();
        for i in 0..new.rows() {
            for j in 0..new.cols() {
                assert_eq!(new.row(i)[j].to_bits(), old.row(i)[j].to_bits());
                assert_eq!(new.row(i)[j].to_bits(), pooled.row(i)[j].to_bits());
            }
        }
    }

    #[test]
    fn budget_expiry_interrupts_the_batch() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let pairs = all_pairs(&a, &b);
        // A zero-step budget trips at the first inter-chunk checkpoint.
        let exec = Exec::sequential().budget(Budget::steps(0));
        match g.matrix(&PairBatch::new(&pairs), &exec) {
            ParOutcome::Interrupted { done, total, .. } => {
                assert_eq!(total, pairs.len());
                assert!(done.rows() < pairs.len());
            }
            ParOutcome::Complete(_) => panic!("zero budget must interrupt"),
        }
    }

    #[test]
    fn tokenize_covers_aligned_columns() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let vocab = HashVocab::new(128);
        let tp = g.tokenize(&a, 0, &b, 0, &vocab);
        assert_eq!(tp.n_attrs(), 2); // name + price
        assert_eq!(tp.left[0].len(), 2); // li, wei
    }

    #[test]
    fn interned_tokenize_all_matches_per_pair_tokenize() {
        let (a, b) = tables();
        let g = FeatureGenerator::build(&a, &b, &["country"]);
        let vocab = HashVocab::new(128);
        let pairs = all_pairs(&a, &b);
        let batch = g.tokenize_all(&PairBatch::new(&pairs), &vocab);
        assert_eq!(batch.len(), pairs.len());
        for (tp, &(ra, rb)) in batch.iter().zip(&pairs) {
            let scalar = g.tokenize(&a, ra, &b, rb, &vocab);
            assert_eq!(tp.left, scalar.left, "pair ({ra},{rb}) left");
            assert_eq!(tp.right, scalar.right, "pair ({ra},{rb}) right");
        }
    }

    #[test]
    fn empty_cells_tokenize_to_the_empty_marker() {
        let a = Table::from_csv(parse_csv_str("id,name\na0,\n").unwrap()).unwrap();
        let b = Table::from_csv(parse_csv_str("id,name\nb0,smith\n").unwrap()).unwrap();
        let g = FeatureGenerator::build(&a, &b, &[]);
        let vocab = HashVocab::new(64);
        let tps = g.tokenize_all(&PairBatch::new(&[(0, 0)]), &vocab);
        assert_eq!(tps[0].left[0], vec![0], "empty cell gets the marker");
        assert_eq!(tps[0].right[0], vec![vocab.id("smith")]);
    }

    #[test]
    fn empty_numeric_values_yield_zero_similarity() {
        let a = Table::from_csv(parse_csv_str("id,v\na0,\n").unwrap()).unwrap();
        let b = Table::from_csv(parse_csv_str("id,v\nb0,3.5\n").unwrap()).unwrap();
        let g = FeatureGenerator::build(&a, &b, &[]);
        let f = g.features(&a, 0, &b, 0);
        assert_eq!(f[0], 0.0); // NaN rel-diff → 0 via rel_diff_sim
        assert_eq!(f[1], 0.0); // not exact
        let m = complete(g.matrix(&PairBatch::new(&[(0, 0)]), &Exec::default()));
        assert_eq!(m.row(0)[0].to_bits(), f[0].to_bits());
        assert_eq!(m.row(0)[1].to_bits(), f[1].to_bits());
    }

    #[test]
    #[should_panic(expected = "no alignable")]
    fn disjoint_schemas_panic() {
        let a = Table::from_csv(parse_csv_str("id,x\na0,1\n").unwrap()).unwrap();
        let b = Table::from_csv(parse_csv_str("id,y\nb0,2\n").unwrap()).unwrap();
        let _ = FeatureGenerator::build(&a, &b, &[]);
    }
}
