//! Unified error taxonomy for suite execution.
//!
//! Every fallible path through the pipeline reports a [`SuiteError`]
//! carrying the [`Stage`] it failed in and a structured cause, replacing
//! the scattered panics the suite grew up with. Matcher-level failures
//! are deliberately *not* errors: they degrade the session (see
//! [`crate::matcher::MatcherStatus`]) and only escalate to
//! [`SuiteError::AllMatchersFailed`] when no matcher survives.

use crate::matcher::MatcherFailure;
use crate::schema::SchemaError;

/// Pipeline stage an error or matcher failure is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Reading and validating input tables and the ground truth.
    Import,
    /// Candidate generation, labeling, and splitting.
    Prep,
    /// Token / sorted-neighborhood blocking.
    Blocking,
    /// Similarity feature and token generation.
    FeatureGen,
    /// Matcher training.
    Train,
    /// Matcher scoring.
    Score,
    /// Fairness auditing.
    Audit,
    /// Ensemble / Pareto resolution.
    Resolve,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::Import => "import",
            Stage::Prep => "prep",
            Stage::Blocking => "blocking",
            Stage::FeatureGen => "feature-gen",
            Stage::Train => "train",
            Stage::Score => "score",
            Stage::Audit => "audit",
            Stage::Resolve => "resolve",
        };
        f.write_str(s)
    }
}

/// A structured, stage-attributed suite failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SuiteError {
    /// Filesystem-level failure (path + OS detail).
    Io {
        /// Path the operation touched.
        path: String,
        /// OS error text.
        detail: String,
    },
    /// Table violated the schema contract (missing/duplicate ids).
    Schema {
        /// Which table (`"tableA"`, `"tableB"`).
        table: String,
        /// The underlying schema violation.
        source: SchemaError,
    },
    /// Input data unusable at some stage (empty tables, no alignable
    /// columns, missing sensitive/blocking columns, …).
    Data {
        /// Stage that rejected the data.
        stage: Stage,
        /// Human-readable cause.
        detail: String,
    },
    /// Invalid configuration (bad split fractions, bad thresholds, …).
    Config {
        /// Human-readable cause.
        detail: String,
    },
    /// A non-matcher stage panicked; the panic was contained and
    /// converted.
    Stage {
        /// Stage the panic escaped from.
        stage: Stage,
        /// Captured panic payload.
        detail: String,
    },
    /// Every requested matcher failed; nothing is left to audit.
    AllMatchersFailed {
        /// Per-matcher stage + reason for the post-mortem.
        failures: Vec<MatcherFailure>,
    },
    /// A session accessor named a matcher that is not in the session
    /// (never trained, or quarantined by a failure).
    UnknownMatcher {
        /// The name that was asked for.
        matcher: String,
        /// The matchers the session actually holds, in registry order.
        known: Vec<String>,
    },
    /// The memory budget refused a stage's declared footprint. The
    /// numbers are the deterministic cost-model bytes (declared sizes,
    /// never allocator measurements), so the same configuration fails
    /// identically on every machine. The remedy is sharded execution
    /// (`--shards`) or a larger `--mem-budget`.
    MemExceeded {
        /// Stage whose build did not fit.
        stage: Stage,
        /// Bytes the build declared.
        requested: u64,
        /// Bytes already resident when the build was refused.
        in_use: u64,
        /// The configured budget.
        limit: u64,
    },
    /// The whole-suite budget expired (or the run was cancelled) at a
    /// pipeline stage. Per-matcher budget expiries do **not** raise
    /// this — they degrade the session exactly like a matcher panic and
    /// only escalate through [`SuiteError::AllMatchersFailed`].
    TimedOut {
        /// Stage the budget expired in.
        stage: Stage,
        /// The matcher being processed when the cut landed, if the
        /// stage was matcher-scoped.
        matcher: Option<String>,
        /// Wall time from run start to the cut.
        elapsed: std::time::Duration,
    },
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::Io { path, detail } => write!(f, "io error on {path:?}: {detail}"),
            SuiteError::Schema { table, source } => write!(f, "schema error in {table}: {source}"),
            SuiteError::Data { stage, detail } => write!(f, "data error at {stage}: {detail}"),
            SuiteError::Config { detail } => write!(f, "config error: {detail}"),
            SuiteError::Stage { stage, detail } => write!(f, "stage {stage} failed: {detail}"),
            SuiteError::AllMatchersFailed { failures } => {
                write!(f, "all {} matcher(s) failed:", failures.len())?;
                for mf in failures {
                    write!(f, " [{} at {}: {}]", mf.matcher, mf.stage, mf.reason)?;
                }
                Ok(())
            }
            SuiteError::MemExceeded {
                stage,
                requested,
                in_use,
                limit,
            } => write!(
                f,
                "memory budget exceeded at {stage}: need {requested} B with {in_use} B \
                 already resident (limit {limit} B); shard the run (--shards) or raise \
                 --mem-budget"
            ),
            SuiteError::TimedOut {
                stage,
                matcher,
                elapsed,
            } => {
                write!(f, "run timed out at {stage}")?;
                if let Some(m) = matcher {
                    write!(f, " (processing {m})")?;
                }
                write!(f, " after {:.3}s", elapsed.as_secs_f64())
            }
            SuiteError::UnknownMatcher { matcher, known } => {
                write!(f, "matcher {matcher:?} not in session (have: ")?;
                for (i, k) in known.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(k)?;
                }
                f.write_str(")")
            }
        }
    }
}

impl std::error::Error for SuiteError {}

/// Shorthand for suite-fallible functions.
pub type SuiteResult<T> = Result<T, SuiteError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_stage_and_cause() {
        let e = SuiteError::Data {
            stage: Stage::FeatureGen,
            detail: "no alignable feature columns".into(),
        };
        let s = e.to_string();
        assert!(s.contains("feature-gen"), "{s}");
        assert!(s.contains("no alignable"), "{s}");
    }

    #[test]
    fn all_matchers_failed_lists_each_failure() {
        let e = SuiteError::AllMatchersFailed {
            failures: vec![
                MatcherFailure::panicked("DTMatcher", Stage::Train, "injected".into()),
                MatcherFailure::panicked("SVMMatcher", Stage::Score, "boom".into()),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("DTMatcher at train: injected"), "{s}");
        assert!(s.contains("SVMMatcher at score: boom"), "{s}");
    }

    #[test]
    fn unknown_matcher_names_the_alternatives() {
        let e = SuiteError::UnknownMatcher {
            matcher: "NoSuchMatcher".into(),
            known: vec!["DTMatcher".into(), "SVMMatcher".into()],
        };
        let s = e.to_string();
        assert!(s.contains("\"NoSuchMatcher\" not in session"), "{s}");
        assert!(s.contains("DTMatcher, SVMMatcher"), "{s}");
    }

    #[test]
    fn timed_out_names_stage_matcher_and_elapsed() {
        let e = SuiteError::TimedOut {
            stage: Stage::Train,
            matcher: Some("RFMatcher".into()),
            elapsed: std::time::Duration::from_millis(1250),
        };
        let s = e.to_string();
        assert!(s.contains("timed out at train"), "{s}");
        assert!(s.contains("RFMatcher"), "{s}");
        assert!(s.contains("1.250s"), "{s}");
        let anon = SuiteError::TimedOut {
            stage: Stage::FeatureGen,
            matcher: None,
            elapsed: std::time::Duration::from_secs(2),
        };
        assert!(anon.to_string().contains("timed out at feature-gen"));
    }

    #[test]
    fn mem_exceeded_carries_the_cost_model_numbers() {
        let e = SuiteError::MemExceeded {
            stage: Stage::FeatureGen,
            requested: 4096,
            in_use: 1024,
            limit: 2048,
        };
        let s = e.to_string();
        assert!(s.contains("memory budget exceeded at feature-gen"), "{s}");
        assert!(s.contains("need 4096 B"), "{s}");
        assert!(s.contains("limit 2048 B"), "{s}");
        assert!(s.contains("--shards"), "{s}");
    }

    #[test]
    fn schema_error_wraps_source() {
        let e = SuiteError::Schema {
            table: "tableA".into(),
            source: SchemaError::DuplicateId("a0".into()),
        };
        assert!(e.to_string().contains("a0"));
    }
}
