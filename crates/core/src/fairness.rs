//! Fairness paradigms, measures, and disparity (paper §2.2).
//!
//! A measure selects a conditional probability `Pr(α | β)` from a
//! confusion matrix; the audit compares the group-conditional value
//! `Pr(α | β, g)` against the workload-wide value with either the
//! subtraction-based (Eq. 2) or division-based (Eq. 3) notion of
//! disparity. Disparity is one-sided: only deviation in the *harmful*
//! direction counts (lower TPR, but *higher* FPR).

use crate::confusion::ConfusionMatrix;

/// Fairness auditing paradigm (paper §2.2, "Fairness Paradigms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// A correspondence is legitimate for subgroup `s` if **either**
    /// entity belongs to `s`.
    Single,
    /// A correspondence is legitimate for a subgroup pair `(s, s')` if
    /// one entity belongs to `s` and the other to `s'`.
    Pairwise,
}

impl std::fmt::Display for Paradigm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Paradigm::Single => "single",
            Paradigm::Pairwise => "pairwise",
        })
    }
}

/// The group-fairness measures FairEM360 evaluates.
///
/// [`FairnessMeasure::PAPER_FIVE`] is the headline set the demo exposes;
/// [`FairnessMeasure::ALL`] adds the remaining confusion-matrix parities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FairnessMeasure {
    /// Accuracy parity.
    AccuracyParity,
    /// Statistical (demographic) parity: predicted-positive rate.
    StatisticalParity,
    /// True positive rate parity (equal opportunity).
    TruePositiveRateParity,
    /// False positive rate parity (predictive equality).
    FalsePositiveRateParity,
    /// True negative rate parity.
    TrueNegativeRateParity,
    /// False negative rate parity.
    FalseNegativeRateParity,
    /// Positive predictive value parity (the EM-critical measure under
    /// class imbalance, per the paper).
    PositivePredictiveValueParity,
    /// Negative predictive value parity.
    NegativePredictiveValueParity,
    /// False discovery rate parity.
    FalseDiscoveryRateParity,
    /// False omission rate parity.
    FalseOmissionRateParity,
}

impl FairnessMeasure {
    /// Every measure, in reporting order.
    pub const ALL: [FairnessMeasure; 10] = [
        FairnessMeasure::AccuracyParity,
        FairnessMeasure::StatisticalParity,
        FairnessMeasure::TruePositiveRateParity,
        FairnessMeasure::FalsePositiveRateParity,
        FairnessMeasure::TrueNegativeRateParity,
        FairnessMeasure::FalseNegativeRateParity,
        FairnessMeasure::PositivePredictiveValueParity,
        FairnessMeasure::NegativePredictiveValueParity,
        FairnessMeasure::FalseDiscoveryRateParity,
        FairnessMeasure::FalseOmissionRateParity,
    ];

    /// The five headline measures the demo exposes.
    pub const PAPER_FIVE: [FairnessMeasure; 5] = [
        FairnessMeasure::AccuracyParity,
        FairnessMeasure::StatisticalParity,
        FairnessMeasure::TruePositiveRateParity,
        FairnessMeasure::FalsePositiveRateParity,
        FairnessMeasure::PositivePredictiveValueParity,
    ];

    /// Short stable identifier used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FairnessMeasure::AccuracyParity => "AP",
            FairnessMeasure::StatisticalParity => "SP",
            FairnessMeasure::TruePositiveRateParity => "TPRP",
            FairnessMeasure::FalsePositiveRateParity => "FPRP",
            FairnessMeasure::TrueNegativeRateParity => "TNRP",
            FairnessMeasure::FalseNegativeRateParity => "FNRP",
            FairnessMeasure::PositivePredictiveValueParity => "PPVP",
            FairnessMeasure::NegativePredictiveValueParity => "NPVP",
            FairnessMeasure::FalseDiscoveryRateParity => "FDRP",
            FairnessMeasure::FalseOmissionRateParity => "FORP",
        }
    }

    /// Human-readable description (surfaced by the demo's hover cards).
    pub fn description(self) -> &'static str {
        match self {
            FairnessMeasure::AccuracyParity => "equal overall accuracy across groups",
            FairnessMeasure::StatisticalParity => "equal predicted-match rates across groups",
            FairnessMeasure::TruePositiveRateParity => {
                "equal opportunity: equal recall of true matches across groups"
            }
            FairnessMeasure::FalsePositiveRateParity => {
                "predictive equality: equal false-match rates across groups"
            }
            FairnessMeasure::TrueNegativeRateParity => "equal true-non-match rates across groups",
            FairnessMeasure::FalseNegativeRateParity => "equal missed-match rates across groups",
            FairnessMeasure::PositivePredictiveValueParity => {
                "equal precision of predicted matches across groups"
            }
            FairnessMeasure::NegativePredictiveValueParity => {
                "equal precision of predicted non-matches across groups"
            }
            FairnessMeasure::FalseDiscoveryRateParity => {
                "equal rate of spurious matches among predictions across groups"
            }
            FairnessMeasure::FalseOmissionRateParity => {
                "equal rate of missed matches among negative predictions across groups"
            }
        }
    }

    /// The measure's quantity `Pr(α | β)` from a confusion matrix.
    pub fn value(self, cm: &ConfusionMatrix) -> f64 {
        match self {
            FairnessMeasure::AccuracyParity => cm.accuracy(),
            FairnessMeasure::StatisticalParity => cm.positive_rate(),
            FairnessMeasure::TruePositiveRateParity => cm.tpr(),
            FairnessMeasure::FalsePositiveRateParity => cm.fpr(),
            FairnessMeasure::TrueNegativeRateParity => cm.tnr(),
            FairnessMeasure::FalseNegativeRateParity => cm.fnr(),
            FairnessMeasure::PositivePredictiveValueParity => cm.ppv(),
            FairnessMeasure::NegativePredictiveValueParity => cm.npv(),
            FairnessMeasure::FalseDiscoveryRateParity => cm.fdr(),
            FairnessMeasure::FalseOmissionRateParity => cm.for_rate(),
        }
    }

    /// Is a higher value of the quantity better for the group?
    /// (Lower is better for error-rate measures like FPR.)
    pub fn higher_is_better(self) -> bool {
        !matches!(
            self,
            FairnessMeasure::FalsePositiveRateParity
                | FairnessMeasure::FalseNegativeRateParity
                | FairnessMeasure::FalseDiscoveryRateParity
                | FairnessMeasure::FalseOmissionRateParity
        )
    }
}

impl std::fmt::Display for FairnessMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FairnessMeasure {
    type Err = UnknownMeasure;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FairnessMeasure::ALL
            .iter()
            .copied()
            .find(|m| m.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| UnknownMeasure(s.to_owned()))
    }
}

/// Error for unknown measure names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMeasure(pub String);

impl std::fmt::Display for UnknownMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown fairness measure: {:?}", self.0)
    }
}

impl std::error::Error for UnknownMeasure {}

/// Disparity notation (paper Eq. 2 and Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Disparity {
    /// Eq. 2: `max(0, Pr(α|β) − Pr(α|β,g))` in the harmful direction.
    Subtraction,
    /// Eq. 3: `max(0, 1 − Pr(α|β,g)/Pr(α|β))` in the harmful direction.
    Division,
}

impl Disparity {
    /// Compute the unfairness of a group value against the overall
    /// value for a given measure orientation. Returns `NaN` when either
    /// input is `NaN` (insufficient data), which audits surface as
    /// "insufficient support" rather than a verdict.
    pub fn compute(self, overall: f64, group: f64, higher_is_better: bool) -> f64 {
        // NaN marks an undefined rate (no support), ±inf a degenerate
        // one; both collapse to NaN so "insufficient evidence" can never
        // masquerade as a finite disparity downstream (sorting, Pareto
        // comparisons, threshold sweeps all treat NaN as "sorts last").
        if !overall.is_finite() || !group.is_finite() {
            return f64::NAN;
        }
        // Orient so that "bigger = worse for the group".
        let (reference, observed) = if higher_is_better {
            (overall, group) // harm = observed below reference
        } else {
            (group, overall) // harm = observed above reference ⇔ swap roles
        };
        match self {
            Disparity::Subtraction => (reference - observed).max(0.0),
            Disparity::Division => {
                if reference == 0.0 {
                    // Higher-better: overall 0 means no group can be
                    // below it. Lower-better: group 0 means a perfect
                    // group error rate. Either way the group is fair.
                    0.0
                } else {
                    (1.0 - observed / reference).max(0.0)
                }
            }
        }
    }

    /// Short stable identifier.
    pub fn name(self) -> &'static str {
        match self {
            Disparity::Subtraction => "subtraction",
            Disparity::Division => "division",
        }
    }
}

impl std::fmt::Display for Disparity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in FairnessMeasure::ALL {
            let parsed: FairnessMeasure = m.name().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("XX".parse::<FairnessMeasure>().is_err());
        // Case-insensitive.
        assert_eq!(
            "tprp".parse::<FairnessMeasure>().unwrap(),
            FairnessMeasure::TruePositiveRateParity
        );
    }

    #[test]
    fn paper_five_is_a_subset_of_all() {
        for m in FairnessMeasure::PAPER_FIVE {
            assert!(FairnessMeasure::ALL.contains(&m));
        }
    }

    #[test]
    fn orientation_is_correct() {
        assert!(FairnessMeasure::TruePositiveRateParity.higher_is_better());
        assert!(!FairnessMeasure::FalsePositiveRateParity.higher_is_better());
        assert!(FairnessMeasure::PositivePredictiveValueParity.higher_is_better());
        assert!(!FairnessMeasure::FalseOmissionRateParity.higher_is_better());
    }

    #[test]
    fn subtraction_disparity_matches_eq2() {
        // Higher-better: group below overall is unfair.
        let d = Disparity::Subtraction.compute(0.9, 0.5, true);
        assert!((d - 0.4).abs() < 1e-12);
        // Group above overall: fair (clamped to 0).
        assert_eq!(Disparity::Subtraction.compute(0.5, 0.9, true), 0.0);
        // Lower-better (e.g. FPR): group above overall is unfair.
        let d = Disparity::Subtraction.compute(0.1, 0.3, false);
        assert!((d - 0.2).abs() < 1e-12);
        assert_eq!(Disparity::Subtraction.compute(0.3, 0.1, false), 0.0);
    }

    #[test]
    fn division_disparity_matches_eq3() {
        let d = Disparity::Division.compute(0.8, 0.4, true);
        assert!((d - 0.5).abs() < 1e-12);
        assert_eq!(Disparity::Division.compute(0.4, 0.8, true), 0.0);
        // Lower-better: observed=overall 0.1 vs group 0.2 → 1 − 0.1/0.2 = 0.5.
        let d = Disparity::Division.compute(0.1, 0.2, false);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_inputs_propagate() {
        assert!(Disparity::Subtraction.compute(f64::NAN, 0.5, true).is_nan());
        assert!(Disparity::Division.compute(0.5, f64::NAN, true).is_nan());
    }

    #[test]
    fn measure_values_read_confusion_matrix() {
        let cm = crate::confusion::ConfusionMatrix {
            tp: 8.0,
            fp: 2.0,
            fn_: 2.0,
            tn: 88.0,
        };
        assert!((FairnessMeasure::TruePositiveRateParity.value(&cm) - 0.8).abs() < 1e-12);
        assert!((FairnessMeasure::PositivePredictiveValueParity.value(&cm) - 0.8).abs() < 1e-12);
        assert!((FairnessMeasure::StatisticalParity.value(&cm) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn descriptions_exist() {
        for m in FairnessMeasure::ALL {
            assert!(!m.description().is_empty());
        }
    }
}
