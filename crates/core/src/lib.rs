//! # fairem-core
//!
//! The FairEM360 suite itself: a three-layer architecture for responsible
//! entity matching, reproducing the system of *"FairEM360: A Suite for
//! Responsible Entity Matching"* (PVLDB 2024) as a library.
//!
//! - **Data layer** — [`schema`] (Magellan-format tables), [`sensitive`]
//!   (group/subgroup extraction and one-hot entity encodings), [`prep`]
//!   (candidate pairing, splitting, featurization).
//! - **Logic layer** — [`blocking`], [`features`], [`matcher`] (the ten
//!   integrated matchers plus the evaluation-only external-score path),
//!   [`workload`], [`confusion`], [`fairness`] (paradigms, measures, and
//!   Eq. 2/3 disparity).
//! - **Presentation layer** — [`audit`], [`multiworkload`] (k-workload
//!   hypothesis testing), [`explain`] (the four explanation families),
//!   [`ensemble`] (group→matcher assignments and the fairness/performance
//!   Pareto frontier), and [`report`] (text/JSON rendering).
//!
//! The [`pipeline::SuiteBuilder`] front door (via
//! [`pipeline::FairEm360::builder`]) strings the four demo steps
//! together: data import → matcher selection → fairness evaluation →
//! ensemble-based resolution. Hot paths (feature matrices, matcher
//! train/score, audits, Pareto enumeration) fan out over the
//! `fairem-par` worker pool under a [`Parallelism`] policy; results are
//! identical for every policy, sequential included.
//!
//! # Example: audit a hand-built workload
//!
//! The logic layer can be used standalone — score pairs however you
//! like, wrap them in a [`workload::Workload`], and audit:
//!
//! ```
//! use fairem_core::audit::{AuditConfig, Auditor};
//! use fairem_core::fairness::FairnessMeasure;
//! use fairem_core::schema::Table;
//! use fairem_core::sensitive::{GroupSpace, SensitiveAttr};
//! use fairem_core::workload::{Correspondence, Workload};
//! use fairem_csvio::parse_csv_str;
//!
//! let t = Table::from_csv(parse_csv_str("id,g\na1,cn\na2,us\n").unwrap()).unwrap();
//! let space = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")]);
//! let (cn, us) = (space.encode(&t, 0), space.encode(&t, 1));
//!
//! // One missed cn match, one found us match.
//! let items = vec![
//!     Correspondence { a_row: 0, b_row: 0, score: 0.2, truth: true, left: cn, right: cn },
//!     Correspondence { a_row: 1, b_row: 1, score: 0.9, truth: true, left: us, right: us },
//! ];
//! let workload = Workload::new(items, 0.5);
//!
//! let auditor = Auditor::new(AuditConfig {
//!     measures: vec![FairnessMeasure::TruePositiveRateParity],
//!     min_support: 1,
//!     ..AuditConfig::default()
//! });
//! let report = auditor.audit("MyMatcher", &workload, &space);
//! let cn_cell = report.entry(FairnessMeasure::TruePositiveRateParity, "cn").unwrap();
//! assert!(cn_cell.unfair);
//! ```

pub mod audit;
pub mod blocking;
pub mod calibrate;
pub mod ckpt;
pub mod confusion;
pub mod ensemble;
pub mod error;
pub mod exec;
pub mod explain;
pub mod fairness;
pub mod fault;
pub mod features;
pub mod matcher;
pub mod multiworkload;
pub mod pipeline;
pub mod prep;
pub mod quarantine;
pub mod repair;
pub mod report;
pub mod resolution;
pub mod schema;
pub mod sensitive;
pub mod shard;
pub mod threshold;
pub mod workload;

pub use audit::{AuditConfig, AuditEntry, AuditReport, Auditor};
pub use blocking::{Blocker, CandidatePairs, SortedNeighborhood, TokenBlocking};
pub use calibrate::{CalibratedAudit, DistributionAudit, DistributionEntry, FairnessArea};
pub use fairem_calib::{CalibrationSpec, CalibratorKind, GroupCalibrator};
pub use ckpt::{fnv1a64, CheckpointStore, ShardRecord, CKPT_SCHEMA};
pub use confusion::ConfusionMatrix;
pub use ensemble::{EnsembleExplorer, ParetoPoint};
pub use error::{Stage, SuiteError, SuiteResult};
pub use exec::{Exec, PairBatch};
pub use fault::{FaultPlan, FaultSite};
pub use fairness::{Disparity, FairnessMeasure, Paradigm};
pub use matcher::{FailureCause, Matcher, MatcherFailure, MatcherKind, MatcherRegistry, MatcherStatus};
pub use fairem_obs::{Recorder, Snapshot, SpanStatus};
pub use fairem_par::{
    Budget, CancelToken, Interrupt, MemBudget, MemTracker, ParOutcome, Parallelism, WorkerPool,
};
pub use pipeline::{FairEm360, MatcherPerformance, Session, SuiteBuilder, SuiteConfig};
pub use shard::{window_len, PairCounts, Shard, ShardPlan, ShardPolicy};
pub use quarantine::{QuarantineReport, QuarantinedRow, RowIssue};
pub use resolution::{Feedback, Proposal, ResolutionSession};
pub use schema::Table;
pub use sensitive::{GroupId, GroupSpace, SensitiveAttr, SensitiveKind};
pub use workload::{Correspondence, Workload};
