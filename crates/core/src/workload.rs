//! Workloads: the logic layer's input (paper §2.2).
//!
//! A workload is a test set of correspondences `(eᵢ, eⱼ, h, y)`: a scored
//! record pair with its prediction and ground truth, carrying both
//! entities' group encodings. Summarizing a workload into per-group
//! confusion matrices uses the paper's *both-sides counting rule*: a
//! correspondence counts for the groups of `eᵢ` **and** the groups of
//! `eⱼ` (unlike regular classification where each row counts once).

use fairem_rng::rngs::StdRng;
use fairem_rng::{Rng, SeedableRng};

use crate::confusion::ConfusionMatrix;
use crate::sensitive::{GroupId, GroupVector};

/// One scored record pair with ground truth and group encodings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correspondence {
    /// Row of the left entity in table A.
    pub a_row: usize,
    /// Row of the right entity in table B.
    pub b_row: usize,
    /// Matcher score in `[0, 1]`.
    pub score: f64,
    /// Ground-truth match label `y`.
    pub truth: bool,
    /// Group encoding of the left entity.
    pub left: GroupVector,
    /// Group encoding of the right entity.
    pub right: GroupVector,
}

/// A workload: correspondences plus the matching threshold that turns
/// scores into predictions `h`.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The evaluated correspondences.
    pub items: Vec<Correspondence>,
    /// Score cut-off above which a pair is predicted a match.
    pub threshold: f64,
}

impl Workload {
    /// Create a workload.
    ///
    /// # Panics
    /// If the threshold is outside `[0, 1]`.
    pub fn new(items: Vec<Correspondence>, threshold: f64) -> Workload {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0,1]"
        );
        Workload { items, threshold }
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the workload holds no correspondences.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The prediction `h` for one correspondence under this workload's
    /// threshold.
    pub fn prediction(&self, c: &Correspondence) -> bool {
        c.score >= self.threshold
    }

    /// A copy with a different matching threshold (scores are reused).
    pub fn with_threshold(&self, threshold: f64) -> Workload {
        Workload::new(self.items.clone(), threshold)
    }

    /// Confusion matrix over the whole workload (each correspondence
    /// counted once) — the reference `Pr(α | β)` side of the parity.
    pub fn overall_confusion(&self) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::default();
        for c in &self.items {
            cm.record(self.prediction(c), c.truth, 1.0);
        }
        cm
    }

    /// Single-paradigm group confusion matrix: a correspondence is
    /// legitimate for `g` if either side belongs to `g`, and it counts
    /// once per member side (the both-sides rule).
    pub fn group_confusion(&self, g: GroupId) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::default();
        for c in &self.items {
            let weight = f64::from(c.left.contains(g)) + f64::from(c.right.contains(g));
            if weight > 0.0 {
                cm.record(self.prediction(c), c.truth, weight);
            }
        }
        cm
    }

    /// Ablation variant of [`Workload::group_confusion`]: count each
    /// legitimate correspondence **once**, the way naive classification
    /// auditing would. The paper's both-sides rule weighs intra-group
    /// pairs double; comparing the two isolates how much that convention
    /// moves the audited rates (see `bench_audit`'s `counting_rule`
    /// group and DESIGN.md §4).
    pub fn group_confusion_once(&self, g: GroupId) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::default();
        for c in &self.items {
            if c.left.contains(g) || c.right.contains(g) {
                cm.record(self.prediction(c), c.truth, 1.0);
            }
        }
        cm
    }

    /// Pairwise-paradigm confusion matrix for a subgroup pair: legitimate
    /// if one side is in `g1` and the other in `g2` (in either order),
    /// counted once.
    pub fn pairwise_confusion(&self, g1: GroupId, g2: GroupId) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::default();
        for c in &self.items {
            let forward = c.left.contains(g1) && c.right.contains(g2);
            let backward = c.left.contains(g2) && c.right.contains(g1);
            if forward || backward {
                cm.record(self.prediction(c), c.truth, 1.0);
            }
        }
        cm
    }

    /// Number of correspondences legitimate for `g` under the single
    /// paradigm (support; used to flag insufficient data).
    pub fn group_support(&self, g: GroupId) -> usize {
        self.items
            .iter()
            .filter(|c| c.left.contains(g) || c.right.contains(g))
            .count()
    }

    /// Bootstrap-resample a workload of the same size (sampling
    /// correspondences with replacement) — the multiple-workload
    /// analysis' workload generator.
    pub fn resample(&self, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.items.len();
        let items = (0..n).map(|_| self.items[rng.gen_range(0..n)]).collect();
        Workload {
            items,
            threshold: self.threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(score: f64, truth: bool, left: u64, right: u64) -> Correspondence {
        Correspondence {
            a_row: 0,
            b_row: 0,
            score,
            truth,
            left: GroupVector(left),
            right: GroupVector(right),
        }
    }

    fn workload() -> Workload {
        // Group 0 = cn, group 1 = us.
        Workload::new(
            vec![
                c(0.9, true, 0b01, 0b01),  // cn-cn TP
                c(0.8, false, 0b01, 0b10), // cn-us FP
                c(0.2, true, 0b10, 0b10),  // us-us FN
                c(0.1, false, 0b10, 0b01), // us-cn TN
            ],
            0.5,
        )
    }

    #[test]
    fn overall_counts_once() {
        let w = workload();
        let cm = w.overall_confusion();
        assert_eq!((cm.tp, cm.fp, cm.fn_, cm.tn), (1.0, 1.0, 1.0, 1.0));
    }

    #[test]
    fn group_counting_uses_both_sides() {
        let w = workload();
        let cn = w.group_confusion(GroupId(0));
        // cn-cn TP counts twice; cn-us FP counts once; us-cn TN once.
        assert_eq!((cn.tp, cn.fp, cn.fn_, cn.tn), (2.0, 1.0, 0.0, 1.0));
        let us = w.group_confusion(GroupId(1));
        assert_eq!((us.tp, us.fp, us.fn_, us.tn), (0.0, 1.0, 2.0, 1.0));
    }

    #[test]
    fn counting_rule_ablation_differs_on_intra_group_pairs() {
        let w = workload();
        let both = w.group_confusion(GroupId(0));
        let once = w.group_confusion_once(GroupId(0));
        // cn-cn TP counts twice under both-sides, once under naive.
        assert_eq!(both.tp, 2.0);
        assert_eq!(once.tp, 1.0);
        // Cross-group cells agree.
        assert_eq!(both.fp, once.fp);
        assert_eq!(once.total(), w.group_support(GroupId(0)) as f64);
    }

    #[test]
    fn pairwise_is_order_insensitive_and_counts_once() {
        let w = workload();
        let cn_us = w.pairwise_confusion(GroupId(0), GroupId(1));
        // cn-us FP and us-cn TN both legitimate.
        assert_eq!(
            (cn_us.tp, cn_us.fp, cn_us.fn_, cn_us.tn),
            (0.0, 1.0, 0.0, 1.0)
        );
        let us_cn = w.pairwise_confusion(GroupId(1), GroupId(0));
        assert_eq!(cn_us, us_cn);
        let cn_cn = w.pairwise_confusion(GroupId(0), GroupId(0));
        assert_eq!(
            (cn_cn.tp, cn_cn.fp, cn_cn.fn_, cn_cn.tn),
            (1.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn threshold_controls_predictions() {
        let w = workload();
        assert_eq!(w.overall_confusion().tp, 1.0);
        let strict = w.with_threshold(0.95);
        let cm = strict.overall_confusion();
        assert_eq!(cm.tp, 0.0);
        assert_eq!(cm.fn_, 2.0);
    }

    #[test]
    fn support_counts_legitimate_pairs() {
        let w = workload();
        assert_eq!(w.group_support(GroupId(0)), 3);
        assert_eq!(w.group_support(GroupId(1)), 3);
        assert_eq!(w.group_support(GroupId(5)), 0);
    }

    #[test]
    fn resample_is_deterministic_and_same_size() {
        let w = workload();
        let a = w.resample(9);
        let b = w.resample(9);
        assert_eq!(a.items, b.items);
        assert_eq!(a.len(), w.len());
        let c = w.resample(10);
        assert!(c.items != a.items || w.len() <= 1);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        let _ = Workload::new(vec![], 1.5);
    }
}
