//! Deterministic fault injection and panic containment.
//!
//! [`FaultPlan`] arms seeded faults at the pipeline's four injection
//! points — import, feature generation, matcher training, and matcher
//! scoring — so degraded-mode behavior is testable instead of
//! theoretical. [`guard`] is the shared panic-containment primitive the
//! pipeline wraps stage and matcher work in: it catches unwinds,
//! extracts the payload text, and suppresses the default panic-hook
//! stderr noise for panics it contains (other threads' panics are
//! untouched). Containment itself lives in `fairem-par` (the worker
//! pool needs the identical semantics per chunk); `guard` re-exports
//! that primitive so existing call sites keep working.

use fairem_rng::rngs::StdRng;
use fairem_rng::{Rng, SeedableRng};

use crate::matcher::MatcherKind;

/// Where a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// During table adoption (corrupts rows before schema checks).
    Import,
    /// While building the feature generator.
    FeatureGen,
    /// Inside a matcher's training call.
    Train,
    /// Inside a matcher's scoring call.
    Score,
}

/// What the fault does when it fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultMode {
    /// Panic with the given message.
    Panic(String),
    /// Replace a seeded subset of matcher scores with NaN/±inf/out-of-range
    /// values (Score site only).
    PoisonScores,
    /// Duplicate and blank a seeded subset of row ids (Import site only),
    /// exercising the quarantine path.
    CorruptRows,
    /// Sleep for `millis` at the injection point, polling the active
    /// [`CancelToken`] in small slices — a deterministic stand-in for a
    /// hung or pathologically slow matcher that deadline budgets can
    /// cut cooperatively.
    Stall {
        /// How long the stall runs if no budget cuts it.
        millis: u64,
    },
}

/// One armed fault.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFault {
    /// Injection point.
    pub site: FaultSite,
    /// Restrict to one matcher (`None` = any matcher / non-matcher stage).
    pub matcher: Option<MatcherKind>,
    /// Behavior at the injection point.
    pub mode: FaultMode,
}

/// A seeded, deterministic set of faults to inject into one run.
///
/// The default plan is empty (no faults). Builders return `self` so
/// plans compose: `FaultPlan::seeded(7).kill(DtMatcher, Train)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed driving every stochastic corruption this plan performs.
    pub seed: u64,
    /// Armed faults.
    pub faults: Vec<InjectedFault>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::seeded(0)
    }
}

impl FaultPlan {
    /// Empty plan with a corruption seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Arm a panic for one matcher at `Train` or `Score`.
    pub fn kill(mut self, matcher: MatcherKind, site: FaultSite) -> FaultPlan {
        self.faults.push(InjectedFault {
            site,
            matcher: Some(matcher),
            mode: FaultMode::Panic(format!("injected fault: {} killed", matcher.name())),
        });
        self
    }

    /// Arm a panic at a non-matcher stage (`Import` / `FeatureGen`).
    pub fn panic_at(mut self, site: FaultSite) -> FaultPlan {
        self.faults.push(InjectedFault {
            site,
            matcher: None,
            mode: FaultMode::Panic(format!("injected fault at {site:?}")),
        });
        self
    }

    /// Arm score poisoning (NaN/±inf/out-of-range) for one matcher.
    pub fn poison_scores(mut self, matcher: MatcherKind) -> FaultPlan {
        self.faults.push(InjectedFault {
            site: FaultSite::Score,
            matcher: Some(matcher),
            mode: FaultMode::PoisonScores,
        });
        self
    }

    /// Arm import-time row corruption (duplicate + blanked ids).
    pub fn corrupt_import(mut self) -> FaultPlan {
        self.faults.push(InjectedFault {
            site: FaultSite::Import,
            matcher: None,
            mode: FaultMode::CorruptRows,
        });
        self
    }

    /// Arm a cooperative stall of `millis` for one matcher at `Train`
    /// or `Score` — the deterministic way to test budgets and timeouts.
    pub fn stall(mut self, matcher: MatcherKind, site: FaultSite, millis: u64) -> FaultPlan {
        self.faults.push(InjectedFault {
            site,
            matcher: Some(matcher),
            mode: FaultMode::Stall { millis },
        });
        self
    }

    /// Arm a cooperative stall at a non-matcher stage
    /// (`Import` / `FeatureGen`), for whole-suite budget testing.
    pub fn stall_stage(mut self, site: FaultSite, millis: u64) -> FaultPlan {
        self.faults.push(InjectedFault {
            site,
            matcher: None,
            mode: FaultMode::Stall { millis },
        });
        self
    }

    /// True when no fault is armed.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn armed(&self, site: FaultSite, matcher: Option<MatcherKind>) -> Option<&InjectedFault> {
        self.faults
            .iter()
            .find(|f| f.site == site && (f.matcher.is_none() || f.matcher == matcher))
    }

    /// Fire any armed `Panic` fault for this site/matcher.
    ///
    /// # Panics
    /// By design, when a matching panic fault is armed.
    pub fn trip(&self, site: FaultSite, matcher: Option<MatcherKind>) {
        if let Some(f) = self.armed(site, matcher) {
            if let FaultMode::Panic(msg) = &f.mode {
                // fairem: allow(panic) — documented # Panics contract: fault injection fires by design
                panic!("{msg}");
            }
        }
    }

    /// Run any armed `Stall` fault for this site/matcher: sleep in
    /// ~5 ms slices, checkpointing `token` between slices so an armed
    /// budget (or an explicit cancel) cuts the stall cooperatively.
    /// Returns `Err` with the interrupt record when the token tripped
    /// mid-stall, `Ok` when the stall ran to completion (or none was
    /// armed).
    pub fn stall_if_armed(
        &self,
        site: FaultSite,
        matcher: Option<MatcherKind>,
        token: &fairem_par::CancelToken,
    ) -> Result<(), fairem_par::Interrupt> {
        let armed = self.faults.iter().find(|f| {
            f.site == site
                && (f.matcher.is_none() || f.matcher == matcher)
                && matches!(f.mode, FaultMode::Stall { .. })
        });
        let Some(InjectedFault {
            mode: FaultMode::Stall { millis },
            ..
        }) = armed
        else {
            return Ok(());
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(*millis);
        const SLICE: std::time::Duration = std::time::Duration::from_millis(5);
        while std::time::Instant::now() < deadline {
            token.checkpoint()?;
            std::thread::sleep(SLICE);
        }
        Ok(())
    }

    /// True when `PoisonScores` is armed for this matcher.
    pub fn poisons(&self, matcher: MatcherKind) -> bool {
        self.faults.iter().any(|f| {
            f.site == FaultSite::Score
                && f.mode == FaultMode::PoisonScores
                && (f.matcher.is_none() || f.matcher == Some(matcher))
        })
    }

    /// True when `CorruptRows` is armed at import.
    pub fn corrupts_import(&self) -> bool {
        self.faults
            .iter()
            .any(|f| f.site == FaultSite::Import && f.mode == FaultMode::CorruptRows)
    }

    /// Seeded score corruption: overwrite ~20% of `scores` (at least one)
    /// with hazardous values, cycling NaN, +inf, −inf, 2.5, −1.0.
    pub fn corrupt_scores(&self, matcher: MatcherKind, scores: &mut [f64]) {
        if scores.is_empty() {
            return;
        }
        const HAZARDS: [f64; 5] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 2.5, -1.0];
        let mut rng = StdRng::seed_from_u64(self.seed ^ (matcher as u64).wrapping_mul(0x9E37));
        let n = (scores.len() / 5).max(1);
        for k in 0..n {
            let i = rng.gen_range(0..scores.len());
            scores[i] = HAZARDS[k % HAZARDS.len()];
        }
    }

    /// Seeded import corruption on raw CSV rows: duplicates one row's id
    /// into another row and blanks a third (when enough rows exist).
    pub fn corrupt_rows(&self, rows: &mut [Vec<String>], id_col: usize) {
        if rows.len() < 2 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC0_44_0F);
        let src = rng.gen_range(0..rows.len());
        let dst = (src + 1 + rng.gen_range(0..rows.len() - 1)) % rows.len();
        let id = rows[src][id_col].clone();
        rows[dst][id_col] = id;
        if rows.len() >= 3 {
            // First index that is neither the duplicate source nor its
            // target — always exists with ≥3 rows.
            if let Some(blank) = (0..rows.len()).find(|&i| i != src && i != dst) {
                rows[blank][id_col] = String::new();
            }
        }
    }
}

/// Extract a readable message from a caught panic payload.
pub use fairem_par::panic_message;

/// Run `f`, containing any panic and returning its message as `Err`.
///
/// Panics raised inside `f` on *this* thread are kept off stderr (the
/// containment is the report); panics on other threads still reach the
/// default hook. The active-containment flag is restored by a drop
/// guard inside [`fairem_par::contain`], so it can never stay latched
/// even if payload extraction itself panics.
pub fn guard<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    fairem_par::contain(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_trips_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        plan.trip(FaultSite::Train, Some(MatcherKind::DtMatcher));
        plan.trip(FaultSite::Import, None);
        assert!(!plan.poisons(MatcherKind::DtMatcher));
        assert!(!plan.corrupts_import());
    }

    #[test]
    fn kill_targets_only_its_matcher() {
        let plan = FaultPlan::seeded(1).kill(MatcherKind::DtMatcher, FaultSite::Train);
        plan.trip(FaultSite::Train, Some(MatcherKind::SvmMatcher)); // no-op
        plan.trip(FaultSite::Score, Some(MatcherKind::DtMatcher)); // wrong site
        let err = guard(|| plan.trip(FaultSite::Train, Some(MatcherKind::DtMatcher)))
            .expect_err("armed fault must fire");
        assert!(err.contains("DTMatcher"), "{err}");
    }

    #[test]
    fn score_corruption_is_seeded_and_hazardous() {
        let plan = FaultPlan::seeded(9).poison_scores(MatcherKind::RfMatcher);
        assert!(plan.poisons(MatcherKind::RfMatcher));
        assert!(!plan.poisons(MatcherKind::DtMatcher));
        let mut a = vec![0.5; 40];
        let mut b = vec![0.5; 40];
        plan.corrupt_scores(MatcherKind::RfMatcher, &mut a);
        plan.corrupt_scores(MatcherKind::RfMatcher, &mut b);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "corruption must be deterministic"
        );
        assert!(a.iter().any(|v| !v.is_finite() || !(0.0..=1.0).contains(v)));
    }

    #[test]
    fn row_corruption_duplicates_and_blanks_ids() {
        let plan = FaultPlan::seeded(3).corrupt_import();
        assert!(plan.corrupts_import());
        let mut rows: Vec<Vec<String>> = (0..6)
            .map(|i| vec![format!("r{i}"), format!("v{i}")])
            .collect();
        plan.corrupt_rows(&mut rows, 0);
        let mut ids: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
        ids.sort_unstable();
        let dup = ids.windows(2).any(|w| !w[0].is_empty() && w[0] == w[1]);
        let blank = ids.iter().any(|i| i.is_empty());
        assert!(dup, "expected a duplicated id: {ids:?}");
        assert!(blank, "expected a blanked id: {ids:?}");
    }

    #[test]
    fn stall_runs_to_completion_without_a_budget() {
        use fairem_par::CancelToken;
        let plan = FaultPlan::seeded(1).stall(MatcherKind::DtMatcher, FaultSite::Train, 20);
        let t0 = std::time::Instant::now();
        plan.stall_if_armed(FaultSite::Train, Some(MatcherKind::DtMatcher), &CancelToken::inert())
            .expect("inert token never cuts the stall");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
        // Wrong matcher / site: no stall at all.
        plan.stall_if_armed(FaultSite::Train, Some(MatcherKind::SvmMatcher), &CancelToken::inert())
            .expect("not armed");
    }

    #[test]
    fn budget_cuts_a_long_stall_cooperatively() {
        use fairem_par::{Budget, CancelCause, CancelToken};
        let plan = FaultPlan::seeded(1).stall_stage(FaultSite::FeatureGen, 60_000);
        let token = CancelToken::with_budget(Budget::wall_ms(60));
        let t0 = std::time::Instant::now();
        let i = plan
            .stall_if_armed(FaultSite::FeatureGen, None, &token)
            .expect_err("60ms budget must cut a 60s stall");
        assert_eq!(i.cause, CancelCause::Deadline);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "stall must end promptly, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn guard_returns_value_or_panic_text() {
        assert_eq!(guard(|| 41 + 1), Ok(42));
        let err = guard(|| panic!("boom {}", 7)).expect_err("panic contained");
        assert_eq!(err, "boom 7");
    }
}
