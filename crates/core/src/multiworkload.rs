//! Multiple-workload analysis (paper §2.3): audit a matcher over `k`
//! workloads (bootstrap-resampled when only one test set exists), collect
//! the per-(group, measure) disparity populations, and run hypothesis
//! tests to decide whether observed unfairness is repeatable or chance.
//!
//! Null hypothesis: the matcher is fair on group `g` (mean disparity does
//! not exceed the fairness threshold). Alternative: it is unfair. The
//! null is rejected when `p ≤ α`. (The paper prints the final comparison
//! reversed; we implement the standard decision rule — see
//! `fairem_stats::hypothesis::TestResult::reject_at`.)

use fairem_stats::{one_sample_z_test, Summary, Tail};

use crate::audit::Auditor;
use crate::fairness::FairnessMeasure;
use crate::sensitive::GroupSpace;
use crate::workload::Workload;

/// The hypothesis-test outcome for one (group, measure).
#[derive(Debug, Clone)]
pub struct GroupTest {
    /// Group display name.
    pub group: String,
    /// Measure tested.
    pub measure: FairnessMeasure,
    /// Summary of the disparity population across workloads.
    pub disparities: Summary,
    /// z statistic against the fairness threshold.
    pub z: f64,
    /// One-sided p-value for "mean disparity exceeds the threshold".
    pub p_value: f64,
    /// Verdict at the configured significance level: unfairness is
    /// statistically significant, not chance.
    pub significant: bool,
    /// Workloads in which the group had a finite disparity.
    pub valid_workloads: usize,
}

/// The full multiple-workload analysis result.
#[derive(Debug, Clone)]
pub struct MultiWorkloadReport {
    /// Matcher analyzed.
    pub matcher: String,
    /// Number of workloads evaluated.
    pub k: usize,
    /// Significance level used.
    pub alpha: f64,
    /// Per-(group, measure) tests.
    pub tests: Vec<GroupTest>,
}

impl MultiWorkloadReport {
    /// Tests whose unfairness is significant.
    pub fn significant(&self) -> impl Iterator<Item = &GroupTest> {
        self.tests.iter().filter(|t| t.significant)
    }

    /// Look up one test.
    pub fn test(&self, measure: FairnessMeasure, group: &str) -> Option<&GroupTest> {
        self.tests
            .iter()
            .find(|t| t.measure == measure && t.group == group)
    }
}

/// Run the analysis over explicit workloads (e.g. test sets arriving at
/// different times).
///
/// # Panics
/// If fewer than two workloads are provided (no population to test).
pub fn analyze_workloads(
    matcher: &str,
    workloads: &[Workload],
    space: &GroupSpace,
    auditor: &Auditor,
    alpha: f64,
) -> MultiWorkloadReport {
    assert!(
        workloads.len() >= 2,
        "need at least two workloads for hypothesis testing"
    );
    assert!(alpha > 0.0 && alpha < 1.0, "significance level in (0,1)");
    let reports: Vec<_> = workloads
        .iter()
        .map(|w| auditor.audit(matcher, w, space))
        .collect();
    // Populations keyed by (group, measure) in first-report order.
    let mut tests = Vec::new();
    let first = &reports[0];
    for probe in &first.entries {
        let mut pop: Vec<f64> = Vec::with_capacity(reports.len());
        for r in &reports {
            if let Some(e) = r
                .entries
                .iter()
                .find(|e| e.group == probe.group && e.measure == probe.measure)
            {
                if e.disparity.is_finite() {
                    pop.push(e.disparity);
                }
            }
        }
        if pop.len() < 2 {
            continue; // not enough valid observations for this cell
        }
        let threshold = auditor.config.fairness_threshold;
        let result = one_sample_z_test(&pop, threshold, Tail::Greater);
        tests.push(GroupTest {
            group: probe.group.clone(),
            measure: probe.measure,
            disparities: Summary::of(&pop),
            z: result.statistic,
            p_value: result.p_value,
            significant: result.reject_at(alpha),
            valid_workloads: pop.len(),
        });
    }
    MultiWorkloadReport {
        matcher: matcher.to_owned(),
        k: workloads.len(),
        alpha,
        tests,
    }
}

/// Run the analysis on a single test set by generating `k` bootstrap
/// workloads (sampling correspondences with replacement), as the demo
/// does when only one dataset is provided.
pub fn analyze_bootstrap(
    matcher: &str,
    base: &Workload,
    space: &GroupSpace,
    auditor: &Auditor,
    k: usize,
    alpha: f64,
    seed: u64,
) -> MultiWorkloadReport {
    assert!(k >= 2, "need at least two bootstrap workloads");
    let workloads: Vec<Workload> = (0..k)
        .map(|i| base.resample(seed.wrapping_add(i as u64)))
        .collect();
    analyze_workloads(matcher, &workloads, space, auditor, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditConfig;
    use crate::schema::Table;
    use crate::sensitive::{GroupVector, SensitiveAttr};
    use crate::workload::Correspondence;
    use fairem_csvio::parse_csv_str;

    fn space() -> GroupSpace {
        let t = Table::from_csv(parse_csv_str("id,g\na1,cn\na2,us\n").unwrap()).unwrap();
        GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")])
    }

    fn c(score: f64, truth: bool, left: u64, right: u64) -> Correspondence {
        Correspondence {
            a_row: 0,
            b_row: 0,
            score,
            truth,
            left: GroupVector(left),
            right: GroupVector(right),
        }
    }

    /// Strongly biased workload: cn true matches nearly all missed.
    fn biased() -> Workload {
        let mut items = Vec::new();
        for i in 0..40 {
            items.push(c(if i < 4 { 0.9 } else { 0.1 }, true, 0b01, 0b01)); // cn: 10% found
            items.push(c(if i < 36 { 0.9 } else { 0.1 }, true, 0b10, 0b10)); // us: 90% found
            items.push(c(0.1, false, 0b01, 0b10));
        }
        Workload::new(items, 0.5)
    }

    fn auditor() -> Auditor {
        Auditor::new(AuditConfig {
            measures: vec![FairnessMeasure::TruePositiveRateParity],
            min_support: 5,
            ..AuditConfig::default()
        })
    }

    #[test]
    fn repeatable_unfairness_is_significant() {
        let report = analyze_bootstrap("LinReg", &biased(), &space(), &auditor(), 30, 0.05, 7);
        assert_eq!(report.k, 30);
        let cn = report
            .test(FairnessMeasure::TruePositiveRateParity, "cn")
            .unwrap();
        assert!(
            cn.significant,
            "p={} mean={}",
            cn.p_value, cn.disparities.mean
        );
        assert!(cn.disparities.mean > 0.3);
        assert!(cn.valid_workloads >= 25);
        let us = report
            .test(FairnessMeasure::TruePositiveRateParity, "us")
            .unwrap();
        assert!(!us.significant, "us should be fair, p={}", us.p_value);
        assert!(report.significant().count() >= 1);
    }

    #[test]
    fn fair_matcher_is_not_flagged() {
        // Both groups equally served.
        let mut items = Vec::new();
        for i in 0..40 {
            items.push(c(if i % 10 < 8 { 0.9 } else { 0.1 }, true, 0b01, 0b01));
            items.push(c(if i % 10 < 8 { 0.9 } else { 0.1 }, true, 0b10, 0b10));
            items.push(c(0.1, false, 0b01, 0b10));
        }
        let w = Workload::new(items, 0.5);
        let report = analyze_bootstrap("Fair", &w, &space(), &auditor(), 20, 0.05, 3);
        assert_eq!(report.significant().count(), 0);
    }

    #[test]
    fn explicit_workloads_path_works() {
        let w = biased();
        let ws = vec![w.resample(1), w.resample(2), w.resample(3)];
        let report = analyze_workloads("X", &ws, &space(), &auditor(), 0.05);
        assert_eq!(report.k, 3);
        assert!(!report.tests.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_workload_rejected() {
        let w = biased();
        let _ = analyze_workloads("X", &[w], &space(), &auditor(), 0.05);
    }
}
