//! Extension experiment (paper ref \[16\] motif): unfairness upstream of
//! the matcher — blocking can silently drop one group's true matches
//! before any matcher runs. Reports per-group blocking recall for token
//! blocking and sorted-neighborhood on FacultyMatch.

use fairem_bench::faculty_dataset;
use fairem_core::blocking::{
    blocking_recall, per_group_blocking_recall, sorted_neighborhood, token_blocking,
};
use fairem_core::schema::Table;
use fairem_core::sensitive::{GroupSpace, SensitiveAttr};
use fairem_bench::OrFail;

fn main() {
    println!("=== Extension: per-group blocking recall (FacultyMatch) ===\n");
    let d = faculty_dataset();
    let a = Table::from_csv(d.table_a.clone()).orfail("valid table");
    let b = Table::from_csv(d.table_b.clone()).orfail("valid table");
    let space = GroupSpace::extract(&[&a, &b], vec![SensitiveAttr::categorical("country")]);
    let enc_a = space.encode_table(&a);
    let enc_b = space.encode_table(&b);
    let truth: Vec<(usize, usize)> = d
        .matches
        .iter()
        .map(|(ia, ib)| (a.row_of(ia).orfail("id"), b.row_of(ib).orfail("id")))
        .collect();

    let schemes: [(&str, Vec<(usize, usize)>); 3] = [
        ("token(name)", token_blocking(&a, &b, &["name"], 200)),
        (
            "token(name,university)",
            token_blocking(&a, &b, &["name", "university"], 200),
        ),
        ("snm(name,w=10)", sorted_neighborhood(&a, &b, "name", 10)),
    ];
    for (name, candidates) in &schemes {
        println!(
            "{name}: {} candidates, overall recall {:.3}",
            candidates.len(),
            blocking_recall(candidates, &truth)
        );
        for (group, recall, support) in
            per_group_blocking_recall(candidates, &truth, &enc_a, &enc_b, &space)
        {
            println!("  {group:<6} recall {recall:.3}  ({support} true pairs)");
        }
        println!();
    }
    println!(
        "note: the suite's `prepare` force-includes ground-truth pairs, so matcher\n\
         training is insulated from blocking loss — but a production pipeline\n\
         without labeled truth would silently lose the low-recall group's matches."
    );
}
