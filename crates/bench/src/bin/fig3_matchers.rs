//! Figure 3 — the matcher-selection step: the ten integrated matchers
//! with their info cards and test-split matching quality.

use fairem_bench::faculty_session;
use fairem_core::matcher::MatcherKind;
use fairem_bench::OrFail;

fn main() {
    println!("=== Figure 3: matcher selection (FacultyMatch test split) ===\n");
    for k in MatcherKind::ALL {
        println!(
            "{:<14} [{}] {}",
            k.name(),
            if k.is_neural() {
                "neural    "
            } else {
                "non-neural"
            },
            k.description()
        );
    }
    println!("\ntraining all matchers ...\n");
    let session = faculty_session();
    println!(
        "{:<14} {:>8} {:>10} {:>8} {:>10}",
        "matcher", "F1", "precision", "recall", "accuracy"
    );
    for k in MatcherKind::ALL {
        let p = session.performance(k.name()).orfail("matcher trained");
        println!(
            "{:<14} {:>8.3} {:>10.3} {:>8.3} {:>10.3}",
            p.matcher, p.f1, p.precision, p.recall, p.accuracy
        );
    }
}
