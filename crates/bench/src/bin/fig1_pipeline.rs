//! Figure 1 — the three-layer architecture, exercised end to end:
//! data layer (import + group extraction) → logic layer (training,
//! workload summarization, fairness evaluation) → presentation layer
//! (audit, explanation, ensemble resolution).

use fairem_bench::{default_auditor, faculty_dataset, import};
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_core::matcher::MatcherKind;
use fairem_bench::OrFail;

fn main() {
    println!("=== Figure 1: FairEM360 three-layer pipeline (FacultyMatch) ===\n");

    // Data layer.
    let dataset = faculty_dataset();
    println!(
        "[data layer] dataset {}: |A|={} |B|={} matches={}",
        dataset.name,
        dataset.table_a.len(),
        dataset.table_b.len(),
        dataset.matches.len()
    );
    let suite = import(&dataset);

    // Logic layer.
    let session = suite.try_run(&MatcherKind::ALL).orfail("fleet trains");
    println!(
        "[logic layer] groups extracted: {:?}",
        session
            .space
            .ids()
            .map(|g| session.space.name(g).to_owned())
            .collect::<Vec<_>>()
    );
    println!(
        "[logic layer] trained {} matchers; test workload of {} correspondences\n",
        session.registry.len(),
        session.test_size()
    );

    // Presentation layer: audit.
    let auditor = default_auditor();
    let mut worst: Option<(String, String, FairnessMeasure, f64)> = None;
    for report in session.audit_all(&auditor) {
        let n_unfair = report.unfair().count();
        println!(
            "[presentation] {:>14}: max disparity {:.3}, unfair cells {}",
            report.matcher,
            report.max_disparity(),
            n_unfair
        );
        for e in report.unfair() {
            if worst.as_ref().is_none_or(|w| e.disparity > w.3) {
                worst = Some((
                    report.matcher.clone(),
                    e.group.clone(),
                    e.measure,
                    e.disparity,
                ));
            }
        }
    }

    // Presentation layer: explanation + resolution for the worst cell.
    if let Some((matcher, group, measure, disparity)) = worst {
        println!(
            "\nworst audited cell: {matcher} on group {group} w.r.t. {measure} (disparity {disparity:.3})"
        );
        let w = session.workload(&matcher).orfail("matcher trained");
        let explainer = session.explainer(&w, Disparity::Subtraction);
        println!(
            "explanation: {}",
            explainer.measure_based(measure, &group).narrative
        );
        let explorer = session.ensemble(0, measure, Disparity::Subtraction);
        let frontier = explorer.pareto_frontier();
        let best = &frontier[0];
        println!(
            "resolution: {} (unfairness {:.3}, worst-group performance {:.3})",
            explorer.describe(&best.assignment),
            best.unfairness,
            best.performance
        );
    } else {
        println!("\nno unfair cells at this threshold");
    }
}
