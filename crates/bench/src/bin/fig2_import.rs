//! Figure 2 — the data-import step: both demo datasets are loaded, their
//! schemas and group structure echoed, and both operating modes shown
//! (Matching-and-Evaluation with integrated matchers vs Evaluation-Only
//! with uploaded scores).

use fairem_bench::{faculty_dataset, import, nofly_dataset};
use fairem_core::matcher::{ExternalScores, MatcherKind};
use fairem_bench::OrFail;

fn main() {
    println!("=== Figure 2: data import ===\n");
    for dataset in [faculty_dataset(), nofly_dataset()] {
        println!("dataset {}:", dataset.name);
        println!(
            "  table A: {} records, schema {:?}",
            dataset.table_a.len(),
            dataset.table_a.header
        );
        println!(
            "  table B: {} records, schema {:?}",
            dataset.table_b.len(),
            dataset.table_b.header
        );
        println!("  ground-truth matches: {}", dataset.matches.len());
        println!("  sensitive attributes: {:?}", dataset.sensitive);
        let session = import(&dataset)
            .try_run(&[MatcherKind::DtMatcher])
            .orfail("DtMatcher trains");
        let names: Vec<String> = session
            .space
            .ids()
            .map(|g| session.space.name(g).to_owned())
            .collect();
        println!("  extracted (sub)groups [{}]: {:?}\n", names.len(), names);
    }

    // Evaluation-Only: the user uploads scores instead of training.
    println!("--- Evaluation-Only mode ---");
    let dataset = faculty_dataset();
    let session = import(&dataset)
        .try_run(&[MatcherKind::DtMatcher])
        .orfail("DtMatcher trains");
    // Simulate an uploaded prediction file: exact-name-equality matcher.
    let name_col_a = dataset.table_a.column_index("name").orfail("name column");
    let name_col_b = dataset.table_b.column_index("name").orfail("name column");
    let preds: Vec<((String, String), f64)> = dataset
        .table_a
        .rows
        .iter()
        .flat_map(|ra| {
            let na = ra[name_col_a].clone();
            let ida = ra[0].clone();
            dataset
                .table_b
                .rows
                .iter()
                .filter(move |rb| rb[name_col_b] == na)
                .map(move |rb| ((ida.clone(), rb[0].clone()), 1.0))
        })
        .collect();
    let ext = ExternalScores::new("UploadedExactName", preds);
    println!("uploaded predictions: {}", ext.len());
    let w = session.external_workload(&ext);
    let cm = w.overall_confusion();
    println!(
        "evaluation-only workload: n={}  TP={} FP={} FN={} TN={}  (F1 {:.3})",
        w.len(),
        cm.tp,
        cm.fp,
        cm.fn_,
        cm.tn,
        cm.f1()
    );
}
