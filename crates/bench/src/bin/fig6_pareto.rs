//! Figure 6 — the fairness/performance trade-off: the `mᵏ` ensemble
//! assignment space scored under PPV (the measure the demo's user
//! optimizes), with the Pareto frontier. The paper's highlighted point:
//! MCAN for the `cn` group at PPV 0.926 with unfairness 0.056.

use fairem_bench::faculty_session;
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_core::report::pareto_text;

fn main() {
    println!("=== Figure 6: ensemble fairness/performance Pareto frontier ===");
    println!("measure: PPVP (performance axis = worst-group PPV; x axis = unfairness)\n");
    let session = faculty_session();
    let explorer = session.ensemble(
        0,
        FairnessMeasure::PositivePredictiveValueParity,
        Disparity::Subtraction,
    );
    let m = explorer.matchers().len();
    let k = explorer.groups().len();
    println!(
        "assignment space: {m}^{k} = {} strategies",
        (m as u64).pow(k as u32)
    );

    let frontier = explorer.pareto_frontier();
    println!("{}", pareto_text(&explorer, &frontier));

    // Per-group PPV of each matcher (what the user hovers in the demo).
    println!("per-group PPV by matcher:");
    print!("{:<14}", "matcher");
    for g in explorer.groups() {
        print!(" {g:>8}");
    }
    println!();
    for (mi, name) in explorer.matchers().iter().enumerate() {
        print!("{name:<14}");
        for gi in 0..k {
            print!(" {:>8.3}", explorer.value(mi, gi));
        }
        println!();
    }

    // The paper's highlighted selection: the matcher chosen for cn on
    // the least-unfair frontier point.
    let best = &frontier[0];
    if let Some(cn_pos) = explorer.groups().iter().position(|g| g == "cn") {
        let chosen = &explorer.matchers()[best.assignment[cn_pos]];
        println!(
            "\nselected strategy assigns {} to cn: PPV {:.3}, strategy unfairness {:.3}",
            chosen,
            explorer.value(best.assignment[cn_pos], cn_pos),
            best.unfairness
        );
    }
}
