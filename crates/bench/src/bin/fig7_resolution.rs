//! Figure 7 — the post-resolution audit: re-audit under the ensemble
//! strategy selected from the Pareto frontier, showing the previously
//! unfair group now within the fairness threshold.

use fairem_bench::{default_auditor, faculty_session, FAIRNESS_THRESHOLD};
use fairem_core::fairness::{Disparity, FairnessMeasure};

fn main() {
    println!("=== Figure 7: audit after ensemble-based resolution ===\n");
    let session = faculty_session();
    let auditor = default_auditor();

    // Before: per-matcher audit of TPRP on cn (the unfair cell from Fig. 4).
    println!("before resolution (single matchers, TPRP on cn):");
    for report in session.audit_all(&auditor) {
        if let Some(e) = report.entry(FairnessMeasure::TruePositiveRateParity, "cn") {
            println!(
                "  {:<14} value {:>6.3} disparity {:>6.3} {}",
                report.matcher,
                e.group_value,
                e.disparity,
                if e.unfair { "UNFAIR" } else { "fair" }
            );
        }
    }

    // Resolve under TPRP and re-audit the combined strategy.
    let explorer = session.ensemble(
        0,
        FairnessMeasure::TruePositiveRateParity,
        Disparity::Subtraction,
    );
    let frontier = explorer.pareto_frontier();
    // Pick the best-performance point that is within the fairness
    // threshold (the demo's "accurate but still fair" preference).
    let chosen = frontier
        .iter()
        .rfind(|p| p.unfairness <= FAIRNESS_THRESHOLD)
        .unwrap_or(&frontier[0]);
    println!(
        "\nchosen strategy: {}",
        explorer.describe(&chosen.assignment)
    );
    println!(
        "strategy unfairness {:.3} (threshold {FAIRNESS_THRESHOLD}), worst-group TPR {:.3}\n",
        chosen.unfairness, chosen.performance
    );

    println!("after resolution (per-group TPR under the assignment):");
    let point = explorer.evaluate(&chosen.assignment);
    for (gi, g) in explorer.groups().iter().enumerate() {
        let v = explorer.value(chosen.assignment[gi], gi);
        println!(
            "  {:<6} ← {:<14} TPR {:>6.3}",
            g,
            explorer.matchers()[chosen.assignment[gi]],
            v
        );
    }
    println!(
        "\nresolution verdict: unfairness {:.3} ≤ {FAIRNESS_THRESHOLD} → {}",
        point.unfairness,
        if point.unfairness <= FAIRNESS_THRESHOLD {
            "RESOLVED"
        } else {
            "NOT RESOLVED"
        }
    );
}
