//! `bench_baseline` — the suite's end-to-end per-stage wall-time
//! baseline, measured through the `fairem-obs` recorder rather than an
//! external profiler, so the numbers are exactly what `--metrics`
//! reports in production.
//!
//! Two modes:
//!
//! - `bench_baseline [--out <path>]` (default `BENCH_baseline.json`):
//!   run WDCProducts and Citations end to end (import → train → score →
//!   audit → ensemble) under 1 and 4 fixed workers, and write the
//!   per-stage totals as JSON.
//! - `bench_baseline --validate <path>`: parse a `fairem-obs/1`
//!   snapshot (as written by `fairem audit --metrics <path>`), print its
//!   per-stage totals, and exit non-zero if it does not parse — the
//!   check-gate leg that keeps the snapshot schema honest.

use std::path::Path;
use std::process::ExitCode;

use fairem_bench::{default_auditor, MATCHING_THRESHOLD};
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_core::matcher::MatcherKind;
use fairem_core::pipeline::{FairEm360, SuiteConfig};
use fairem_core::prep::PrepConfig;
use fairem_core::sensitive::SensitiveAttr;
use fairem_core::{Parallelism, Recorder};
use fairem_csvio::Json;
use fairem_datasets::{citations, wdc_products, CitationsConfig, GeneratedDataset, ProductsConfig};
use fairem_bench::OrFail;

/// The CLI's default fleet — what `fairem audit` trains when no
/// `--matchers` flag is given, so the baseline matches real runs.
const MATCHERS: &[MatcherKind] = &[
    MatcherKind::DtMatcher,
    MatcherKind::RfMatcher,
    MatcherKind::LinRegMatcher,
];

/// The worker counts the determinism tests pin (sequential and a small
/// fixed pool).
const JOBS: &[usize] = &[1, 4];

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("--validate") => {
            let Some(path) = argv.get(1) else {
                eprintln!("--validate expects a snapshot path");
                return ExitCode::FAILURE;
            };
            validate(Path::new(path))
        }
        Some("--out") => {
            let Some(path) = argv.get(1) else {
                eprintln!("--out expects an output path");
                return ExitCode::FAILURE;
            };
            baseline(Path::new(path))
        }
        None => baseline(Path::new("BENCH_baseline.json")),
        Some(other) => {
            eprintln!("unknown flag {other:?}; usage: bench_baseline [--out <path> | --validate <path>]");
            ExitCode::FAILURE
        }
    }
}

/// Run every (dataset × jobs) cell and write the baseline JSON.
fn baseline(out: &Path) -> ExitCode {
    let datasets = [
        wdc_products(&ProductsConfig::default()),
        citations(&CitationsConfig::default()),
    ];
    let mut runs = Vec::new();
    for dataset in &datasets {
        for &jobs in JOBS {
            eprintln!("measuring {} under {jobs} worker(s)...", dataset.name);
            let stages = run_once(dataset, jobs);
            let mut obj = Json::obj([
                ("dataset", Json::Str(dataset.name.clone())),
                ("jobs", Json::Num(jobs as f64)),
            ]);
            let mut table = Json::obj([]);
            for (stage, secs) in &stages {
                println!("  {:>12} {:>10.4}s  ({} x{jobs})", stage, secs, dataset.name);
                table.push(stage.clone(), Json::Num(*secs));
            }
            obj.push("stage_secs", table);
            runs.push(obj);
        }
    }
    let doc = Json::obj([
        ("schema", Json::Str("fairem-bench-baseline/1".into())),
        (
            "matchers",
            Json::arr(MATCHERS.iter().map(|k| Json::Str(k.name().into()))),
        ),
        ("runs", Json::arr(runs)),
    ]);
    if let Err(e) = std::fs::write(out, doc.to_string_pretty() + "\n") {
        eprintln!("writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    ExitCode::SUCCESS
}

/// One full pipeline pass under a live recorder; returns the per-stage
/// totals ([`fairem_obs::Snapshot::stage_totals`] order).
fn run_once(dataset: &GeneratedDataset, jobs: usize) -> Vec<(String, f64)> {
    let observe = Recorder::enabled();
    let config = SuiteConfig {
        prep: PrepConfig {
            // Both benchmark datasets block on `title`.
            blocking_columns: vec!["title".into()],
            negative_ratio: 6.0,
            train_frac: 0.55,
            valid_frac: 0.05,
            ..PrepConfig::default()
        },
        matching_threshold: MATCHING_THRESHOLD,
        parallelism: Parallelism::Fixed(jobs),
        observe: observe.clone(),
        ..SuiteConfig::default()
    };
    let sensitive: Vec<SensitiveAttr> = dataset
        .sensitive
        .iter()
        .map(|c| SensitiveAttr::categorical(c.clone()))
        .collect();
    let session = FairEm360::builder()
        .tables(dataset.table_a.clone(), dataset.table_b.clone())
        .ground_truth(dataset.matches.clone())
        .sensitive(sensitive)
        .config(config)
        .build()
        .orfail("generated datasets are schema-valid")
        .try_run(MATCHERS)
        .orfail("baseline fleet trains");
    let _ = session.audit_all(&default_auditor());
    let _ = session
        .ensemble(0, FairnessMeasure::AccuracyParity, Disparity::Subtraction)
        .pareto_frontier();
    observe.snapshot().stage_totals()
}

/// Parse a `fairem-obs/1` snapshot and print per-stage totals (root
/// spans aggregated by name, first-seen order — the same reduction as
/// `Snapshot::stage_totals`).
fn validate(path: &Path) -> ExitCode {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("reading {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let json = match Json::parse(&raw) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("{} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if json.get("schema").and_then(Json::as_str) != Some("fairem-obs/1") {
        eprintln!("{} does not carry the fairem-obs/1 schema", path.display());
        return ExitCode::FAILURE;
    }
    let Some(Json::Arr(spans)) = json.get("spans") else {
        eprintln!("{} has no spans array", path.display());
        return ExitCode::FAILURE;
    };
    let mut order: Vec<&str> = Vec::new();
    let mut totals: Vec<f64> = Vec::new();
    for span in spans {
        if span.get("parent") != Some(&Json::Null) {
            continue;
        }
        let (Some(name), Some(secs)) = (
            span.get("name").and_then(Json::as_str),
            span.get("secs").and_then(Json::as_num),
        ) else {
            eprintln!("malformed span record: {}", span.to_string_compact());
            return ExitCode::FAILURE;
        };
        match order.iter().position(|n| *n == name) {
            Some(i) => totals[i] += secs,
            None => {
                order.push(name);
                totals.push(secs);
            }
        }
    }
    if order.is_empty() {
        eprintln!("{} contains no root spans", path.display());
        return ExitCode::FAILURE;
    }
    println!("per-stage totals from {}:", path.display());
    for (name, secs) in order.iter().zip(&totals) {
        println!("  {name:>12} {secs:>10.4}s");
    }
    ExitCode::SUCCESS
}
