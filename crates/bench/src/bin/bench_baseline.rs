//! `bench_baseline` — the suite's end-to-end per-stage wall-time
//! baseline, measured through the `fairem-obs` recorder rather than an
//! external profiler, so the numbers are exactly what `--metrics`
//! reports in production.
//!
//! Three modes:
//!
//! - `bench_baseline [--out <path>]` (default `BENCH_baseline.json`):
//!   run WDCProducts and Citations end to end (import → train → score →
//!   audit → ensemble) under 1 and 4 fixed workers, and write the
//!   per-stage totals as JSON (schema `fairem-bench-baseline/2`). Runs
//!   measured by this binary carry an `engine` tag; engine-less runs in
//!   an existing baseline file are the pre-columnar scalar history and
//!   are preserved verbatim, so the speedup denominator stays pinned.
//! - `bench_baseline --validate <path>`: parse a `fairem-obs/1`
//!   snapshot (as written by `fairem audit --metrics <path>`), print its
//!   per-stage totals, and exit non-zero if it does not parse — the
//!   check-gate leg that keeps the snapshot schema honest.
//! - `bench_baseline --gate [<baseline path>]`: the performance gate.
//!   Fails unless (a) sequential Citations featurization beats the
//!   committed scalar baseline by ≥3×, and (b) on a generated ~10⁵-pair
//!   batch a 4-worker pool is ≥2× faster than sequential — or, on a
//!   single-hardware-thread host where a speedup is physically
//!   impossible, the pool costs at most 35% overhead.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use fairem_bench::{default_auditor, MATCHING_THRESHOLD};
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_core::features::FeatureGenerator;
use fairem_core::matcher::MatcherKind;
use fairem_core::pipeline::{FairEm360, SuiteConfig};
use fairem_core::prep::PrepConfig;
use fairem_core::schema::Table;
use fairem_core::sensitive::SensitiveAttr;
use fairem_core::threshold::default_grid;
use fairem_core::CalibrationSpec;
use fairem_core::{Exec, PairBatch, ParOutcome, Parallelism, Recorder, Snapshot, WorkerPool};
use fairem_csvio::Json;
use fairem_datasets::{citations, wdc_products, CitationsConfig, GeneratedDataset, ProductsConfig};
use fairem_bench::OrFail;

/// Baseline file schema. Version 2 added the per-run `engine` tag;
/// engine-less runs are implicitly the version-1 scalar measurements.
const SCHEMA: &str = "fairem-bench-baseline/2";

/// Engine tag stamped on runs measured by this binary.
const ENGINE: &str = "columnar";

/// The CLI's default fleet — what `fairem audit` trains when no
/// `--matchers` flag is given, so the baseline matches real runs.
const MATCHERS: &[MatcherKind] = &[
    MatcherKind::DtMatcher,
    MatcherKind::RfMatcher,
    MatcherKind::LinRegMatcher,
];

/// The worker counts the determinism tests pin (sequential and a small
/// fixed pool).
const JOBS: &[usize] = &[1, 4];

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("--validate") => {
            let Some(path) = argv.get(1) else {
                eprintln!("--validate expects a snapshot path");
                return ExitCode::FAILURE;
            };
            validate(Path::new(path))
        }
        Some("--out") => {
            let Some(path) = argv.get(1) else {
                eprintln!("--out expects an output path");
                return ExitCode::FAILURE;
            };
            baseline(Path::new(path))
        }
        Some("--gate") => {
            let path = argv.get(1).map(String::as_str).unwrap_or("BENCH_baseline.json");
            gate(Path::new(path))
        }
        None => baseline(Path::new("BENCH_baseline.json")),
        Some(other) => {
            eprintln!("unknown flag {other:?}; usage: bench_baseline [--out <path> | --validate <path> | --gate [<baseline>]]");
            ExitCode::FAILURE
        }
    }
}

/// Runs carried over from an existing baseline file: every engine-less
/// (scalar-era) run, verbatim. Columnar runs are re-measured, so stale
/// ones are dropped rather than accumulated.
fn preserved_runs(out: &Path) -> Vec<Json> {
    let Ok(raw) = std::fs::read_to_string(out) else {
        return Vec::new();
    };
    let Ok(doc) = Json::parse(&raw) else {
        eprintln!("warning: existing {} is not valid JSON; starting fresh", out.display());
        return Vec::new();
    };
    match doc.get("runs") {
        Some(Json::Arr(runs)) => runs
            .iter()
            .filter(|r| r.get("engine").is_none())
            .cloned()
            .collect(),
        _ => Vec::new(),
    }
}

/// Run every (dataset × jobs) cell and write the baseline JSON,
/// preserving any scalar-era runs already in the file.
fn baseline(out: &Path) -> ExitCode {
    let datasets = [
        wdc_products(&ProductsConfig::default()),
        citations(&CitationsConfig::default()),
    ];
    let mut runs = preserved_runs(out);
    for dataset in &datasets {
        for &jobs in JOBS {
            eprintln!("measuring {} under {jobs} worker(s)...", dataset.name);
            let snapshot = run_once(dataset, jobs);
            let stages = snapshot.stage_totals();
            let mut obj = Json::obj([
                ("dataset", Json::Str(dataset.name.clone())),
                ("jobs", Json::Num(jobs as f64)),
                ("engine", Json::Str(ENGINE.into())),
            ]);
            let mut table = Json::obj([]);
            for (stage, secs) in &stages {
                println!("  {:>12} {:>10.4}s  ({} x{jobs})", stage, secs, dataset.name);
                table.push(stage.clone(), Json::Num(*secs));
            }
            obj.push("stage_secs", table);
            // Memory accounting from the same recorder pass: overall
            // peak-resident, per-stage peaks (the `mem.stage_peak_bytes.*`
            // gauge family), and the shard count the run executed with.
            let mut peaks = Json::obj([]);
            const STAGE_PEAK: &str = "mem.stage_peak_bytes.";
            for (name, value) in &snapshot.gauges {
                if let Some(stage) = name.strip_prefix(STAGE_PEAK) {
                    println!(
                        "  {:>12} {:>10.1} KiB peak  ({} x{jobs})",
                        stage,
                        value / 1024.0,
                        dataset.name
                    );
                    peaks.push(stage.to_owned(), Json::Num(*value));
                }
            }
            obj.push("stage_peak_bytes", peaks);
            obj.push("peak_resident_bytes", Json::Num(gauge(&snapshot, "mem.peak_bytes")));
            obj.push("shards", Json::Num(gauge(&snapshot, "shard.count").max(1.0)));
            runs.push(obj);
        }
    }
    let doc = Json::obj([
        ("schema", Json::Str(SCHEMA.into())),
        (
            "matchers",
            Json::arr(MATCHERS.iter().map(|k| Json::Str(k.name().into()))),
        ),
        ("runs", Json::arr(runs)),
    ]);
    if let Err(e) = std::fs::write(out, doc.to_string_pretty() + "\n") {
        eprintln!("writing {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    ExitCode::SUCCESS
}

/// Read one gauge out of a snapshot (0.0 when absent).
fn gauge(snapshot: &Snapshot, name: &str) -> f64 {
    snapshot
        .gauges
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0.0)
}

/// One full pipeline pass under a live recorder; returns the recorder
/// snapshot (stage wall times via
/// [`fairem_obs::Snapshot::stage_totals`], memory peaks in the
/// `mem.*` gauges).
fn run_once(dataset: &GeneratedDataset, jobs: usize) -> Snapshot {
    let observe = Recorder::enabled();
    let config = SuiteConfig {
        prep: PrepConfig {
            // Both benchmark datasets block on `title`.
            blocking_columns: vec!["title".into()],
            negative_ratio: 6.0,
            train_frac: 0.55,
            valid_frac: 0.05,
            ..PrepConfig::default()
        },
        matching_threshold: MATCHING_THRESHOLD,
        parallelism: Parallelism::Fixed(jobs),
        observe: observe.clone(),
        // Per-group calibration is a production stage since the
        // `--calibrate` flag landed; bake it into the baseline so its
        // `calib` span shows up in every measured run.
        calibration: Some(CalibrationSpec::isotonic()),
        ..SuiteConfig::default()
    };
    let sensitive: Vec<SensitiveAttr> = dataset
        .sensitive
        .iter()
        .map(|c| SensitiveAttr::categorical(c.clone()))
        .collect();
    let session = FairEm360::builder()
        .tables(dataset.table_a.clone(), dataset.table_b.clone())
        .ground_truth(dataset.matches.clone())
        .sensitive(sensitive)
        .config(config)
        .build()
        .orfail("generated datasets are schema-valid")
        .try_run(MATCHERS)
        .orfail("baseline fleet trains");
    let _ = session.audit_all(&default_auditor());
    let grid = default_grid();
    let groups = session.space.level1_of_attr(0);
    for name in session.matcher_names() {
        let _ = session.calibrated_audit(
            name,
            &[FairnessMeasure::AccuracyParity],
            Disparity::Subtraction,
            &grid,
            &groups,
        );
    }
    let _ = session
        .ensemble(0, FairnessMeasure::AccuracyParity, Disparity::Subtraction)
        .pareto_frontier();
    observe.snapshot()
}

/// Parse a `fairem-obs/1` snapshot and print per-stage totals (root
/// spans aggregated by name, first-seen order — the same reduction as
/// `Snapshot::stage_totals`).
fn validate(path: &Path) -> ExitCode {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("reading {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let json = match Json::parse(&raw) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("{} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if json.get("schema").and_then(Json::as_str) != Some("fairem-obs/1") {
        eprintln!("{} does not carry the fairem-obs/1 schema", path.display());
        return ExitCode::FAILURE;
    }
    let Some(Json::Arr(spans)) = json.get("spans") else {
        eprintln!("{} has no spans array", path.display());
        return ExitCode::FAILURE;
    };
    let mut order: Vec<&str> = Vec::new();
    let mut totals: Vec<f64> = Vec::new();
    for span in spans {
        if span.get("parent") != Some(&Json::Null) {
            continue;
        }
        let (Some(name), Some(secs)) = (
            span.get("name").and_then(Json::as_str),
            span.get("secs").and_then(Json::as_num),
        ) else {
            eprintln!("malformed span record: {}", span.to_string_compact());
            return ExitCode::FAILURE;
        };
        match order.iter().position(|n| *n == name) {
            Some(i) => totals[i] += secs,
            None => {
                order.push(name);
                totals.push(secs);
            }
        }
    }
    if order.is_empty() {
        eprintln!("{} contains no root spans", path.display());
        return ExitCode::FAILURE;
    }
    println!("per-stage totals from {}:", path.display());
    for (name, secs) in order.iter().zip(&totals) {
        println!("  {name:>12} {secs:>10.4}s");
    }
    ExitCode::SUCCESS
}

/// The scalar-era (engine-less) Citations sequential `features` total
/// from the committed baseline — the denominator the columnar hot path
/// must beat by 3×.
fn scalar_citations_features(path: &Path) -> Option<f64> {
    let doc = Json::parse(&std::fs::read_to_string(path).ok()?).ok()?;
    let Some(Json::Arr(runs)) = doc.get("runs") else {
        return None;
    };
    runs.iter()
        .find(|r| {
            r.get("engine").is_none()
                && r.get("dataset").and_then(Json::as_str) == Some("Citations")
                && r.get("jobs").and_then(Json::as_num) == Some(1.0)
        })?
        .get("stage_secs")?
        .get("features")
        .and_then(Json::as_num)
}

/// Best-of-3 wall time for one full batch featurization under `workers`.
fn time_matrix(gen: &FeatureGenerator, pairs: &[(usize, usize)], workers: usize) -> f64 {
    let exec = Exec::with_pool(WorkerPool::new(workers));
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let outcome = gen.matrix(&PairBatch::new(pairs), &exec);
        let secs = start.elapsed().as_secs_f64();
        let ParOutcome::Complete(m) = outcome else {
            // fairem: allow(panic) — bench harness uses an inert exec that cannot interrupt
            unreachable!("inert exec must not interrupt")
        };
        assert!(m.rows() == pairs.len(), "short matrix");
        best = best.min(secs);
    }
    best
}

/// The performance gate (check.sh's perf leg). Two assertions:
///
/// 1. Sequential Citations featurization (the full pipeline `features`
///    stage, build included) is ≥3× faster than the committed scalar
///    baseline.
/// 2. On a generated ~10⁵-pair batch, a 4-worker pool is ≥2× faster
///    than sequential. On a host with a single hardware thread a
///    speedup is physically impossible, so the gate degrades to the
///    claim that still holds there: coarse chunking keeps pool overhead
///    ≤35% over sequential.
fn gate(baseline_path: &Path) -> ExitCode {
    let mut ok = true;

    // Leg 1: columnar vs committed scalar baseline, sequentially.
    let Some(scalar) = scalar_citations_features(baseline_path) else {
        eprintln!(
            "gate: {} has no scalar Citations jobs=1 run (engine-less, schema 1 heritage)",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    };
    let dataset = citations(&CitationsConfig::default());
    eprintln!("gate: measuring Citations sequential features...");
    let stages = run_once(&dataset, 1).stage_totals();
    let Some(features) = stages
        .iter()
        .find(|(n, _)| n == "features")
        .map(|(_, s)| *s)
    else {
        eprintln!("gate: pipeline run recorded no `features` stage");
        return ExitCode::FAILURE;
    };
    let speedup = scalar / features;
    println!(
        "gate: Citations seq features {features:.4}s vs scalar {scalar:.4}s -> {speedup:.2}x (need 3.00x)"
    );
    if speedup < 3.0 {
        eprintln!("gate: FAIL — sequential featurization regressed below the 3x bar");
        ok = false;
    }

    // Leg 2: sequential vs pooled on a ~1e5-pair generated batch.
    let d = wdc_products(&ProductsConfig::default());
    let a = Table::from_csv(d.table_a.clone()).orfail("generated table A is schema-valid");
    let b = Table::from_csv(d.table_b.clone()).orfail("generated table B is schema-valid");
    let exclude: Vec<&str> = d.sensitive.iter().map(String::as_str).collect();
    let generator = FeatureGenerator::build(&a, &b, &exclude);
    let pairs: Vec<(usize, usize)> = (0..100_000)
        .map(|i| (i % a.len(), (i * 31) % b.len()))
        .collect();
    eprintln!("gate: measuring {} pairs, sequential vs 4 workers...", pairs.len());
    let seq = time_matrix(&generator, &pairs, 1);
    let par = time_matrix(&generator, &pairs, 4);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 2 {
        let speedup = seq / par;
        println!(
            "gate: 1e5-pair batch seq {seq:.4}s vs 4 workers {par:.4}s -> {speedup:.2}x (need 2.00x, {cores} hardware threads)"
        );
        if speedup < 2.0 {
            eprintln!("gate: FAIL — pooled featurization below the 2x bar");
            ok = false;
        }
    } else {
        let overhead = par / seq;
        println!(
            "gate: 1e5-pair batch seq {seq:.4}s vs 4 workers {par:.4}s -> {overhead:.2}x overhead (single hardware thread; cap 1.35x)"
        );
        if par > seq * 1.35 {
            eprintln!("gate: FAIL — pool overhead above the 35% single-core cap");
            ok = false;
        }
    }

    if ok {
        println!("gate: PASS");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
