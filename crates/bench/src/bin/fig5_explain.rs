//! Figure 5 — unfairness explanations for the worst audited cell (the
//! paper shows the `cn` group w.r.t. TPRP under LinRegMatcher): all four
//! explanation families.

use fairem_bench::{default_auditor, faculty_session};
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_bench::OrFail;

fn main() {
    println!("=== Figure 5: unfairness explanations ===\n");
    let session = faculty_session();
    let auditor = default_auditor();

    // Find the unfair (matcher, measure, group) cell with max disparity.
    let mut target: Option<(String, FairnessMeasure, String, f64)> = None;
    for report in session.audit_all(&auditor) {
        for e in report.unfair() {
            if target.as_ref().is_none_or(|t| e.disparity > t.3) {
                target = Some((
                    report.matcher.clone(),
                    e.measure,
                    e.group.clone(),
                    e.disparity,
                ));
            }
        }
    }
    let Some((matcher, measure, group, disparity)) = target else {
        println!("no unfair cell found at this threshold — nothing to explain");
        return;
    };
    println!(
        "explaining: {matcher} unfair on {group} w.r.t. {measure} (disparity {disparity:.3})\n"
    );

    let workload = session.workload(&matcher).orfail("matcher trained");
    let explainer = session.explainer(&workload, Disparity::Subtraction);

    println!("--- measure-based explanation ---");
    let me = explainer.measure_based(measure, &group);
    println!(
        "confusion (both-sides counting): TP={} FP={} FN={} TN={}",
        me.confusion.tp, me.confusion.fp, me.confusion.fn_, me.confusion.tn
    );
    for (name, gv, ov) in &me.rates {
        println!("  {name:<9} group {gv:>7.3}   overall {ov:>7.3}");
    }
    println!("  -> {}\n", me.narrative);

    println!("--- group-representation explanation ---");
    let rep = explainer.representation(&group);
    println!(
        "  test workload share: {:.3} overall, {:.3} among matches, {:.3} among non-matches",
        rep.share_overall, rep.share_matches, rep.share_nonmatches
    );
    if let Some((o, m, n)) = rep.train_shares {
        println!(
            "  train split share:  {o:.3} overall, {m:.3} among matches, {n:.3} among non-matches"
        );
    }
    println!();

    println!("--- subgroup-based explanation ---");
    let sub = explainer.subgroup(measure, &group);
    if sub.rows.is_empty() {
        println!("  (single sensitive attribute: {group} has no subgroups)");
    } else {
        for row in &sub.rows {
            println!(
                "  {:<18} value {:>7.3} disparity {:>7.3} support {}",
                row.group, row.value, row.disparity, row.support
            );
        }
    }
    println!();

    println!("--- example-based explanation (problematic pairs) ---");
    let ex = explainer.examples(measure, &group, 5, 2024);
    for (i, e) in ex.examples.iter().enumerate() {
        println!(
            "  #{i} score {:.3} predicted={} truth={}\n     A: {}\n     B: {}",
            e.score, e.predicted, e.truth, e.left, e.right
        );
    }
}
