//! §2.3 "Multiple-workload Analysis" — k bootstrap workloads + z-test
//! hypothesis testing: is the unfairness observed in Figure 4 repeatable
//! or chance? Also reports the subtraction-vs-division ablation.

use fairem_bench::{default_auditor, faculty_session};
use fairem_core::audit::{AuditConfig, Auditor};
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_core::multiworkload::analyze_bootstrap;
use fairem_core::report::multiworkload_text;
use fairem_bench::OrFail;

const K: usize = 30;
const ALPHA: f64 = 0.05;

fn main() {
    println!("=== Multiple-workload analysis (k={K} bootstrap workloads, alpha={ALPHA}) ===\n");
    let session = faculty_session();
    let auditor = default_auditor();

    for matcher in ["LinRegMatcher", "MCAN"] {
        let base = session.workload(matcher).orfail("matcher trained");
        let report = analyze_bootstrap(matcher, &base, &session.space, &auditor, K, ALPHA, 2024);
        println!("{}", multiworkload_text(&report));
        let sig: Vec<String> = report
            .significant()
            .map(|t| format!("{}:{}", t.measure.name(), t.group))
            .collect();
        println!(
            "-> significant unfairness: {}\n",
            if sig.is_empty() {
                "none".to_owned()
            } else {
                sig.join(", ")
            }
        );
    }

    // Ablation: subtraction vs division disparity on the same populations.
    println!("--- ablation: subtraction vs division disparity (LinRegMatcher, TPRP) ---");
    let base = session
        .workload("LinRegMatcher")
        .orfail("LinRegMatcher trained");
    for disparity in [Disparity::Subtraction, Disparity::Division] {
        let auditor = Auditor::new(AuditConfig {
            measures: vec![FairnessMeasure::TruePositiveRateParity],
            disparity,
            min_support: 20,
            ..AuditConfig::default()
        });
        let report = analyze_bootstrap(
            "LinRegMatcher",
            &base,
            &session.space,
            &auditor,
            K,
            ALPHA,
            7,
        );
        for t in &report.tests {
            println!(
                "  {:<11} {:<6} mean disparity {:.3} ± {:.3}  p={:.2e}  {}",
                disparity.name(),
                t.group,
                t.disparities.mean,
                t.disparities.std,
                t.p_value,
                if t.significant { "SIGNIFICANT" } else { "ns" }
            );
        }
    }
}
