//! Extension experiment (paper refs \[12\]/\[16\]): data-repair resolution —
//! retrain the unfair matcher with the disadvantaged group's training
//! matches oversampled, and compare the audited disparity.

use fairem_bench::{default_auditor, faculty_session};
use fairem_core::fairness::FairnessMeasure;
use fairem_core::matcher::MatcherKind;
use fairem_core::repair::RepairOutcome;
use fairem_bench::OrFail;

fn main() {
    println!("=== Extension: data-repair resolution (oversampling cn training matches) ===\n");
    let session = faculty_session();
    let auditor = default_auditor();
    let cn = session.space.by_name("cn").orfail("cn group exists");

    let before_report = session
        .audit("LinRegMatcher", &auditor)
        .orfail("LinRegMatcher trained");
    let before = before_report
        .entry(FairnessMeasure::TruePositiveRateParity, "cn")
        .orfail("cn entry")
        .disparity;
    println!("LinRegMatcher cn TPRP disparity before repair: {before:.3}\n");

    println!("factor  cn-TPR-disparity  overall-F1  verdict");
    for factor in [1usize, 2, 3, 5, 8] {
        let repaired =
            session.retrain_with_oversampling(MatcherKind::LinRegMatcher, cn, factor, true);
        let report = auditor.audit("LinRegMatcher+repair", &repaired, &session.space);
        let entry = report
            .entry(FairnessMeasure::TruePositiveRateParity, "cn")
            .orfail("cn entry");
        let f1 = repaired.overall_confusion().f1();
        let outcome = RepairOutcome {
            matcher: "LinRegMatcher".into(),
            group: "cn".into(),
            factor,
            disparity_before: before,
            disparity_after: entry.disparity,
        };
        println!(
            "{factor:>6} {:>17.3} {:>11.3}  {}",
            entry.disparity,
            f1,
            if factor == 1 {
                "baseline".to_owned()
            } else if outcome.improved() {
                format!("improved ({:+.3})", entry.disparity - before)
            } else {
                "no improvement".to_owned()
            }
        );
    }
}
