//! §3 (second demo dataset) — NoFlyCompas: intersectional race×sex
//! subgroups, single *and* pairwise fairness paradigms, division-based
//! disparity, and a subgroup drill-down.

use fairem_bench::{import, nofly_dataset, FAIRNESS_THRESHOLD};
use fairem_core::audit::{AuditConfig, Auditor};
use fairem_core::fairness::{Disparity, FairnessMeasure, Paradigm};
use fairem_core::matcher::MatcherKind;
use fairem_core::report::audit_text;
use fairem_bench::OrFail;

fn main() {
    println!("=== NoFlyCompas: intersectional & pairwise audits ===\n");
    let dataset = nofly_dataset();
    let session = import(&dataset)
        .try_run(&[
            MatcherKind::LinRegMatcher,
            MatcherKind::RfMatcher,
            MatcherKind::HierMatcher,
        ])
        .orfail("nofly fleet trains");
    println!(
        "groups ({}): {:?}\n",
        session.space.len(),
        session
            .space
            .ids()
            .map(|g| session.space.name(g).to_owned())
            .collect::<Vec<_>>()
    );

    // Single fairness over all (sub)groups, division disparity.
    let single = Auditor::new(AuditConfig {
        paradigm: Paradigm::Single,
        measures: vec![
            FairnessMeasure::TruePositiveRateParity,
            FairnessMeasure::PositivePredictiveValueParity,
        ],
        disparity: Disparity::Division,
        fairness_threshold: FAIRNESS_THRESHOLD,
        min_support: 15,
        only_unfair: false,
        pairwise_attr: 0,
    });
    for matcher in session.matcher_names() {
        let w = session.workload(matcher).orfail("matcher trained");
        let report = single.audit(matcher, &w, &session.space);
        let unfair: Vec<String> = report
            .unfair()
            .map(|e| format!("{}:{} ({:.3})", e.measure.name(), e.group, e.disparity))
            .collect();
        println!(
            "single fairness, {matcher}: max disparity {:.3}; unfair: {}",
            report.max_disparity(),
            if unfair.is_empty() {
                "none".to_owned()
            } else {
                unfair.join(", ")
            }
        );
    }

    // Pairwise fairness over race pairs for the most disparate matcher.
    println!("\npairwise fairness (race × race), LinRegMatcher:");
    let pairwise = Auditor::new(AuditConfig {
        paradigm: Paradigm::Pairwise,
        measures: vec![FairnessMeasure::TruePositiveRateParity],
        disparity: Disparity::Division,
        fairness_threshold: FAIRNESS_THRESHOLD,
        min_support: 10,
        only_unfair: false,
        pairwise_attr: 0,
    });
    let linreg = session
        .workload("LinRegMatcher")
        .orfail("LinRegMatcher trained");
    let report = pairwise.audit("LinRegMatcher", &linreg, &session.space);
    println!("{}", audit_text(&report));

    // Subgroup drill-down on the worst *level-1* group (those have
    // intersectional children in the lattice).
    let level1: Vec<String> = (0..session.space.attrs().len())
        .flat_map(|ai| session.space.level1_of_attr(ai))
        .map(|g| session.space.name(g).to_owned())
        .collect();
    let worst = single
        .audit("LinRegMatcher", &linreg, &session.space)
        .entries
        .into_iter()
        .filter(|e| e.disparity.is_finite() && level1.contains(&e.group))
        .max_by(|a, b| a.disparity.total_cmp(&b.disparity));
    if let Some(e) = worst {
        println!("subgroup drill-down for {} w.r.t. {}:", e.group, e.measure);
        let explainer = session.explainer(&linreg, Disparity::Division);
        for row in explainer.subgroup(e.measure, &e.group).rows {
            println!(
                "  {:<18} value {:>7.3} disparity {:>7.3} support {}",
                row.group, row.value, row.disparity, row.support
            );
        }
    }

    // Step 4 on the second dataset: resolve the race-level unfairness
    // with the ensemble.
    println!("\nensemble resolution over race (TPRP):");
    let explorer = session.ensemble(
        0,
        FairnessMeasure::TruePositiveRateParity,
        Disparity::Subtraction,
    );
    let frontier = explorer.pareto_frontier();
    let chosen = frontier
        .iter()
        .rfind(|p| p.unfairness <= FAIRNESS_THRESHOLD)
        .unwrap_or(&frontier[0]);
    println!("  chosen: {}", explorer.describe(&chosen.assignment));
    println!(
        "  unfairness {:.3} (threshold {FAIRNESS_THRESHOLD}), worst-race TPR {:.3} -> {}",
        chosen.unfairness,
        chosen.performance,
        if chosen.unfairness <= FAIRNESS_THRESHOLD {
            "RESOLVED"
        } else {
            "NOT RESOLVED"
        }
    );
}
