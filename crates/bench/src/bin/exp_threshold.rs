//! Extension experiment (paper refs \[10\]/\[12\]): threshold-sensitivity of
//! fairness, AUC-based (threshold-independent) fairness, and per-group
//! score calibration as an alternative resolution.

use fairem_bench::{faculty_session, FAIRNESS_THRESHOLD};
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_core::sensitive::GroupId;
use fairem_core::threshold::{auc_parity, default_grid, suggest_threshold, sweep};
use fairem_bench::OrFail;

fn main() {
    println!("=== Extension: threshold sensitivity & calibration (LinRegMatcher) ===\n");
    let session = faculty_session();
    let groups: Vec<GroupId> = session.space.level1_of_attr(0);
    let workload = session
        .workload("LinRegMatcher")
        .orfail("LinRegMatcher trained");

    // 1. Threshold sweep of TPRP.
    let grid: Vec<f64> = (1..20).map(|i| i as f64 * 0.05).collect();
    let sw = sweep(
        &workload,
        &session.space,
        &groups,
        FairnessMeasure::TruePositiveRateParity,
        &grid,
    );
    let disp = sw.max_disparity(Disparity::Subtraction);
    println!("threshold  overall-TPR  cn-TPR  max-disparity  verdict");
    let cn_curve = &sw
        .per_group
        .iter()
        .find(|(n, _)| n == "cn")
        .orfail("cn exists")
        .1;
    for (i, &t) in sw.thresholds.iter().enumerate() {
        println!(
            "{t:>9.2} {:>12.3} {:>7.3} {:>14.3}  {}",
            sw.overall[i],
            cn_curve[i],
            disp[i],
            if disp[i] <= FAIRNESS_THRESHOLD {
                "fair"
            } else {
                "UNFAIR"
            }
        );
    }

    // 2. Constrained threshold suggestion.
    match suggest_threshold(
        &workload,
        &session.space,
        &groups,
        FairnessMeasure::TruePositiveRateParity,
        Disparity::Subtraction,
        FAIRNESS_THRESHOLD,
        &default_grid(),
    ) {
        Some(t) => println!("\nsuggested fair threshold (max F1 s.t. disparity ≤ 0.2): {t:.2}"),
        None => println!("\nno fair threshold exists on the grid"),
    }

    // 3. AUC parity: is the unfairness threshold-induced or intrinsic?
    println!("\nAUC-based (threshold-independent) fairness:");
    for e in auc_parity(&workload, &session.space, &groups, Disparity::Subtraction) {
        println!(
            "  {:<6} AUC {:.3}  disparity {:.3}",
            e.group, e.auc, e.disparity
        );
    }

    // 4. Per-group Platt calibration as a resolution.
    println!("\nper-group calibration resolution (TPRP at threshold 0.5):");
    let calibrated = session
        .calibrated_workload("LinRegMatcher", &groups)
        .orfail("LinRegMatcher trained");
    for &g in &groups {
        let before = workload.group_confusion(g).tpr();
        let after = calibrated.group_confusion(g).tpr();
        println!(
            "  {:<6} TPR {:.3} → {:.3}",
            session.space.name(g),
            before,
            after
        );
    }
    let before_cn = workload.group_confusion(groups[1]).tpr();
    let after_cn = calibrated.group_confusion(groups[1]).tpr();
    println!(
        "\ncn recall change from calibration alone: {:+.3}",
        after_cn - before_cn
    );
}
