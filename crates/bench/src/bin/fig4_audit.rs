//! Figure 4 — the audit step: per-group unfairness for every matcher and
//! headline measure, with the fairness-threshold verdicts. The paper's
//! highlighted cell: LinRegMatcher unfair on `cn` (disparity 0.418 >
//! threshold 0.2).

use fairem_bench::{default_auditor, faculty_session, FAIRNESS_THRESHOLD};
use fairem_core::report::{audit_bars, audit_text};

fn main() {
    println!("=== Figure 4: audit step (FacultyMatch, single fairness, subtraction) ===");
    println!("fairness threshold: {FAIRNESS_THRESHOLD}\n");
    let session = faculty_session();
    let auditor = default_auditor();
    for report in session.audit_all(&auditor) {
        println!("{}", audit_text(&report));
        let unfair: Vec<String> = report
            .unfair()
            .map(|e| format!("{}:{} ({:.3})", e.measure.name(), e.group, e.disparity))
            .collect();
        if unfair.is_empty() {
            println!("-> no unfair groups\n");
        } else {
            // The demo renders the audit as bar charts with a red
            // threshold line; show the same view for unfair matchers.
            println!("{}", audit_bars(&report));
            println!("-> unfair: {}\n", unfair.join(", "));
        }
    }
}
