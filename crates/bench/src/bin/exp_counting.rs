//! Ablation (DESIGN.md §4): the paper's *both-sides* counting rule — a
//! correspondence counts toward the groups of both entities — versus
//! naive once-per-correspondence counting. Quantifies how much the
//! convention moves the audited group rates and disparities.

use fairem_bench::{faculty_session, FAIRNESS_THRESHOLD};
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_bench::OrFail;

fn main() {
    println!("=== Ablation: both-sides vs once-per-correspondence group counting ===\n");
    let session = faculty_session();
    let measure = FairnessMeasure::TruePositiveRateParity;
    for matcher in ["LinRegMatcher", "RFMatcher"] {
        let w = session.workload(matcher).orfail("matcher trained");
        let overall = measure.value(&w.overall_confusion());
        println!("{matcher} (overall TPR {overall:.3}):");
        println!(
            "  {:<6} {:>12} {:>12} {:>12} {:>12}",
            "group", "TPR(both)", "TPR(once)", "disp(both)", "disp(once)"
        );
        for g in session.space.ids() {
            let both = measure.value(&w.group_confusion(g));
            let once = measure.value(&w.group_confusion_once(g));
            let d_both = Disparity::Subtraction.compute(overall, both, true);
            let d_once = Disparity::Subtraction.compute(overall, once, true);
            let flip = (d_both > FAIRNESS_THRESHOLD) != (d_once > FAIRNESS_THRESHOLD);
            println!(
                "  {:<6} {:>12.3} {:>12.3} {:>12.3} {:>12.3}{}",
                session.space.name(g),
                both,
                once,
                d_both,
                d_once,
                if flip { "  <- verdict flips" } else { "" }
            );
        }
        println!();
    }
    println!(
        "finding: on FacultyMatch the two rules agree exactly — candidate pairs\n\
         are group-homogeneous, so both-sides counting scales every cell of a\n\
         group's confusion matrix by 2 and the *rates* are invariant.\n"
    );

    // The rules diverge when a group's pairs mix homogeneous and
    // cross-group correspondences: both-sides counting up-weights the
    // homogeneous ones. Synthetic demonstration:
    use fairem_core::schema::Table;
    use fairem_core::sensitive::{GroupSpace, SensitiveAttr};
    use fairem_core::workload::{Correspondence, Workload};
    use fairem_csvio::parse_csv_str;
    let csv = parse_csv_str("id,g\na1,cn\na2,us\n").orfail("literal csv");
    let t = Table::from_csv(csv).orfail("valid");
    let space = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")]);
    let (cn, us) = (space.encode(&t, 0), space.encode(&t, 1));
    let mut items = Vec::new();
    // cn-cn true matches: all missed (the group's own matches fail).
    for _ in 0..10 {
        items.push(Correspondence {
            a_row: 0,
            b_row: 0,
            score: 0.1,
            truth: true,
            left: cn,
            right: cn,
        });
    }
    // cn-us true matches: all found.
    for _ in 0..10 {
        items.push(Correspondence {
            a_row: 0,
            b_row: 1,
            score: 0.9,
            truth: true,
            left: cn,
            right: us,
        });
    }
    let w = Workload::new(items, 0.5);
    let g_cn = space.by_name("cn").orfail("cn");
    let both = w.group_confusion(g_cn).tpr();
    let once = w.group_confusion_once(g_cn).tpr();
    println!("mixed-pair demonstration (10 missed cn-cn + 10 found cn-us matches):");
    println!("  cn TPR under both-sides: {both:.3}   under once: {once:.3}");
    println!(
        "  both-sides counting weights the group's own (failing) matches double,\n\
         reporting the harsher — and for the affected group, the more faithful — rate."
    );
}
