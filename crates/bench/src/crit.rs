//! Criterion-compatible micro-benchmark harness.
//!
//! The workspace builds hermetically (no crates-io access), so the
//! external `criterion` crate is unavailable. This module re-implements
//! the small slice of its API the benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — on top of `std::time::Instant`, so the
//! bench sources migrate with a one-line import swap.
//!
//! Timing model: each benchmark calibrates with a single untimed call,
//! then runs as many iterations as fit the group's measurement time
//! (capped at 1M) and reports the mean wall-clock per iteration. Set
//! `FAIREM_BENCH_FAST=1` to cap measurement time at 50 ms per benchmark
//! for smoke runs.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier; mirrors `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/param` identifier.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// A named group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; iteration count is derived from
    /// the measurement time here, not from a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Total wall-clock budget for each benchmark in the group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            budget: self.budget(),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        b.report(&self.name, &id.0);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let budget = self.budget();
        let mut b = Bencher {
            budget,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// Close the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}

    fn budget(&self) -> Duration {
        if std::env::var_os("FAIREM_BENCH_FAST").is_some() {
            self.measurement_time.min(Duration::from_millis(50))
        } else {
            self.measurement_time
        }
    }
}

/// Per-benchmark timing loop; mirrors `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, choosing an iteration count that fits the
    /// measurement budget.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Untimed calibration call sizes the loop.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let n = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no measurement");
            return;
        }
        let per = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if per >= 1e9 {
            (per / 1e9, "s")
        } else if per >= 1e6 {
            (per / 1e6, "ms")
        } else if per >= 1e3 {
            (per / 1e3, "µs")
        } else {
            (per, "ns")
        };
        println!("{group}/{id}: {value:.3} {unit}/iter ({} iters)", self.iters);
    }
}

/// Collect benchmark functions under one entry name; mirrors
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::crit::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups; mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                ran += 1;
                black_box(1u64 + 1)
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("exhaustive", "x^2").0, "exhaustive/x^2");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
        assert_eq!(BenchmarkId::from("abc").0, "abc");
    }
}
