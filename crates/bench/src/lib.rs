//! Shared harness for the figure-regeneration binaries and Criterion
//! benches: builds the demo sessions (FacultyMatch, NoFlyCompas) with
//! the same parameters every figure uses, so numbers are comparable
//! across binaries.

pub mod crit;

use fairem_core::audit::{AuditConfig, Auditor};
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_core::matcher::MatcherKind;
use fairem_core::pipeline::{FairEm360, Session, SuiteConfig};
use fairem_core::prep::PrepConfig;
use fairem_core::sensitive::SensitiveAttr;
use fairem_datasets::{faculty_match, nofly_compas, FacultyConfig, GeneratedDataset, NoFlyConfig};

/// Abort with an actionable message when a value the figures rely on is
/// missing.
///
/// The figure binaries are CLI tools: a missing matcher, group, or
/// column is an operator/setup error, reported on stderr with exit
/// code 2 instead of a panic and backtrace.
pub trait OrFail<T> {
    fn orfail(self, what: &str) -> T;
}

impl<T> OrFail<T> for Option<T> {
    fn orfail(self, what: &str) -> T {
        match self {
            Some(v) => v,
            None => fail(what),
        }
    }
}

impl<T, E: std::fmt::Display> OrFail<T> for Result<T, E> {
    fn orfail(self, what: &str) -> T {
        match self {
            Ok(v) => v,
            Err(e) => fail(&format!("{what}: {e}")),
        }
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("fairem-bench: {msg}");
    std::process::exit(2)
}

/// The matching threshold every figure evaluates at (demo Step 3).
pub const MATCHING_THRESHOLD: f64 = 0.5;
/// The fairness threshold (the demo's red line, the 20% rule).
pub const FAIRNESS_THRESHOLD: f64 = 0.2;

/// Import a generated dataset into the suite.
pub fn import(dataset: &GeneratedDataset) -> FairEm360 {
    let sensitive = dataset
        .sensitive
        .iter()
        .map(|c| SensitiveAttr::categorical(c.clone()))
        .collect::<Vec<_>>();
    FairEm360::builder()
        .tables(dataset.table_a.clone(), dataset.table_b.clone())
        .ground_truth(dataset.matches.clone())
        .sensitive(sensitive)
        .config(suite_config())
        .build()
        .orfail("generated datasets are schema-valid")
}

/// The suite configuration shared by all figures.
pub fn suite_config() -> SuiteConfig {
    SuiteConfig {
        prep: PrepConfig {
            blocking_columns: vec!["name".into()],
            negative_ratio: 6.0,
            train_frac: 0.55,
            valid_frac: 0.05,
            ..PrepConfig::default()
        },
        matching_threshold: MATCHING_THRESHOLD,
        ..SuiteConfig::default()
    }
}

/// The FacultyMatch demo dataset at paper scale.
pub fn faculty_dataset() -> GeneratedDataset {
    faculty_match(&FacultyConfig::default())
}

/// The NoFlyCompas demo dataset at paper scale.
pub fn nofly_dataset() -> GeneratedDataset {
    nofly_compas(&NoFlyConfig::default())
}

/// Train the full ten-matcher fleet on FacultyMatch (the session behind
/// Figures 1 and 3–7).
pub fn faculty_session() -> Session {
    import(&faculty_dataset())
        .try_run(&MatcherKind::ALL)
        .orfail("faculty fleet trains")
}

/// Train a reduced fleet (fast; used by benches that only need two
/// matchers' workloads).
pub fn faculty_session_small() -> Session {
    let dataset = faculty_match(&FacultyConfig::small());
    import(&dataset)
        .try_run(&[MatcherKind::DtMatcher, MatcherKind::LinRegMatcher])
        .orfail("reduced fleet trains")
}

/// The default auditor used by the figures: single fairness, the five
/// headline measures, subtraction disparity, thresholds per the demo.
pub fn default_auditor() -> Auditor {
    Auditor::new(AuditConfig {
        measures: FairnessMeasure::PAPER_FIVE.to_vec(),
        disparity: Disparity::Subtraction,
        fairness_threshold: FAIRNESS_THRESHOLD,
        min_support: 20,
        ..AuditConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_session_builds_and_audits() {
        let s = faculty_session_small();
        let reports = s.audit_all(&default_auditor());
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| !r.entries.is_empty()));
    }
}
