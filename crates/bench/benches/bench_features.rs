//! Pair-featurization throughput: how fast the logic layer turns record
//! pairs into similarity vectors and token pairs.

use fairem_bench::crit::{black_box, Criterion};
use fairem_bench::{criterion_group, criterion_main};
use fairem_core::features::FeatureGenerator;
use fairem_core::schema::Table;
use fairem_core::{Exec, PairBatch, WorkerPool};
use fairem_datasets::{faculty_match, wdc_products, FacultyConfig, ProductsConfig};
use fairem_neural::HashVocab;

fn bench_features(c: &mut Criterion) {
    let d = faculty_match(&FacultyConfig::small());
    let a = Table::from_csv(d.table_a.clone()).unwrap();
    let b = Table::from_csv(d.table_b.clone()).unwrap();
    let gen = FeatureGenerator::build(&a, &b, &["country"]);
    let pairs: Vec<(usize, usize)> = (0..100).map(|i| (i % a.len(), (i * 7) % b.len())).collect();
    let vocab = HashVocab::new(512);

    let mut g = c.benchmark_group("features");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("build_generator", |bch| {
        bch.iter(|| FeatureGenerator::build(black_box(&a), black_box(&b), &["country"]))
    });
    let exec = Exec::default();
    g.bench_function("featurize_100_pairs", |bch| {
        bch.iter(|| gen.matrix(&PairBatch::new(black_box(&pairs)), &exec))
    });
    g.bench_function("tokenize_100_pairs", |bch| {
        bch.iter(|| gen.tokenize_all(&PairBatch::new(black_box(&pairs)), &vocab))
    });
    g.finish();
}

/// Sequential vs pooled featurization on the products workload: the
/// worker-count sweep that backs the EXPERIMENTS.md parallel table.
fn bench_features_parallel(c: &mut Criterion) {
    let d = wdc_products(&ProductsConfig::default());
    let a = Table::from_csv(d.table_a.clone()).unwrap();
    let b = Table::from_csv(d.table_b.clone()).unwrap();
    let gen = FeatureGenerator::build(&a, &b, &["tier"]);
    let pairs: Vec<(usize, usize)> = (0..2_000)
        .map(|i| (i % a.len(), (i * 7) % b.len()))
        .collect();

    let mut g = c.benchmark_group("features_parallel");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    for workers in [1usize, 2, 4] {
        let exec = Exec::with_pool(WorkerPool::new(workers));
        g.bench_function(format!("products_2000_pairs/workers_{workers}"), |bch| {
            bch.iter(|| gen.matrix(&PairBatch::new(black_box(&pairs)), &exec))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_features, bench_features_parallel);
criterion_main!(benches);
