//! Blocking cost and recall trade-off: token blocking vs
//! sorted-neighborhood on FacultyMatch (DESIGN.md §4 ablation).

use fairem_bench::crit::{black_box, Criterion};
use fairem_bench::{criterion_group, criterion_main};
use fairem_core::blocking::{blocking_recall, sorted_neighborhood, token_blocking};
use fairem_core::schema::Table;
use fairem_datasets::{faculty_match, FacultyConfig};

fn bench_blocking(c: &mut Criterion) {
    let d = faculty_match(&FacultyConfig::default());
    let a = Table::from_csv(d.table_a.clone()).unwrap();
    let b = Table::from_csv(d.table_b.clone()).unwrap();
    let truth: Vec<(usize, usize)> = d
        .matches
        .iter()
        .map(|(ia, ib)| (a.row_of(ia).unwrap(), b.row_of(ib).unwrap()))
        .collect();

    let mut g = c.benchmark_group("blocking");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("token_name", |bch| {
        bch.iter(|| token_blocking(black_box(&a), black_box(&b), &["name"], 200))
    });
    g.bench_function("token_name_univ", |bch| {
        bch.iter(|| token_blocking(black_box(&a), black_box(&b), &["name", "university"], 200))
    });
    g.bench_function("sorted_neighborhood_w10", |bch| {
        bch.iter(|| sorted_neighborhood(black_box(&a), black_box(&b), "name", 10))
    });
    g.finish();

    // Print the recall trade-off once (captured in EXPERIMENTS.md).
    let tok = token_blocking(&a, &b, &["name"], 200);
    let snm = sorted_neighborhood(&a, &b, "name", 10);
    eprintln!(
        "[blocking recall] token(name): {:.3} with {} candidates; snm(w=10): {:.3} with {} candidates",
        blocking_recall(&tok, &truth),
        tok.len(),
        blocking_recall(&snm, &truth),
        snm.len()
    );
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
