//! Matcher training and scoring throughput, one benchmark per family
//! (Figure 3's cost column).

use fairem_bench::crit::{black_box, Criterion};
use fairem_bench::{criterion_group, criterion_main};
use fairem_core::features::FeatureGenerator;
use fairem_core::matcher::{Matcher, MatcherKind, MatcherTrainConfig, TrainInput};
use fairem_core::prep::{prepare, PrepConfig};
use fairem_core::schema::Table;
use fairem_core::{Exec, PairBatch, ParOutcome};
use fairem_datasets::{faculty_match, FacultyConfig};
use fairem_neural::{HashVocab, TrainConfig};

fn bench_matchers(c: &mut Criterion) {
    let d = faculty_match(&FacultyConfig::small());
    let a = Table::from_csv(d.table_a.clone()).unwrap();
    let b = Table::from_csv(d.table_b.clone()).unwrap();
    let prep = prepare(&a, &b, &d.matches, &PrepConfig::default());
    let gen = FeatureGenerator::build(&a, &b, &["country"]);
    let vocab = HashVocab::new(128);
    let (pairs, labels) = prep.split(&prep.train_idx);
    let features = match gen.matrix(&PairBatch::new(&pairs), &Exec::default()) {
        ParOutcome::Complete(m) => m,
        // fairem: allow(panic) — bench harness uses an inert exec that cannot interrupt
        ParOutcome::Interrupted { interrupt, .. } => unreachable!("inert exec: {interrupt}"),
    };
    let tokens = gen.tokenize_all(&PairBatch::new(&pairs), &vocab);
    let input = TrainInput {
        features: &features,
        tokens: &tokens,
        labels: &labels,
    };
    let config = MatcherTrainConfig {
        neural: TrainConfig {
            vocab_size: 128,
            epochs: 2,
            ..TrainConfig::fast()
        },
        seed: 1,
    };

    let mut g = c.benchmark_group("train");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    for kind in [
        MatcherKind::DtMatcher,
        MatcherKind::RfMatcher,
        MatcherKind::SvmMatcher,
        MatcherKind::LogRegMatcher,
        MatcherKind::LinRegMatcher,
        MatcherKind::NbMatcher,
        MatcherKind::DeepMatcher,
        MatcherKind::Mcan,
    ] {
        g.bench_function(kind.name(), |bch| {
            bch.iter(|| kind.train(black_box(&input), black_box(&config)))
        });
    }
    g.finish();

    let trained = MatcherKind::RfMatcher.train(&input, &config);
    let mut g = c.benchmark_group("score");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("RFMatcher_batch", |bch| {
        bch.iter(|| trained.score_batch(black_box(&features), black_box(&tokens)))
    });
    g.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
