//! Ensemble exploration cost: the `mᵏ` enumeration behind Figure 6,
//! scaling in matcher count and group count, vs the per-group shortcut.

use fairem_bench::crit::{black_box, BenchmarkId, Criterion};
use fairem_bench::{criterion_group, criterion_main};
use fairem_core::ensemble::EnsembleExplorer;
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_core::schema::Table;
use fairem_core::sensitive::{GroupId, GroupSpace, GroupVector, SensitiveAttr};
use fairem_core::workload::{Correspondence, Workload};
use fairem_csvio::parse_csv_str;

fn setup(m: usize, k: usize) -> EnsembleExplorer {
    let mut csv = String::from("id,g\n");
    for i in 0..k {
        csv.push_str(&format!("r{i},g{i}\n"));
    }
    let t = Table::from_csv(parse_csv_str(&csv).unwrap()).unwrap();
    let space = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")]);
    let groups: Vec<GroupId> = space.ids().collect();
    // m workloads with varying per-group quality.
    let workloads: Vec<(String, Workload)> = (0..m)
        .map(|mi| {
            let items = (0..600)
                .map(|i| Correspondence {
                    a_row: 0,
                    b_row: 0,
                    score: if (i + mi * 3) % (4 + mi) == 0 {
                        0.1
                    } else {
                        0.9
                    },
                    truth: i % 2 == 0,
                    left: GroupVector(1 << (i % k)),
                    right: GroupVector(1 << (i % k)),
                })
                .collect();
            (format!("M{mi}"), Workload::new(items, 0.5))
        })
        .collect();
    let refs: Vec<(String, &Workload)> = workloads.iter().map(|(n, w)| (n.clone(), w)).collect();
    EnsembleExplorer::build(
        &refs,
        &space,
        &groups,
        FairnessMeasure::AccuracyParity,
        Disparity::Subtraction,
    )
}

fn bench_ensemble(c: &mut Criterion) {
    let mut g = c.benchmark_group("pareto_frontier");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    for (m, k) in [(4usize, 3usize), (10, 4), (10, 5)] {
        let e = setup(m, k);
        g.bench_with_input(
            BenchmarkId::new("exhaustive", format!("{m}^{k}")),
            &e,
            |bch, e| bch.iter(|| e.pareto_frontier()),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("per_group_shortcut");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    let e = setup(10, 5);
    g.bench_function("best_per_group", |bch| {
        bch.iter(|| black_box(&e).best_per_group())
    });
    g.bench_function("evaluate_one", |bch| {
        let a = e.best_per_group();
        bch.iter(|| black_box(&e).evaluate(black_box(&a)))
    });
    g.finish();
}

/// The same `10^5` enumeration fanned out over the worker pool.
fn bench_ensemble_parallel(c: &mut Criterion) {
    use fairem_core::Parallelism;
    let mut g = c.benchmark_group("pareto_frontier_parallel");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    for (label, policy) in [
        ("10^5/sequential", Parallelism::Off),
        ("10^5/workers_4", Parallelism::Fixed(4)),
    ] {
        let e = setup(10, 5).with_parallelism(policy);
        g.bench_function(label, |bch| bch.iter(|| black_box(&e).pareto_frontier()));
    }
    g.finish();
}

criterion_group!(benches, bench_ensemble, bench_ensemble_parallel);
criterion_main!(benches);
