//! Audit throughput: workload summarization + measure evaluation,
//! scaling in workload size and group count, plus the both-sides vs
//! once-per-correspondence counting ablation called out in DESIGN.md §4.

use fairem_bench::crit::{black_box, BenchmarkId, Criterion};
use fairem_bench::{criterion_group, criterion_main};
use fairem_core::audit::{AuditConfig, Auditor};
use fairem_core::fairness::{FairnessMeasure, Paradigm};
use fairem_core::schema::Table;
use fairem_core::sensitive::{GroupId, GroupSpace, GroupVector, SensitiveAttr};
use fairem_core::workload::{Correspondence, Workload};
use fairem_csvio::parse_csv_str;

fn space(n_groups: usize) -> GroupSpace {
    let mut csv = String::from("id,g\n");
    for i in 0..n_groups {
        csv.push_str(&format!("r{i},g{i}\n"));
    }
    let t = Table::from_csv(parse_csv_str(&csv).unwrap()).unwrap();
    GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")])
}

fn workload(n: usize, n_groups: usize) -> Workload {
    let items = (0..n)
        .map(|i| Correspondence {
            a_row: 0,
            b_row: 0,
            score: (i % 10) as f64 / 10.0,
            truth: i % 7 == 0,
            left: GroupVector(1 << (i % n_groups)),
            right: GroupVector(1 << ((i * 3) % n_groups)),
        })
        .collect();
    Workload::new(items, 0.5)
}

fn bench_audit(c: &mut Criterion) {
    let mut g = c.benchmark_group("audit_scaling_n");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    let sp = space(5);
    let auditor = Auditor::new(AuditConfig {
        measures: FairnessMeasure::ALL.to_vec(),
        min_support: 1,
        ..AuditConfig::default()
    });
    for n in [1_000usize, 10_000, 50_000] {
        let w = workload(n, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &w, |bch, w| {
            bch.iter(|| auditor.audit("X", black_box(w), black_box(&sp)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("audit_scaling_groups");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    for k in [2usize, 8, 32] {
        let sp = space(k);
        let w = workload(10_000, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &w, |bch, w| {
            bch.iter(|| auditor.audit("X", black_box(w), black_box(&sp)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("audit_paradigm");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    let sp = space(5);
    let w = workload(10_000, 5);
    for paradigm in [Paradigm::Single, Paradigm::Pairwise] {
        let auditor = Auditor::new(AuditConfig {
            paradigm,
            measures: vec![FairnessMeasure::TruePositiveRateParity],
            min_support: 1,
            ..AuditConfig::default()
        });
        g.bench_function(format!("{paradigm}"), |bch| {
            bch.iter(|| auditor.audit("X", black_box(&w), black_box(&sp)))
        });
    }
    g.finish();

    // Ablation: group confusion via the both-sides rule vs counting each
    // legitimate correspondence once (what naive classification auditing
    // would do).
    let mut g = c.benchmark_group("counting_rule");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    let w = workload(50_000, 5);
    g.bench_function("both_sides", |bch| {
        bch.iter(|| {
            (0..5u32)
                .map(|i| w.group_confusion(GroupId(i)).total())
                .sum::<f64>()
        })
    });
    g.bench_function("once_per_correspondence", |bch| {
        bch.iter(|| {
            (0..5u32)
                .map(|i| {
                    let g = GroupId(i);
                    let mut cm = fairem_core::confusion::ConfusionMatrix::default();
                    for c in &w.items {
                        if c.left.contains(g) || c.right.contains(g) {
                            cm.record(w.prediction(c), c.truth, 1.0);
                        }
                    }
                    cm.total()
                })
                .sum::<f64>()
        })
    });
    g.finish();
}

/// Sequential vs pooled `audit_all` on the citations workload: trains
/// one four-matcher session per parallelism policy, then times only the
/// audit fan-out.
fn bench_audit_parallel(c: &mut Criterion) {
    use fairem_core::matcher::MatcherKind;
    use fairem_core::pipeline::{FairEm360, SuiteConfig};
    use fairem_core::prep::PrepConfig;
    use fairem_core::Parallelism;
    use fairem_datasets::{citations, CitationsConfig};

    let data = citations(&CitationsConfig::default());
    let session = |parallelism: Parallelism| {
        FairEm360::builder()
            .tables(data.table_a.clone(), data.table_b.clone())
            .ground_truth(data.matches.clone())
            .sensitive([SensitiveAttr::categorical("venue")])
            .config(SuiteConfig {
                prep: PrepConfig {
                    blocking_columns: vec!["title".into()],
                    ..PrepConfig::default()
                },
                parallelism,
                ..SuiteConfig::default()
            })
            .build()
            .unwrap()
            .try_run(&[
                MatcherKind::DtMatcher,
                MatcherKind::LinRegMatcher,
                MatcherKind::NbMatcher,
                MatcherKind::LogRegMatcher,
            ])
            .unwrap()
    };
    let auditor = Auditor::new(AuditConfig {
        measures: FairnessMeasure::ALL.to_vec(),
        min_support: 1,
        ..AuditConfig::default()
    });

    let mut g = c.benchmark_group("audit_all_parallel");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for (label, policy) in [
        ("citations_4_matchers/sequential", Parallelism::Off),
        ("citations_4_matchers/workers_4", Parallelism::Fixed(4)),
    ] {
        let s = session(policy);
        g.bench_function(label, |bch| bch.iter(|| s.audit_all(black_box(&auditor))));
    }
    g.finish();
}

criterion_group!(benches, bench_audit, bench_audit_parallel);
criterion_main!(benches);
