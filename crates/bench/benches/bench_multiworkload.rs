//! Multiple-workload analysis cost: bootstrap resampling + per-cell
//! z-tests, scaling in k.

use fairem_bench::crit::{black_box, BenchmarkId, Criterion};
use fairem_bench::{criterion_group, criterion_main};
use fairem_core::audit::{AuditConfig, Auditor};
use fairem_core::fairness::FairnessMeasure;
use fairem_core::multiworkload::analyze_bootstrap;
use fairem_core::schema::Table;
use fairem_core::sensitive::{GroupSpace, GroupVector, SensitiveAttr};
use fairem_core::workload::{Correspondence, Workload};
use fairem_csvio::parse_csv_str;

fn bench_multiworkload(c: &mut Criterion) {
    let t = Table::from_csv(parse_csv_str("id,g\na,g0\nb,g1\nc,g2\n").unwrap()).unwrap();
    let space = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")]);
    let items: Vec<Correspondence> = (0..5_000)
        .map(|i| Correspondence {
            a_row: 0,
            b_row: 0,
            score: ((i * 13) % 10) as f64 / 10.0,
            truth: i % 6 == 0,
            left: GroupVector(1 << (i % 3)),
            right: GroupVector(1 << ((i / 3) % 3)),
        })
        .collect();
    let base = Workload::new(items, 0.5);
    let auditor = Auditor::new(AuditConfig {
        measures: vec![
            FairnessMeasure::TruePositiveRateParity,
            FairnessMeasure::PositivePredictiveValueParity,
        ],
        min_support: 5,
        ..AuditConfig::default()
    });

    let mut g = c.benchmark_group("multiworkload");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    for k in [10usize, 30] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, &k| {
            bch.iter(|| analyze_bootstrap("X", black_box(&base), &space, &auditor, k, 0.05, 7))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("bootstrap_resample");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("resample_5000", |bch| {
        let mut seed = 0u64;
        bch.iter(|| {
            seed += 1;
            black_box(&base).resample(seed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_multiworkload);
criterion_main!(benches);
