//! Threshold-analysis cost: full-grid sweeps, constrained suggestion,
//! AUC parity, and per-group calibration.

use fairem_bench::crit::{black_box, BenchmarkId, Criterion};
use fairem_bench::{criterion_group, criterion_main};
use fairem_core::fairness::{Disparity, FairnessMeasure};
use fairem_core::schema::Table;
use fairem_core::sensitive::{GroupId, GroupSpace, GroupVector, SensitiveAttr};
use fairem_core::threshold::{auc_parity, calibrate_per_group, default_grid, sweep};
use fairem_core::workload::{Correspondence, Workload};
use fairem_csvio::parse_csv_str;

fn setup(n: usize) -> (Workload, GroupSpace, Vec<GroupId>) {
    let t =
        Table::from_csv(parse_csv_str("id,g\na,g0\nb,g1\nc,g2\nd,g3\ne,g4\n").unwrap()).unwrap();
    let space = GroupSpace::extract(&[&t], vec![SensitiveAttr::categorical("g")]);
    let groups: Vec<GroupId> = space.ids().collect();
    let items = (0..n)
        .map(|i| Correspondence {
            a_row: 0,
            b_row: 0,
            score: ((i * 31) % 100) as f64 / 100.0,
            truth: i % 5 == 0,
            left: GroupVector(1 << (i % 5)),
            right: GroupVector(1 << ((i / 5) % 5)),
        })
        .collect();
    (Workload::new(items, 0.5), space, groups)
}

fn bench_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("threshold_sweep");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    let grid = default_grid();
    for n in [2_000usize, 20_000] {
        let (w, space, groups) = setup(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &w, |bch, w| {
            bch.iter(|| {
                sweep(
                    black_box(w),
                    &space,
                    &groups,
                    FairnessMeasure::TruePositiveRateParity,
                    &grid,
                )
            })
        });
    }
    g.finish();

    let (w, space, groups) = setup(20_000);
    let mut g = c.benchmark_group("threshold_analysis");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("auc_parity", |bch| {
        bch.iter(|| auc_parity(black_box(&w), &space, &groups, Disparity::Subtraction))
    });
    g.bench_function("calibrate_per_group", |bch| {
        bch.iter(|| calibrate_per_group(black_box(&w), black_box(&w), &groups))
    });
    g.finish();
}

criterion_group!(benches, bench_threshold);
criterion_main!(benches);
