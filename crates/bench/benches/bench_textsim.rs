//! Microbenchmarks of the string-similarity kernels feature generation
//! spends its time in.

use fairem_bench::crit::{black_box, Criterion};
use fairem_bench::{criterion_group, criterion_main};
use fairem_text::{StringMeasure, TfIdfCorpusBuilder};

const PAIRS: [(&str, &str); 4] = [
    ("li wei", "wong way"),
    ("john a smith", "jon smith"),
    (
        "university of illinois chicago",
        "univ of illinois at chicago",
    ),
    ("maria garcia", "ana garcia lopez"),
];

fn bench_measures(c: &mut Criterion) {
    let mut g = c.benchmark_group("textsim");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    for m in [
        StringMeasure::Levenshtein,
        StringMeasure::JaroWinkler,
        StringMeasure::JaccardWords,
        StringMeasure::JaccardQgrams,
        StringMeasure::MongeElkan,
        StringMeasure::SmithWaterman,
    ] {
        g.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for (x, y) in PAIRS {
                    acc += m.eval(black_box(x), black_box(y));
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_tfidf(c: &mut Criterion) {
    let mut builder = TfIdfCorpusBuilder::new();
    for i in 0..500 {
        builder.add_document(&format!("record number {i} department of computer science"));
    }
    let corpus = builder.build();
    let mut g = c.benchmark_group("tfidf");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("cosine", |b| {
        b.iter(|| {
            corpus.cosine(
                black_box("department of computer science chicago"),
                black_box("dept of computer science"),
            )
        })
    });
    g.bench_function("soft_cosine", |b| {
        b.iter(|| {
            corpus.soft_cosine(
                black_box("department of computer science chicago"),
                black_box("dept of computre science"),
                0.9,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_measures, bench_tfidf);
criterion_main!(benches);
