//! Direct tests of the public pool API as an external consumer —
//! previously `par_map_isolated` attribution and `par_for_each` were
//! only exercised indirectly through the suite.

use std::sync::atomic::{AtomicUsize, Ordering};

use fairem_par::{Budget, CancelCause, CancelToken, ParOutcome, WorkerPool};

#[test]
fn par_map_isolated_attributes_each_poisoned_item() {
    // Several poisoned items, spread across chunks, each attributed to
    // exactly itself — under every worker count.
    let poisoned = [3usize, 57, 58, 199];
    for workers in [1, 2, 4, 8] {
        let pool = WorkerPool::new(workers);
        let out = pool.par_map_isolated(200, |i| {
            assert!(!poisoned.contains(&i), "injected: item {i} dies");
            i * i
        });
        assert_eq!(out.len(), 200, "workers={workers}");
        for (i, r) in out.iter().enumerate() {
            if poisoned.contains(&i) {
                let e = r.as_ref().expect_err("poisoned item must fail");
                assert!(
                    e.contains(&format!("item {i} dies")),
                    "workers={workers} i={i}: wrong attribution: {e}"
                );
            } else {
                assert_eq!(r.as_ref().copied(), Ok(i * i), "workers={workers} i={i}");
            }
        }
    }
}

#[test]
fn par_map_isolated_with_no_failures_is_all_ok() {
    let pool = WorkerPool::new(4);
    let out = pool.par_map_isolated(64, |i| i + 1);
    assert!(out.iter().enumerate().all(|(i, r)| r == &Ok(i + 1)));
}

#[test]
fn par_for_each_visits_every_index_exactly_once_per_worker_count() {
    for workers in [1, 3, 4, 7] {
        let hits: Vec<AtomicUsize> = (0..501).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkerPool::new(workers);
        pool.par_for_each(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "workers={workers} i={i}");
        }
    }
}

#[test]
#[should_panic(expected = "item 9 detonated")]
fn par_for_each_surfaces_a_worker_panic() {
    let pool = WorkerPool::new(4);
    pool.par_for_each(100, |i| assert!(i != 9, "item 9 detonated"));
}

#[test]
fn cancel_tree_trip_is_visible_to_children_created_concurrently() {
    // The server model hangs a fresh child token off the root for every
    // request, from many connection threads at once, while SIGINT can
    // trip the root at any moment. The contract under that race: once
    // `cancel()` has returned, *no* child — however deep, whenever
    // created — may observe itself un-tripped. We pin it by hammering
    // child creation on N threads while the main thread trips the root,
    // and asserting that every child created after the trip was
    // published observes the cancellation immediately.
    use std::sync::atomic::AtomicBool;
    use std::sync::Barrier;

    const THREADS: usize = 8;
    const MAX_DEPTH: usize = 32;
    for round in 0..8 {
        let root = CancelToken::inert();
        // Published with SeqCst *after* cancel() returns, so any thread
        // reading `true` is ordered after the trip.
        let tripped = AtomicBool::new(false);
        let stop = AtomicBool::new(false);
        let start = Barrier::new(THREADS + 1);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (root, tripped, stop, start) = (&root, &tripped, &stop, &start);
                scope.spawn(move || {
                    start.wait();
                    let mut parent = root.clone();
                    let mut depth = 0usize;
                    let mut created = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        let saw_trip = tripped.load(Ordering::SeqCst);
                        let child = parent.child(Budget::UNLIMITED);
                        created += 1;
                        if saw_trip {
                            assert!(
                                child.is_cancelled(),
                                "thread {t}: child #{created} (depth {depth}) created \
                                 after the root trip returned but observed un-tripped"
                            );
                        }
                        // Grow the ancestor chain so propagation is
                        // exercised at depth, not just root→child.
                        if child.checkpoint().is_ok() && depth < MAX_DEPTH {
                            parent = child;
                            depth += 1;
                        } else {
                            parent = root.clone();
                            depth = 0;
                        }
                    }
                    created
                });
            }
            start.wait();
            // Let the churn build some trees, then trip mid-flight.
            std::thread::sleep(std::time::Duration::from_millis(2 + round));
            root.cancel();
            tripped.store(true, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            stop.store(true, Ordering::SeqCst);
        });
        // And the root's own record agrees.
        assert_eq!(root.cause(), Some(CancelCause::Cancelled), "round {round}");
    }
}

#[test]
fn cancellable_map_accounts_partial_progress() {
    let pool = WorkerPool::new(4);
    let token = CancelToken::with_budget(Budget::UNLIMITED);
    token.cancel();
    match pool.par_map_isolated_within(100, &token, |i| i) {
        ParOutcome::Interrupted {
            done,
            completed,
            total,
            interrupt,
        } => {
            assert!(done.is_empty());
            assert_eq!((completed, total), (0, 100));
            assert_eq!(interrupt.cause, CancelCause::Cancelled);
        }
        ParOutcome::Complete(_) => panic!("pre-cancelled token must interrupt"),
    }
}
