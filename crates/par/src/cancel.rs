//! Cooperative cancellation: tokens, budgets, and interrupt records.
//!
//! The suite never kills threads. Instead, every long-running region —
//! pool chunks, trainer epochs, per-example neural steps — polls a
//! [`CancelToken`] at natural checkpoints and unwinds *cooperatively*
//! when the token trips. A token trips for one of three reasons:
//!
//! - someone called [`CancelToken::cancel`] (Ctrl-C, programmatic stop),
//! - its wall-clock deadline passed ([`Budget::wall`]),
//! - its step allowance ran out ([`Budget::steps`]).
//!
//! Tokens form a tree: a per-matcher token created with
//! [`CancelToken::child`] trips when its own budget expires **or** when
//! any ancestor trips, so cancelling the suite token cuts every matcher
//! at its next checkpoint. Checks are cheap — one or two relaxed atomic
//! loads plus a monotonic clock read when a deadline is armed — so
//! polling once per epoch/chunk/example costs nothing measurable.
//!
//! When a region is cut it reports an [`Interrupt`]: the cause, the
//! elapsed wall time, and how many checkpoints (steps) completed before
//! the cut. That record is what degraded-mode reports surface so the
//! user can see *who* was cut and *how far* it got.
//!
//! [`MemBudget`]/[`MemTracker`] are the *memory* siblings of the
//! wall/step budget: a deterministic byte account over caller-declared
//! allocation estimates (never RSS), used by the sharded audit path to
//! bound resident feature matrices and to size shard windows.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A time/step allowance for a region of work.
///
/// The default budget is unlimited; [`Budget::wall`] and
/// [`Budget::steps`] arm the two limits independently and
/// [`Budget::and_steps`] combines them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Maximum wall-clock time, measured from token creation.
    pub wall: Option<Duration>,
    /// Maximum number of [`CancelToken::checkpoint`] calls.
    pub max_steps: Option<u64>,
}

impl Budget {
    /// The unlimited budget: never trips on its own.
    pub const UNLIMITED: Budget = Budget {
        wall: None,
        max_steps: None,
    };

    /// A wall-clock budget.
    pub fn wall(limit: Duration) -> Budget {
        Budget {
            wall: Some(limit),
            max_steps: None,
        }
    }

    /// A wall-clock budget in milliseconds.
    pub fn wall_ms(millis: u64) -> Budget {
        Budget::wall(Duration::from_millis(millis))
    }

    /// A step budget: at most `max` checkpoints may complete.
    pub fn steps(max: u64) -> Budget {
        Budget {
            wall: None,
            max_steps: Some(max),
        }
    }

    /// Add a step limit to this budget.
    pub fn and_steps(mut self, max: u64) -> Budget {
        self.max_steps = Some(max);
        self
    }

    /// True when neither limit is armed.
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none() && self.max_steps.is_none()
    }
}

/// Why a token tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called on this token or an ancestor.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The step allowance ran out.
    StepLimit,
}

/// The record of a cooperative cut: why, when, and how far the work got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupt {
    /// Why the token tripped.
    pub cause: CancelCause,
    /// Wall time from token creation to the observed cut.
    pub elapsed: Duration,
    /// Checkpoints completed on this token before the cut.
    pub steps: u64,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let secs = self.elapsed.as_secs_f64();
        match self.cause {
            CancelCause::Cancelled => {
                write!(f, "cancelled after {secs:.3}s ({} steps done)", self.steps)
            }
            CancelCause::Deadline => {
                write!(f, "timed out after {secs:.3}s ({} steps done)", self.steps)
            }
            CancelCause::StepLimit => write!(
                f,
                "step budget exhausted after {} steps ({secs:.3}s)",
                self.steps
            ),
        }
    }
}

#[derive(Debug)]
struct Inner {
    /// Explicit cancellation (Ctrl-C, programmatic).
    flag: AtomicBool,
    /// When this token was created — the budget's epoch.
    started: Instant,
    /// Absolute wall-clock deadline, if armed.
    deadline: Option<Instant>,
    /// Step allowance, if armed.
    max_steps: Option<u64>,
    /// Checkpoints completed on this token.
    steps: AtomicU64,
    /// Ancestor chain: a child trips when any ancestor trips.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn new(budget: Budget, parent: Option<Arc<Inner>>) -> Inner {
        let started = Instant::now();
        Inner {
            flag: AtomicBool::new(false),
            started,
            deadline: budget.wall.map(|w| started + w),
            max_steps: budget.max_steps,
            steps: AtomicU64::new(0),
            parent,
        }
    }

    /// Own cause only — ancestors are consulted by [`Inner::cause`].
    fn own_cause(&self) -> Option<CancelCause> {
        if self.flag.load(Ordering::Relaxed) {
            return Some(CancelCause::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(CancelCause::Deadline);
            }
        }
        if let Some(max) = self.max_steps {
            if self.steps.load(Ordering::Relaxed) >= max {
                return Some(CancelCause::StepLimit);
            }
        }
        None
    }

    fn cause(&self) -> Option<CancelCause> {
        let mut node = Some(self);
        while let Some(n) = node {
            if let Some(c) = n.own_cause() {
                return Some(c);
            }
            node = n.parent.as_deref();
        }
        None
    }
}

/// A shareable, cheap-to-poll cancellation token.
///
/// Cloning shares state: all clones observe the same flag, deadline,
/// and step counter. See the module docs for the full semantics.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::inert()
    }
}

impl CancelToken {
    /// A token with no budget and no parent: it trips only if
    /// [`CancelToken::cancel`] is called. The right token to pass when
    /// cancellation is not in play — checkpoints on it never fail.
    pub fn inert() -> CancelToken {
        CancelToken::with_budget(Budget::UNLIMITED)
    }

    /// A root token with the given budget, started now.
    pub fn with_budget(budget: Budget) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner::new(budget, None)),
        }
    }

    /// A child token with its own budget (started now) that also trips
    /// whenever `self` or any of `self`'s ancestors trips. Child steps
    /// and deadlines are independent of the parent's.
    pub fn child(&self, budget: Budget) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner::new(budget, Some(Arc::clone(&self.inner)))),
        }
    }

    /// Trip this token (and, transitively, every child). Idempotent and
    /// async-signal-safe: a single relaxed atomic store.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// True when [`CancelToken::cancel`] was called on this token
    /// itself (not on an ancestor, not via a budget). The CLI uses this
    /// to distinguish a user interrupt from a deadline.
    pub fn cancel_requested(&self) -> bool {
        self.inner.flag.load(Ordering::Relaxed)
    }

    /// Why this token has tripped, if it has. Checks the explicit flag,
    /// then the deadline, then the step allowance, then ancestors.
    pub fn cause(&self) -> Option<CancelCause> {
        self.inner.cause()
    }

    /// Cheap poll: has this token (or an ancestor) tripped?
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }

    /// Record one unit of progress and poll. Returns `Err` with the
    /// [`Interrupt`] record when the token has tripped; the step that
    /// tripped a step limit is *not* counted as done.
    pub fn checkpoint(&self) -> Result<(), Interrupt> {
        match self.cause() {
            None => {
                self.inner.steps.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(cause) => Err(self.interrupt_with(cause)),
        }
    }

    /// Checkpoints completed on this token so far.
    pub fn steps_done(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// Wall time since this token was created.
    pub fn elapsed(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// Wall-clock time left before this token's deadline — the minimum
    /// remaining allowance over this token and every ancestor, saturating
    /// at zero once a deadline has passed. `None` when no deadline is
    /// armed anywhere on the chain (step budgets and explicit cancels do
    /// not count: they have no schedule). Servers use this to size
    /// retry-after hints and drain windows for deadline-aware clients.
    pub fn remaining_wall(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut least: Option<Duration> = None;
        let mut node = Some(self.inner.as_ref());
        while let Some(n) = node {
            if let Some(d) = n.deadline {
                let left = d.saturating_duration_since(now);
                least = Some(match least {
                    Some(cur) => cur.min(left),
                    None => left,
                });
            }
            node = n.parent.as_deref();
        }
        least
    }

    /// The [`Interrupt`] record for a token known (or assumed) to have
    /// tripped. If the token has not actually tripped, the cause is
    /// reported as [`CancelCause::Cancelled`].
    pub fn interrupt(&self) -> Interrupt {
        self.interrupt_with(self.cause().unwrap_or(CancelCause::Cancelled))
    }

    fn interrupt_with(&self, cause: CancelCause) -> Interrupt {
        Interrupt {
            cause,
            elapsed: self.elapsed(),
            steps: self.steps_done(),
        }
    }
}

/// A byte allowance for resident working-set data — the memory sibling
/// of the wall/step [`Budget`].
///
/// Accounting is *deterministic by construction*: the tracked figure is
/// the sum of caller-declared byte estimates (matrix dimensions × cell
/// width), never the process RSS, so a run that degrades to narrower
/// shard windows under pressure degrades identically on every machine
/// and every rerun.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemBudget {
    /// Maximum tracked resident bytes; `None` = unlimited.
    pub max_bytes: Option<u64>,
}

impl MemBudget {
    /// The unlimited budget: [`MemTracker::try_hold`] never fails, but
    /// current/peak accounting still runs (it feeds the obs gauges).
    pub const UNLIMITED: MemBudget = MemBudget { max_bytes: None };

    /// A budget of `n` bytes.
    pub fn bytes(n: u64) -> MemBudget {
        MemBudget { max_bytes: Some(n) }
    }

    /// A budget of `n` mebibytes.
    pub fn mib(n: u64) -> MemBudget {
        MemBudget::bytes(n.saturating_mul(1024 * 1024))
    }

    /// True when no limit is armed.
    pub fn is_unlimited(&self) -> bool {
        self.max_bytes.is_none()
    }
}

/// A rejected [`MemTracker::try_hold`]: admitting `requested` more
/// bytes on top of `in_use` would cross `limit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPressure {
    /// Bytes the caller asked to hold.
    pub requested: u64,
    /// Bytes already held when the request was rejected.
    pub in_use: u64,
    /// The armed limit.
    pub limit: u64,
}

impl std::fmt::Display for MemPressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exceeded: need {} B with {} B already resident (limit {} B)",
            self.requested, self.in_use, self.limit
        )
    }
}

impl std::error::Error for MemPressure {}

#[derive(Debug, Default)]
struct MemInner {
    limit: Option<u64>,
    current: AtomicU64,
    peak: AtomicU64,
}

/// Shared allocation account for one run. Clones share state, exactly
/// like [`CancelToken`]; the default tracker is unlimited and costs two
/// relaxed atomics per hold.
#[derive(Debug, Clone, Default)]
pub struct MemTracker {
    inner: Arc<MemInner>,
}

impl MemTracker {
    /// A tracker that accounts but never rejects.
    pub fn unlimited() -> MemTracker {
        MemTracker::default()
    }

    /// A tracker enforcing `budget`.
    pub fn with_budget(budget: MemBudget) -> MemTracker {
        MemTracker {
            inner: Arc::new(MemInner {
                limit: budget.max_bytes,
                current: AtomicU64::new(0),
                peak: AtomicU64::new(0),
            }),
        }
    }

    /// Reserve `bytes` against the budget. The returned [`MemHold`]
    /// releases them on drop; call [`MemHold::persist`] for data that
    /// stays resident for the rest of the run. Fails (without changing
    /// the account) when the reservation would cross the limit.
    pub fn try_hold(&self, bytes: u64) -> Result<MemHold, MemPressure> {
        let updated = self
            .inner
            .current
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                let next = cur.checked_add(bytes)?;
                match self.inner.limit {
                    Some(limit) if next > limit => None,
                    _ => Some(next),
                }
            });
        match updated {
            Ok(prev) => {
                self.inner.peak.fetch_max(prev + bytes, Ordering::SeqCst);
                Ok(MemHold {
                    inner: Arc::clone(&self.inner),
                    bytes,
                    persisted: false,
                })
            }
            Err(in_use) => Err(MemPressure {
                requested: bytes,
                in_use,
                limit: self.inner.limit.unwrap_or(u64::MAX),
            }),
        }
    }

    /// Bytes currently held.
    pub fn in_use(&self) -> u64 {
        self.inner.current.load(Ordering::SeqCst)
    }

    /// High-water mark of held bytes over the tracker's lifetime.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::SeqCst)
    }

    /// The armed limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.inner.limit
    }

    /// Bytes still admissible before the limit; `None` when unlimited.
    pub fn headroom(&self) -> Option<u64> {
        self.inner
            .limit
            .map(|l| l.saturating_sub(self.in_use()))
    }
}

/// An admitted reservation. Dropping it releases the bytes; persisted
/// holds stay on the account for the tracker's lifetime (data that
/// lives to the end of the run, like a session's resident matrices).
#[derive(Debug)]
pub struct MemHold {
    inner: Arc<MemInner>,
    bytes: u64,
    persisted: bool,
}

impl MemHold {
    /// Bytes this hold covers.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Keep the bytes on the account permanently (the backing data
    /// outlives the scope that reserved it).
    pub fn persist(mut self) {
        self.persisted = true;
    }
}

impl Drop for MemHold {
    fn drop(&mut self) {
        if !self.persisted {
            self.inner.current.fetch_sub(self.bytes, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_trips() {
        let t = CancelToken::inert();
        assert!(!t.is_cancelled());
        for _ in 0..1000 {
            assert!(t.checkpoint().is_ok());
        }
        assert_eq!(t.steps_done(), 1000);
        assert_eq!(t.cause(), None);
    }

    #[test]
    fn explicit_cancel_trips_and_is_shared_across_clones() {
        let t = CancelToken::inert();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert!(c.cancel_requested());
        let i = c.checkpoint().expect_err("must trip");
        assert_eq!(i.cause, CancelCause::Cancelled);
        assert_eq!(i.steps, 0);
    }

    #[test]
    fn step_budget_trips_at_the_limit_exactly() {
        let t = CancelToken::with_budget(Budget::steps(3));
        assert!(t.checkpoint().is_ok());
        assert!(t.checkpoint().is_ok());
        assert!(t.checkpoint().is_ok());
        let i = t.checkpoint().expect_err("4th checkpoint must trip");
        assert_eq!(i.cause, CancelCause::StepLimit);
        assert_eq!(i.steps, 3, "the tripping step is not counted as done");
    }

    #[test]
    fn deadline_trips_after_it_passes() {
        let t = CancelToken::with_budget(Budget::wall_ms(20));
        assert!(t.checkpoint().is_ok(), "fresh deadline must not trip");
        std::thread::sleep(Duration::from_millis(40));
        let i = t.checkpoint().expect_err("deadline passed");
        assert_eq!(i.cause, CancelCause::Deadline);
        assert!(i.elapsed >= Duration::from_millis(20));
    }

    #[test]
    fn child_trips_when_parent_does_but_keeps_its_own_progress() {
        let parent = CancelToken::inert();
        let child = parent.child(Budget::UNLIMITED);
        assert!(child.checkpoint().is_ok());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(
            !child.cancel_requested(),
            "the child itself was not cancelled"
        );
        let i = child.checkpoint().expect_err("parent cancel propagates");
        assert_eq!(i.cause, CancelCause::Cancelled);
        assert_eq!(i.steps, 1);
    }

    #[test]
    fn child_budget_is_independent_of_the_parent() {
        let parent = CancelToken::inert();
        let child = parent.child(Budget::steps(1));
        assert!(child.checkpoint().is_ok());
        assert!(child.checkpoint().is_err(), "child limit trips the child");
        assert!(!parent.is_cancelled(), "but never the parent");
        assert!(parent.checkpoint().is_ok());
    }

    #[test]
    fn remaining_wall_tracks_the_tightest_deadline_on_the_chain() {
        // No deadline anywhere: nothing to report.
        let inert = CancelToken::inert();
        assert_eq!(inert.remaining_wall(), None);
        let stepper = CancelToken::with_budget(Budget::steps(5));
        assert_eq!(stepper.remaining_wall(), None, "step budgets have no schedule");

        // A fresh deadline reports a positive remainder no larger than
        // the armed budget.
        let t = CancelToken::with_budget(Budget::wall_ms(200));
        let left = t.remaining_wall().expect("deadline armed");
        assert!(left <= Duration::from_millis(200));
        assert!(left > Duration::ZERO, "fresh budget cannot already be spent");

        // A child with a looser budget inherits the parent's tighter one.
        let child = t.child(Budget::wall_ms(60_000));
        let child_left = child.remaining_wall().expect("chain has deadlines");
        assert!(child_left <= Duration::from_millis(200), "{child_left:?}");

        // A passed deadline saturates at zero instead of wrapping.
        let spent = CancelToken::with_budget(Budget::wall_ms(5));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(spent.remaining_wall(), Some(Duration::ZERO));
    }

    #[test]
    fn budget_builders_compose() {
        assert!(Budget::UNLIMITED.is_unlimited());
        assert!(Budget::default().is_unlimited());
        let b = Budget::wall_ms(500).and_steps(10);
        assert_eq!(b.wall, Some(Duration::from_millis(500)));
        assert_eq!(b.max_steps, Some(10));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn interrupt_display_names_the_cause_and_progress() {
        let i = Interrupt {
            cause: CancelCause::Deadline,
            elapsed: Duration::from_millis(1500),
            steps: 42,
        };
        let s = i.to_string();
        assert!(s.contains("timed out"), "{s}");
        assert!(s.contains("1.500s"), "{s}");
        assert!(s.contains("42 steps"), "{s}");
        let c = Interrupt {
            cause: CancelCause::Cancelled,
            ..i
        };
        assert!(c.to_string().contains("cancelled"), "{c}");
        let l = Interrupt {
            cause: CancelCause::StepLimit,
            ..i
        };
        assert!(l.to_string().contains("step budget exhausted"), "{l}");
    }

    #[test]
    fn mem_tracker_accounts_holds_and_releases() {
        let t = MemTracker::with_budget(MemBudget::bytes(100));
        assert_eq!(t.limit(), Some(100));
        assert_eq!(t.headroom(), Some(100));
        let a = t.try_hold(40).expect("fits");
        assert_eq!(a.bytes(), 40);
        assert_eq!(t.in_use(), 40);
        assert_eq!(t.headroom(), Some(60));
        let b = t.try_hold(60).expect("exactly fills the budget");
        assert_eq!(t.in_use(), 100);
        let p = t.try_hold(1).expect_err("over budget");
        assert_eq!(p.requested, 1);
        assert_eq!(p.in_use, 100);
        assert_eq!(p.limit, 100);
        assert!(p.to_string().contains("memory budget exceeded"), "{p}");
        drop(b);
        assert_eq!(t.in_use(), 40);
        drop(a);
        assert_eq!(t.in_use(), 0);
        assert_eq!(t.peak(), 100, "peak survives releases");
    }

    #[test]
    fn mem_persisted_holds_survive_scope_exit() {
        let t = MemTracker::with_budget(MemBudget::bytes(50));
        {
            let h = t.try_hold(30).expect("fits");
            h.persist();
        }
        assert_eq!(t.in_use(), 30, "persisted bytes stay on the account");
        assert!(t.try_hold(30).is_err());
        assert!(t.try_hold(20).is_ok());
    }

    #[test]
    fn unlimited_tracker_accounts_without_rejecting() {
        let t = MemTracker::unlimited();
        assert_eq!(t.limit(), None);
        assert_eq!(t.headroom(), None);
        let h = t.try_hold(u64::MAX / 2).expect("unlimited never rejects");
        assert_eq!(t.peak(), u64::MAX / 2);
        drop(h);
        assert_eq!(t.in_use(), 0);
        assert!(MemBudget::UNLIMITED.is_unlimited());
        assert_eq!(MemBudget::mib(2).max_bytes, Some(2 * 1024 * 1024));
        assert!(!MemBudget::bytes(1).is_unlimited());
    }

    #[test]
    fn mem_trackers_share_state_across_clones() {
        let t = MemTracker::with_budget(MemBudget::bytes(10));
        let c = t.clone();
        let h = c.try_hold(10).expect("fits");
        assert!(t.try_hold(1).is_err(), "clones share one account");
        drop(h);
        assert_eq!(t.in_use(), 0);
    }
}
