//! Panic containment with a drop-guarded quiet hook.
//!
//! [`contain`] runs a closure under `catch_unwind`, returning the panic
//! payload text as `Err` instead of unwinding. While a containment is
//! active on a thread, the process-wide panic hook stays silent for
//! *that thread's* panics (the containment result is the report; the
//! default hook's stderr noise would be misleading), while panics on
//! other threads still reach the default hook.
//!
//! The active-containment flag is restored by an RAII guard, not by a
//! manual set/unset pair, so the flag can never stay latched — not even
//! if the payload extraction itself panics while the hook is swapped.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    static CONTAINED: Cell<bool> = const { Cell::new(false) };
}

static HOOK_INIT: Once = Once::new();

fn install_quiet_hook() {
    HOOK_INIT.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CONTAINED.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// RAII restorer for the per-thread containment flag: captures the
/// previous value on construction and writes it back on drop, so every
/// exit path (normal return, caught unwind, nested containment) leaves
/// the flag exactly as it found it.
struct Restore(bool);

impl Restore {
    fn engage() -> Restore {
        Restore(CONTAINED.with(|c| c.replace(true)))
    }
}

impl Drop for Restore {
    fn drop(&mut self) {
        CONTAINED.with(|c| c.set(self.0));
    }
}

/// Extract a readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Run `f`, containing any panic and returning its message as `Err`.
///
/// Panics raised inside `f` on *this* thread are kept off stderr (the
/// containment is the report); panics on other threads still reach the
/// default hook. Nested containments compose: the innermost one catches.
pub fn contain<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    let _restore = Restore::engage();
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(&*p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contain_returns_value_or_panic_text() {
        assert_eq!(contain(|| 41 + 1), Ok(42));
        let err = contain(|| panic!("boom {}", 7)).expect_err("panic contained");
        assert_eq!(err, "boom 7");
    }

    #[test]
    fn containment_flag_is_restored_after_panic() {
        let _ = contain(|| panic!("first"));
        // If the flag leaked, this uncontained closure's hook state
        // would be wrong; we can only observe the *flag* indirectly by
        // containing again, which must still work.
        assert_eq!(contain(|| 1), Ok(1));
        CONTAINED.with(|c| assert!(!c.get(), "flag must reset after contain"));
    }

    #[test]
    fn nested_containments_restore_outer_state() {
        let outer = contain(|| {
            CONTAINED.with(|c| assert!(c.get()));
            let inner = contain(|| panic!("inner"));
            assert!(inner.is_err());
            // The inner Restore must re-latch the *outer* containment.
            CONTAINED.with(|c| assert!(c.get(), "outer containment lost"));
            7
        });
        assert_eq!(outer, Ok(7));
    }

    #[test]
    fn opaque_payloads_get_a_placeholder() {
        let err = contain(|| std::panic::panic_any(13_u32)).expect_err("contained");
        assert_eq!(err, "opaque panic payload");
    }
}
