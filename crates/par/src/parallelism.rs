//! The user-facing parallelism policy.

/// Environment variable consulted by [`Parallelism::Auto`] (and the
/// test gate in `scripts/check.sh`): a worker count, or `auto`/`0` for
/// hardware detection.
pub const JOBS_ENV: &str = "FAIREM_JOBS";

/// How much parallelism a suite run may use.
///
/// Whatever the policy, results are **identical** — the pool assembles
/// chunk outputs in index order, every stage is a pure function of its
/// index, and the suite's own seeds are never shared across workers.
/// The policy only decides wall-clock time and thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Strictly sequential: no worker threads are spawned at all.
    Off,
    /// Use `FAIREM_JOBS` if set, else one worker per hardware thread.
    #[default]
    Auto,
    /// Exactly `n` workers (clamped to at least 1).
    Fixed(usize),
}

impl Parallelism {
    /// Parse a `--jobs` / `FAIREM_JOBS` value: `auto` or `0` mean
    /// [`Parallelism::Auto`], a positive integer means
    /// [`Parallelism::Fixed`]. Returns `None` for anything else.
    pub fn parse_jobs(raw: &str) -> Option<Parallelism> {
        let raw = raw.trim();
        if raw.eq_ignore_ascii_case("auto") {
            return Some(Parallelism::Auto);
        }
        match raw.parse::<usize>() {
            Ok(0) => Some(Parallelism::Auto),
            Ok(n) => Some(Parallelism::Fixed(n)),
            Err(_) => None,
        }
    }

    /// Interpret a raw `FAIREM_JOBS` value. `auto` and positive worker
    /// counts are honored as-is; everything else — `0`, negatives,
    /// unparseable text — falls back to [`Parallelism::Auto`] and the
    /// second element carries a warning for the caller to surface.
    /// Split out from [`Parallelism::from_env`] so the fallback policy
    /// is unit-testable without touching process environment.
    pub fn interpret_env_jobs(raw: &str) -> (Parallelism, Option<String>) {
        match Parallelism::parse_jobs(raw) {
            Some(p @ Parallelism::Fixed(_)) => (p, None),
            Some(Parallelism::Auto) if raw.trim().eq_ignore_ascii_case("auto") => {
                (Parallelism::Auto, None)
            }
            // `0` (parsed as Auto but ambiguous as a worker count),
            // negative, or unparseable: degrade to Auto, loudly.
            _ => (
                Parallelism::Auto,
                Some(format!(
                    "warning: {JOBS_ENV}={raw:?} is not a positive worker count or \
                     `auto`; falling back to auto (hardware threads)"
                )),
            ),
        }
    }

    /// The policy armed by the environment, if any. Invalid values fall
    /// back to [`Parallelism::Auto`] with a one-time stderr warning
    /// rather than being silently ignored.
    pub fn from_env() -> Option<Parallelism> {
        let raw = std::env::var(JOBS_ENV).ok()?;
        let (policy, warning) = Parallelism::interpret_env_jobs(&raw);
        if let Some(w) = warning {
            // Warn once per process: `workers()` re-reads the env on
            // every parallel region and repeating the line is noise.
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("{w}"));
        }
        Some(policy)
    }

    /// The worker count this policy resolves to on this machine. `Auto`
    /// re-reads the environment on every call, so a policy stored in a
    /// long-lived config tracks `FAIREM_JOBS` changes.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => match Parallelism::from_env() {
                Some(Parallelism::Fixed(n)) => n.max(1),
                // `FAIREM_JOBS=auto`/`0` or unset: hardware count.
                _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
            },
        }
    }

    /// True when this policy never spawns worker threads.
    pub fn is_sequential(self) -> bool {
        self.workers() <= 1
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Off => f.write_str("off"),
            Parallelism::Auto => f.write_str("auto"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_jobs_covers_the_flag_grammar() {
        assert_eq!(Parallelism::parse_jobs("auto"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::parse_jobs("AUTO"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::parse_jobs("0"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::parse_jobs("1"), Some(Parallelism::Fixed(1)));
        assert_eq!(Parallelism::parse_jobs(" 4 "), Some(Parallelism::Fixed(4)));
        assert_eq!(Parallelism::parse_jobs("-1"), None);
        assert_eq!(Parallelism::parse_jobs("many"), None);
        assert_eq!(Parallelism::parse_jobs(""), None);
    }

    #[test]
    fn invalid_env_jobs_fall_back_to_auto_with_a_warning() {
        // Honored verbatim, no warning.
        assert_eq!(
            Parallelism::interpret_env_jobs("4"),
            (Parallelism::Fixed(4), None)
        );
        assert_eq!(
            Parallelism::interpret_env_jobs(" auto "),
            (Parallelism::Auto, None)
        );
        // 0, negative, and garbage all degrade to Auto and warn.
        for bad in ["0", "-2", "banana", "", "1.5"] {
            let (policy, warning) = Parallelism::interpret_env_jobs(bad);
            assert_eq!(policy, Parallelism::Auto, "{bad:?}");
            let w = warning.unwrap_or_else(|| panic!("{bad:?} must warn"));
            assert!(w.contains(JOBS_ENV), "{w}");
            assert!(w.contains("falling back to auto"), "{w}");
        }
    }

    #[test]
    fn workers_resolution_is_at_least_one() {
        assert_eq!(Parallelism::Off.workers(), 1);
        assert_eq!(Parallelism::Fixed(0).workers(), 1);
        assert_eq!(Parallelism::Fixed(7).workers(), 7);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn sequential_policies_report_it() {
        assert!(Parallelism::Off.is_sequential());
        assert!(Parallelism::Fixed(1).is_sequential());
        assert!(!Parallelism::Fixed(4).is_sequential());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for p in [Parallelism::Auto, Parallelism::Fixed(3)] {
            assert_eq!(Parallelism::parse_jobs(&p.to_string()), Some(p));
        }
        assert_eq!(Parallelism::Off.to_string(), "off");
    }
}
