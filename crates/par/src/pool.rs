//! The fixed-size worker pool.
//!
//! Scheduling model: a parallel region partitions the index range
//! `0..n` into fixed chunks, spawns `workers` scoped threads, and the
//! threads pull chunk indices from one atomic cursor (work stealing at
//! chunk granularity). Each thread tags its chunk outputs with the
//! chunk index, and the caller stitches outputs back in chunk order —
//! so the assembled result is **bit-for-bit identical** to a sequential
//! run no matter how many workers raced or how chunks interleaved.
//!
//! Worker threads are scoped to the parallel region (fork-join): the
//! pool object carries the policy, not live threads, so there is no
//! cross-call state, no job-queue lifetime unsafety, and a poisoned
//! region can never leak threads into the next one.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use fairem_obs::Recorder;

use crate::cancel::{CancelToken, Interrupt};
use crate::contain::contain;
use crate::parallelism::Parallelism;

/// A contained panic, attributed to the chunk of work it escaped from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPanic {
    /// The index range of the chunk that panicked.
    pub range: Range<usize>,
    /// The captured panic payload text.
    pub detail: String,
}

impl std::fmt::Display for ChunkPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chunk {}..{} panicked: {}",
            self.range.start, self.range.end, self.detail
        )
    }
}

impl std::error::Error for ChunkPanic {}

/// The outcome of a cancellable parallel region.
///
/// Generic over the *collected* output `C`, not the per-item type: pool
/// primitives produce `ParOutcome<Vec<T>>`, while higher-level batch
/// APIs that stitch items into a richer container (e.g. a feature
/// `Matrix`) return `ParOutcome<Matrix>` via [`ParOutcome::map`] —
/// the partial-progress semantics carry through unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParOutcome<C> {
    /// Every item ran; the output is bit-for-bit the sequential result.
    Complete(C),
    /// The token tripped mid-region. Workers stop pulling new chunks
    /// (in-flight chunks finish), so the region ends promptly and no
    /// output is torn mid-chunk.
    Interrupted {
        /// The longest contiguous prefix of results, in index order —
        /// identical to what a sequential run would have produced for
        /// those indices. Safe to consume as a partial result.
        done: C,
        /// Total items that finished anywhere (≥ the prefix length,
        /// since out-of-order chunks past the first gap are accounted
        /// but not returned).
        completed: usize,
        /// Items the full region would have processed.
        total: usize,
        /// Why and when the region was cut.
        interrupt: Interrupt,
    },
}

impl<C> ParOutcome<C> {
    /// The completed results, discarding partial-progress metadata.
    pub fn into_done(self) -> C {
        match self {
            ParOutcome::Complete(v) => v,
            ParOutcome::Interrupted { done, .. } => done,
        }
    }

    /// The interrupt record, if the region was cut.
    pub fn interrupt(&self) -> Option<&Interrupt> {
        match self {
            ParOutcome::Complete(_) => None,
            ParOutcome::Interrupted { interrupt, .. } => Some(interrupt),
        }
    }

    /// Transform the collected output while preserving the outcome
    /// shape and progress accounting. This is how batch APIs lift a
    /// `ParOutcome<Vec<Row>>` into a `ParOutcome<Matrix>`: `f` runs on
    /// the complete result *and* on an interrupted prefix, so it must
    /// be meaningful for both (a prefix of rows is a prefix matrix).
    pub fn map<D>(self, f: impl FnOnce(C) -> D) -> ParOutcome<D> {
        match self {
            ParOutcome::Complete(v) => ParOutcome::Complete(f(v)),
            ParOutcome::Interrupted {
                done,
                completed,
                total,
                interrupt,
            } => ParOutcome::Interrupted {
                done: f(done),
                completed,
                total,
                interrupt,
            },
        }
    }
}

/// Chunk outputs harvested from a (possibly interrupted) region:
/// `(chunk index, output)` pairs sorted by chunk index, plus the chunk
/// count the full region would have had.
struct Harvest<T> {
    tagged: Vec<(usize, T)>,
    n_chunks: usize,
}

impl<T> Harvest<T> {
    fn is_complete(&self) -> bool {
        self.tagged.len() == self.n_chunks
    }
}

/// A fixed-size worker pool over index ranges.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    workers: usize,
    recorder: Recorder,
}

impl WorkerPool {
    /// A pool with exactly `workers` workers (clamped to at least 1),
    /// carrying the inert (disabled) recorder.
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool {
            workers: workers.max(1),
            recorder: Recorder::disabled(),
        }
    }

    /// A pool sized by a [`Parallelism`] policy.
    pub fn with_parallelism(p: Parallelism) -> WorkerPool {
        WorkerPool::new(p.workers())
    }

    /// Attach an observability recorder: parallel regions count their
    /// chunks and time them into `par.*` metrics, and stage code that
    /// holds only the pool can reach the recorder via
    /// [`WorkerPool::recorder`]. The default (disabled) recorder keeps
    /// every region bit-for-bit on the pre-observability path — no
    /// clock reads, no locks.
    pub fn observe(mut self, recorder: Recorder) -> WorkerPool {
        self.recorder = recorder;
        self
    }

    /// The recorder this pool carries (disabled unless
    /// [`WorkerPool::observe`] attached one).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The chunk size used for `n` items: roughly four chunks per
    /// worker, so stragglers rebalance without drowning the scheduler
    /// in tiny chunks.
    fn chunk_for(&self, n: usize) -> usize {
        n.div_ceil(self.workers * 4).max(1)
    }

    /// Run `per_chunk` over chunks of `0..n`, observing `token` (when
    /// given) before each chunk is pulled: a tripped token stops the
    /// pull, in-flight chunks finish, and the harvest may be partial.
    /// `per_chunk` must not unwind (callers wrap it in [`contain`]); if
    /// it does anyway, the panic is re-raised on the calling thread
    /// after all workers finish.
    fn harvest<T: Send>(
        &self,
        n: usize,
        token: Option<&CancelToken>,
        per_chunk: impl Fn(Range<usize>) -> T + Sync,
    ) -> Harvest<T> {
        if n == 0 {
            return Harvest {
                tagged: Vec::new(),
                n_chunks: 0,
            };
        }
        let chunk = self.chunk_for(n);
        let n_chunks = n.div_ceil(chunk);
        let range_of = |c: usize| c * chunk..((c + 1) * chunk).min(n);
        let tripped = || token.is_some_and(CancelToken::is_cancelled);
        // Observability: a disabled recorder takes the untimed branch —
        // no clock read, no lock — so metrics-off regions run the exact
        // pre-instrumentation code path.
        let observed = self.recorder.is_enabled();
        if observed {
            self.recorder.incr("par.regions");
            self.recorder.add("par.items", n as u64);
        }
        let per_chunk = &per_chunk;
        let run = move |r: Range<usize>| {
            if observed {
                let start = std::time::Instant::now();
                let out = per_chunk(r);
                self.recorder
                    .observe("par.chunk_secs", start.elapsed().as_secs_f64());
                self.recorder.incr("par.chunks");
                out
            } else {
                per_chunk(r)
            }
        };
        if self.workers == 1 || n_chunks == 1 {
            // Sequential fast path: no threads at all (Parallelism::Off).
            let mut tagged = Vec::with_capacity(n_chunks);
            for c in 0..n_chunks {
                if tripped() {
                    break;
                }
                tagged.push((c, run(range_of(c))));
            }
            return Harvest { tagged, n_chunks };
        }
        let cursor = AtomicUsize::new(0);
        let threads = self.workers.min(n_chunks);
        let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        loop {
                            if tripped() {
                                return out;
                            }
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                return out;
                            }
                            out.push((c, run(range_of(c))));
                        }
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(n_chunks);
            for h in handles {
                match h.join() {
                    Ok(part) => all.extend(part),
                    // Only reachable if `per_chunk` unwound despite the
                    // contract; surface it on the calling thread.
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
            all
        });
        tagged.sort_unstable_by_key(|(c, _)| *c);
        Harvest { tagged, n_chunks }
    }

    /// Run `per_chunk` over every chunk of `0..n` and return the
    /// outputs in chunk order.
    fn run_chunks<T: Send>(
        &self,
        n: usize,
        per_chunk: impl Fn(Range<usize>) -> T + Sync,
    ) -> Vec<T> {
        // Without a token the harvest is always complete.
        self.harvest(n, None, per_chunk)
            .tagged
            .into_iter()
            .map(|(_, t)| t)
            .collect()
    }

    /// Stitch a harvest of per-chunk item vectors into a [`ParOutcome`]:
    /// complete when every chunk ran, otherwise the contiguous prefix
    /// plus progress accounting.
    fn assemble<T>(h: Harvest<Vec<T>>, n: usize, token: &CancelToken) -> ParOutcome<Vec<T>> {
        if h.is_complete() {
            let mut out = Vec::with_capacity(n);
            for (_, v) in h.tagged {
                out.extend(v);
            }
            return ParOutcome::Complete(out);
        }
        let completed = h.tagged.iter().map(|(_, v)| v.len()).sum();
        let mut done = Vec::new();
        for (next, (c, v)) in h.tagged.into_iter().enumerate() {
            if c != next {
                break;
            }
            done.extend(v);
        }
        ParOutcome::Interrupted {
            done,
            completed,
            total: n,
            interrupt: token.interrupt(),
        }
    }

    /// Chunked parallel map over `0..n` with deterministic ordering:
    /// `par_map(n, f)[i] == f(i)` for every `i`, regardless of worker
    /// count. Panics are captured per chunk and the first (in chunk
    /// order) is re-raised after every worker has finished, so no work
    /// is silently lost mid-region.
    ///
    /// # Panics
    /// If `f` panics for any index.
    pub fn par_map<T: Send>(&self, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        match self.try_par_map(n, f) {
            Ok(out) => out,
            // fairem: allow(panic) — documented # Panics contract: re-raises a worker panic
            Err(p) => panic!("{}", p.detail),
        }
    }

    /// Like [`WorkerPool::par_map`], but a contained chunk panic is
    /// returned as a [`ChunkPanic`] (the first failing chunk in chunk
    /// order) instead of unwinding — the shape stage-level callers need
    /// to convert into the suite's error taxonomy.
    pub fn try_par_map<T: Send>(
        &self,
        n: usize,
        f: impl Fn(usize) -> T + Sync,
    ) -> Result<Vec<T>, ChunkPanic> {
        let f = &f;
        let chunks = self.run_chunks(n, move |range| {
            let r = range.clone();
            contain(move || r.map(f).collect::<Vec<T>>())
                .map_err(|detail| ChunkPanic { range, detail })
        });
        let mut out = Vec::with_capacity(n);
        for c in chunks {
            out.extend(c?);
        }
        Ok(out)
    }

    /// Parallel map with **per-item** panic isolation: every index gets
    /// its own contained outcome, so one poisoned item degrades only
    /// itself — the shape the per-matcher train/score fan-out needs.
    pub fn par_map_isolated<T: Send>(
        &self,
        n: usize,
        f: impl Fn(usize) -> T + Sync,
    ) -> Vec<Result<T, String>> {
        self.run_chunks(n, |range| {
            range.map(|i| contain(|| f(i))).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Chunked parallel loop over `0..n` for side-effecting work whose
    /// outputs live elsewhere (e.g. thread-safe accumulators).
    ///
    /// # Panics
    /// If `f` panics for any index (first chunk in chunk order wins).
    pub fn par_for_each(&self, n: usize, f: impl Fn(usize) + Sync) {
        self.par_map(n, f);
    }

    /// Cancellable [`WorkerPool::par_map`]: workers stop pulling chunks
    /// once `token` trips, and the outcome carries the contiguous
    /// prefix of results plus progress accounting. With an untripped
    /// token the output is bit-for-bit the `par_map` output.
    ///
    /// # Panics
    /// If `f` panics for any completed index.
    pub fn par_map_within<T: Send>(
        &self,
        n: usize,
        token: &CancelToken,
        f: impl Fn(usize) -> T + Sync,
    ) -> ParOutcome<Vec<T>> {
        match self.try_par_map_within(n, token, f) {
            Ok(out) => out,
            // fairem: allow(panic) — documented # Panics contract: re-raises a worker panic
            Err(p) => panic!("{}", p.detail),
        }
    }

    /// Cancellable [`WorkerPool::try_par_map`]. A contained chunk panic
    /// takes precedence over an interruption: if any chunk that ran
    /// panicked, the first such chunk (in chunk order) is returned as
    /// the error even when the token also tripped.
    pub fn try_par_map_within<T: Send>(
        &self,
        n: usize,
        token: &CancelToken,
        f: impl Fn(usize) -> T + Sync,
    ) -> Result<ParOutcome<Vec<T>>, ChunkPanic> {
        let f = &f;
        self.try_par_scratch_within(n, token, || (), move |(), i| f(i))
    }

    /// Cancellable chunked map with **per-chunk scratch state**: `init`
    /// builds a fresh scratch value at the start of every chunk, and
    /// `f` gets `(&mut scratch, index)` for each index in the chunk.
    ///
    /// This is the shape batch similarity kernels need — reusable
    /// working buffers (DP rows, match flags) that amortize allocation
    /// across a chunk without ever leaking state between chunks.
    /// Determinism contract: because `init` runs per *chunk* (not per
    /// worker) and `f` must leave no observable state in the scratch
    /// that affects later items beyond what a freshly-`init`ed scratch
    /// would, the stitched output is bit-for-bit identical for every
    /// worker count and chunk size. Panics and interrupts behave
    /// exactly as in [`WorkerPool::try_par_map_within`].
    pub fn try_par_scratch_within<S, T: Send>(
        &self,
        n: usize,
        token: &CancelToken,
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, usize) -> T + Sync,
    ) -> Result<ParOutcome<Vec<T>>, ChunkPanic> {
        let init = &init;
        let f = &f;
        let h = self.harvest(n, Some(token), move |range| {
            let r = range.clone();
            contain(move || {
                let mut scratch = init();
                r.map(|i| f(&mut scratch, i)).collect::<Vec<T>>()
            })
            .map_err(|detail| ChunkPanic { range, detail })
        });
        let n_chunks = h.n_chunks;
        let mut tagged = Vec::with_capacity(h.tagged.len());
        for (c, r) in h.tagged {
            tagged.push((c, r?));
        }
        Ok(WorkerPool::assemble(Harvest { tagged, n_chunks }, n, token))
    }

    /// Cancellable [`WorkerPool::par_map_isolated`]: per-item panic
    /// isolation plus cooperative cancellation between chunks. Panicked
    /// items are `Err` entries in the outcome (they count as completed
    /// — the item *ran*, it just failed).
    pub fn par_map_isolated_within<T: Send>(
        &self,
        n: usize,
        token: &CancelToken,
        f: impl Fn(usize) -> T + Sync,
    ) -> ParOutcome<Vec<Result<T, String>>> {
        let h = self.harvest(n, Some(token), |range| {
            range.map(|i| contain(|| f(i))).collect::<Vec<_>>()
        });
        WorkerPool::assemble(h, n, token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_for_every_worker_count() {
        let n = 1003;
        let expected: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for workers in [1, 2, 3, 4, 9] {
            let pool = WorkerPool::new(workers);
            let got = pool.par_map(n, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn pool_respects_parallelism_policy() {
        assert_eq!(WorkerPool::with_parallelism(Parallelism::Off).workers(), 1);
        assert_eq!(
            WorkerPool::with_parallelism(Parallelism::Fixed(4)).workers(),
            4
        );
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = WorkerPool::new(4);
        assert!(pool.par_map(0, |i| i).is_empty());
        assert_eq!(pool.try_par_map(0, |i| i), Ok(Vec::new()));
        assert!(pool.par_map_isolated(0, |i| i).is_empty());
    }

    #[test]
    fn try_par_map_attributes_the_panicking_chunk() {
        let pool = WorkerPool::new(4);
        let err = pool
            .try_par_map(100, |i| {
                assert!(i != 57, "item 57 is cursed");
                i
            })
            .expect_err("must fail");
        assert!(err.range.contains(&57), "{:?}", err.range);
        assert!(err.detail.contains("cursed"), "{}", err.detail);
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn par_map_isolated_degrades_only_the_poisoned_item() {
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let out = pool.par_map_isolated(10, |i| {
                assert!(i != 3, "injected: item 3 dies");
                i * 2
            });
            assert_eq!(out.len(), 10);
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let e = r.as_ref().expect_err("item 3 must fail");
                    assert!(e.contains("item 3 dies"));
                } else {
                    assert_eq!(r.as_ref().copied(), Ok(i * 2), "workers={workers}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "item 5 detonated")]
    fn par_map_repanics_after_joining() {
        let pool = WorkerPool::new(2);
        let _ = pool.par_map(20, |i| assert!(i != 5, "item 5 detonated"));
    }

    #[test]
    fn par_for_each_runs_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkerPool::new(4);
        pool.par_for_each(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn untripped_token_outcome_is_bitwise_the_par_map_output() {
        use crate::cancel::CancelToken;
        let n = 777;
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let plain = pool.par_map(n, |i| (i as u64).wrapping_mul(0x9E37));
            let token = CancelToken::inert();
            match pool.par_map_within(n, &token, |i| (i as u64).wrapping_mul(0x9E37)) {
                ParOutcome::Complete(v) => assert_eq!(v, plain, "workers={workers}"),
                other => panic!("untripped token must complete: {other:?}"),
            }
        }
    }

    #[test]
    fn pretripped_token_yields_empty_partial_with_accounting() {
        use crate::cancel::{CancelCause, CancelToken};
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let token = CancelToken::inert();
            token.cancel();
            match pool.par_map_within(500, &token, |i| i) {
                ParOutcome::Interrupted {
                    done,
                    completed,
                    total,
                    interrupt,
                } => {
                    assert!(done.is_empty(), "workers={workers}");
                    assert_eq!(completed, 0);
                    assert_eq!(total, 500);
                    assert_eq!(interrupt.cause, CancelCause::Cancelled);
                }
                ParOutcome::Complete(_) => panic!("pre-tripped token must interrupt"),
            }
        }
    }

    #[test]
    fn mid_region_cancel_returns_a_contiguous_prefix() {
        use crate::cancel::CancelToken;
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let token = CancelToken::inert();
            let cut = 100;
            let outcome = pool.par_map_within(100_000, &token, |i| {
                if i == cut {
                    token.cancel();
                }
                i
            });
            match outcome {
                ParOutcome::Interrupted {
                    done,
                    completed,
                    total,
                    ..
                } => {
                    // The prefix is exactly the sequential result for
                    // those indices, and accounting is consistent.
                    assert_eq!(done, (0..done.len()).collect::<Vec<_>>());
                    assert!(completed >= done.len(), "workers={workers}");
                    assert_eq!(total, 100_000);
                    assert!(completed < total, "cancel must cut the region short");
                }
                ParOutcome::Complete(_) => {
                    panic!("cancel at item {cut} must interrupt (workers={workers})")
                }
            }
        }
    }

    #[test]
    fn panic_wins_over_interruption_in_try_par_map_within() {
        use crate::cancel::CancelToken;
        let pool = WorkerPool::new(1);
        let token = CancelToken::inert();
        let err = pool
            .try_par_map_within(1000, &token, |i| {
                if i == 10 {
                    token.cancel();
                }
                assert!(i != 5, "item 5 is cursed");
                i
            })
            .expect_err("chunk panic must surface");
        assert!(err.range.contains(&5), "{:?}", err.range);
        assert!(err.detail.contains("cursed"));
    }

    #[test]
    fn isolated_within_keeps_per_item_attribution_under_cancellation() {
        use crate::cancel::{Budget, CancelToken};
        let pool = WorkerPool::new(4);
        let token = CancelToken::with_budget(Budget::UNLIMITED);
        let outcome = pool.par_map_isolated_within(10, &token, |i| {
            assert!(i != 3, "injected: item 3 dies");
            i * 2
        });
        match outcome {
            ParOutcome::Complete(out) => {
                assert_eq!(out.len(), 10);
                assert!(out[3].is_err());
                assert_eq!(out[7].as_ref().copied(), Ok(14));
            }
            other => panic!("untripped token must complete: {other:?}"),
        }
    }

    #[test]
    fn observed_pool_counts_regions_and_chunks_without_changing_output() {
        let n = 403;
        let expected: Vec<usize> = (0..n).map(|i| i * 3).collect();
        for workers in [1, 4] {
            let rec = Recorder::enabled();
            let pool = WorkerPool::new(workers).observe(rec.clone());
            assert!(pool.recorder().is_enabled());
            let got = pool.par_map(n, |i| i * 3);
            assert_eq!(got, expected, "workers={workers}");
            let snap = rec.snapshot();
            let counter = |name: &str| {
                snap.counters
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| *v)
            };
            assert_eq!(counter("par.regions"), Some(1), "workers={workers}");
            assert_eq!(counter("par.items"), Some(n as u64));
            let chunks = counter("par.chunks").unwrap_or(0);
            assert!(chunks >= 1, "workers={workers}");
            let hist = snap
                .histograms
                .iter()
                .find(|(k, _)| k == "par.chunk_secs")
                .map(|(_, h)| h.count);
            assert_eq!(hist, Some(chunks), "workers={workers}");
        }
    }

    #[test]
    fn disabled_recorder_snapshot_stays_empty_after_regions() {
        let pool = WorkerPool::new(4);
        let _ = pool.par_map(100, |i| i);
        let snap = pool.recorder().snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn scratch_map_matches_plain_map_for_every_worker_count() {
        use crate::cancel::CancelToken;
        let n = 1003;
        let expected: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for workers in [1, 2, 4, 9] {
            let pool = WorkerPool::new(workers);
            let token = CancelToken::inert();
            // The scratch accumulates garbage across items within a
            // chunk on purpose: outputs must not depend on it.
            let out = pool
                .try_par_scratch_within(
                    n,
                    &token,
                    Vec::<u64>::new,
                    |scratch, i| {
                        scratch.push(i as u64);
                        (i as u64).wrapping_mul(0x9E37)
                    },
                )
                .expect("no panics injected");
            match out {
                ParOutcome::Complete(v) => assert_eq!(v, expected, "workers={workers}"),
                other => panic!("untripped token must complete: {other:?}"),
            }
        }
    }

    #[test]
    fn scratch_map_attributes_panics_and_honors_cancellation() {
        use crate::cancel::CancelToken;
        let pool = WorkerPool::new(4);
        let token = CancelToken::inert();
        let err = pool
            .try_par_scratch_within(
                100,
                &token,
                || 0usize,
                |_, i| {
                    assert!(i != 57, "item 57 is cursed");
                    i
                },
            )
            .expect_err("must fail");
        assert!(err.range.contains(&57), "{:?}", err.range);

        let token = CancelToken::inert();
        token.cancel();
        match pool
            .try_par_scratch_within(500, &token, || 0usize, |_, i| i)
            .expect("no panics")
        {
            ParOutcome::Interrupted { done, total, .. } => {
                assert!(done.is_empty());
                assert_eq!(total, 500);
            }
            ParOutcome::Complete(_) => panic!("pre-tripped token must interrupt"),
        }
    }

    #[test]
    fn outcome_map_preserves_shape_and_accounting() {
        use crate::cancel::{CancelCause, CancelToken};
        let complete: ParOutcome<Vec<usize>> = ParOutcome::Complete(vec![1, 2, 3]);
        assert_eq!(complete.map(|v| v.len()), ParOutcome::Complete(3));
        let token = CancelToken::inert();
        token.cancel();
        let cut: ParOutcome<Vec<usize>> = ParOutcome::Interrupted {
            done: vec![1, 2],
            completed: 2,
            total: 10,
            interrupt: token.interrupt(),
        };
        match cut.map(|v| v.len()) {
            ParOutcome::Interrupted {
                done,
                completed,
                total,
                interrupt,
            } => {
                assert_eq!((done, completed, total), (2, 2, 10));
                assert_eq!(interrupt.cause, CancelCause::Cancelled);
            }
            ParOutcome::Complete(_) => panic!("map must preserve the interrupted shape"),
        }
    }

    #[test]
    fn chunking_covers_the_range_without_overlap() {
        // Indirectly verified by identity map: output == input order.
        for n in [1, 2, 7, 64, 65, 1000] {
            let pool = WorkerPool::new(4);
            let got = pool.par_map(n, |i| i);
            assert_eq!(got, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }
}
