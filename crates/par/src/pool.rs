//! The fixed-size worker pool.
//!
//! Scheduling model: a parallel region partitions the index range
//! `0..n` into fixed chunks, spawns `workers` scoped threads, and the
//! threads pull chunk indices from one atomic cursor (work stealing at
//! chunk granularity). Each thread tags its chunk outputs with the
//! chunk index, and the caller stitches outputs back in chunk order —
//! so the assembled result is **bit-for-bit identical** to a sequential
//! run no matter how many workers raced or how chunks interleaved.
//!
//! Worker threads are scoped to the parallel region (fork-join): the
//! pool object carries the policy, not live threads, so there is no
//! cross-call state, no job-queue lifetime unsafety, and a poisoned
//! region can never leak threads into the next one.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::contain::contain;
use crate::parallelism::Parallelism;

/// A contained panic, attributed to the chunk of work it escaped from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPanic {
    /// The index range of the chunk that panicked.
    pub range: Range<usize>,
    /// The captured panic payload text.
    pub detail: String,
}

impl std::fmt::Display for ChunkPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chunk {}..{} panicked: {}",
            self.range.start, self.range.end, self.detail
        )
    }
}

impl std::error::Error for ChunkPanic {}

/// A fixed-size worker pool over index ranges.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized by a [`Parallelism`] policy.
    pub fn with_parallelism(p: Parallelism) -> WorkerPool {
        WorkerPool::new(p.workers())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The chunk size used for `n` items: roughly four chunks per
    /// worker, so stragglers rebalance without drowning the scheduler
    /// in tiny chunks.
    fn chunk_for(&self, n: usize) -> usize {
        n.div_ceil(self.workers * 4).max(1)
    }

    /// Run `per_chunk` over every chunk of `0..n` and return the
    /// outputs in chunk order. `per_chunk` must not unwind (callers
    /// wrap it in [`contain`]); if it does anyway, the panic is
    /// re-raised on the calling thread after all workers finish.
    fn run_chunks<T: Send>(
        &self,
        n: usize,
        per_chunk: impl Fn(Range<usize>) -> T + Sync,
    ) -> Vec<T> {
        if n == 0 {
            return Vec::new();
        }
        let chunk = self.chunk_for(n);
        let n_chunks = n.div_ceil(chunk);
        let range_of = |c: usize| c * chunk..((c + 1) * chunk).min(n);
        if self.workers == 1 || n_chunks == 1 {
            // Sequential fast path: no threads at all (Parallelism::Off).
            return (0..n_chunks).map(|c| per_chunk(range_of(c))).collect();
        }
        let cursor = AtomicUsize::new(0);
        let threads = self.workers.min(n_chunks);
        let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<(usize, T)> = Vec::new();
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                return out;
                            }
                            out.push((c, per_chunk(range_of(c))));
                        }
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(n_chunks);
            for h in handles {
                match h.join() {
                    Ok(part) => all.extend(part),
                    // Only reachable if `per_chunk` unwound despite the
                    // contract; surface it on the calling thread.
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
            all
        });
        tagged.sort_unstable_by_key(|(c, _)| *c);
        tagged.into_iter().map(|(_, t)| t).collect()
    }

    /// Chunked parallel map over `0..n` with deterministic ordering:
    /// `par_map(n, f)[i] == f(i)` for every `i`, regardless of worker
    /// count. Panics are captured per chunk and the first (in chunk
    /// order) is re-raised after every worker has finished, so no work
    /// is silently lost mid-region.
    ///
    /// # Panics
    /// If `f` panics for any index.
    pub fn par_map<T: Send>(&self, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        match self.try_par_map(n, f) {
            Ok(out) => out,
            Err(p) => panic!("{}", p.detail),
        }
    }

    /// Like [`WorkerPool::par_map`], but a contained chunk panic is
    /// returned as a [`ChunkPanic`] (the first failing chunk in chunk
    /// order) instead of unwinding — the shape stage-level callers need
    /// to convert into the suite's error taxonomy.
    pub fn try_par_map<T: Send>(
        &self,
        n: usize,
        f: impl Fn(usize) -> T + Sync,
    ) -> Result<Vec<T>, ChunkPanic> {
        let f = &f;
        let chunks = self.run_chunks(n, move |range| {
            let r = range.clone();
            contain(move || r.map(f).collect::<Vec<T>>())
                .map_err(|detail| ChunkPanic { range, detail })
        });
        let mut out = Vec::with_capacity(n);
        for c in chunks {
            out.extend(c?);
        }
        Ok(out)
    }

    /// Parallel map with **per-item** panic isolation: every index gets
    /// its own contained outcome, so one poisoned item degrades only
    /// itself — the shape the per-matcher train/score fan-out needs.
    pub fn par_map_isolated<T: Send>(
        &self,
        n: usize,
        f: impl Fn(usize) -> T + Sync,
    ) -> Vec<Result<T, String>> {
        self.run_chunks(n, |range| {
            range.map(|i| contain(|| f(i))).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Chunked parallel loop over `0..n` for side-effecting work whose
    /// outputs live elsewhere (e.g. thread-safe accumulators).
    ///
    /// # Panics
    /// If `f` panics for any index (first chunk in chunk order wins).
    pub fn par_for_each(&self, n: usize, f: impl Fn(usize) + Sync) {
        self.par_map(n, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_for_every_worker_count() {
        let n = 1003;
        let expected: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for workers in [1, 2, 3, 4, 9] {
            let pool = WorkerPool::new(workers);
            let got = pool.par_map(n, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn pool_respects_parallelism_policy() {
        assert_eq!(WorkerPool::with_parallelism(Parallelism::Off).workers(), 1);
        assert_eq!(
            WorkerPool::with_parallelism(Parallelism::Fixed(4)).workers(),
            4
        );
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = WorkerPool::new(4);
        assert!(pool.par_map(0, |i| i).is_empty());
        assert_eq!(pool.try_par_map(0, |i| i), Ok(Vec::new()));
        assert!(pool.par_map_isolated(0, |i| i).is_empty());
    }

    #[test]
    fn try_par_map_attributes_the_panicking_chunk() {
        let pool = WorkerPool::new(4);
        let err = pool
            .try_par_map(100, |i| {
                assert!(i != 57, "item 57 is cursed");
                i
            })
            .expect_err("must fail");
        assert!(err.range.contains(&57), "{:?}", err.range);
        assert!(err.detail.contains("cursed"), "{}", err.detail);
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn par_map_isolated_degrades_only_the_poisoned_item() {
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let out = pool.par_map_isolated(10, |i| {
                assert!(i != 3, "injected: item 3 dies");
                i * 2
            });
            assert_eq!(out.len(), 10);
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let e = r.as_ref().expect_err("item 3 must fail");
                    assert!(e.contains("item 3 dies"));
                } else {
                    assert_eq!(r.as_ref().copied(), Ok(i * 2), "workers={workers}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "item 5 detonated")]
    fn par_map_repanics_after_joining() {
        let pool = WorkerPool::new(2);
        let _ = pool.par_map(20, |i| assert!(i != 5, "item 5 detonated"));
    }

    #[test]
    fn par_for_each_runs_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkerPool::new(4);
        pool.par_for_each(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunking_covers_the_range_without_overlap() {
        // Indirectly verified by identity map: output == input order.
        for n in [1, 2, 7, 64, 65, 1000] {
            let pool = WorkerPool::new(4);
            let got = pool.par_map(n, |i| i);
            assert_eq!(got, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }
}
