//! # fairem-par
//!
//! A from-scratch, std-only parallel execution engine for the suite:
//! a fixed-size [`WorkerPool`] with chunked [`WorkerPool::par_map`] /
//! [`WorkerPool::par_for_each`] over index ranges, deterministic result
//! ordering (output is identical to sequential execution, bit for bit,
//! regardless of worker count), and panic capture that integrates with
//! the suite's degraded-mode error taxonomy.
//!
//! Four layers:
//!
//! - [`Parallelism`] — the user-facing policy (`Off` / `Auto` /
//!   `Fixed(n)`), threaded through `SuiteConfig` and the CLI `--jobs`
//!   flag. `Auto` consults the `FAIREM_JOBS` environment variable before
//!   falling back to the hardware thread count.
//! - [`contain`] — the panic-containment primitive (drop-guarded quiet
//!   hook + `catch_unwind`) shared by the pool and by
//!   `fairem-core::fault::guard`.
//! - [`CancelToken`] / [`Budget`] — cooperative cancellation: tokens
//!   with optional wall-clock deadlines and step allowances, polled at
//!   chunk boundaries by the pool and at epoch/step boundaries by the
//!   trainers, so a hung or slow region is cut without killing threads.
//! - [`WorkerPool`] — the scheduler: workers pull index chunks from an
//!   atomic cursor and results are stitched back in chunk order, so a
//!   run with 4 workers produces exactly the sequence a run with 1
//!   worker (or no pool at all) produces. The `*_within` variants
//!   observe a token between chunks and report partial progress via
//!   [`ParOutcome`].
//!
//! The pool optionally carries a `fairem-obs` [`Recorder`]
//! ([`WorkerPool::observe`]): enabled regions count chunks and time
//! them into `par.*` metrics, while the default disabled recorder keeps
//! every region on the exact pre-instrumentation code path. That handle
//! is the crate's only dependency (itself dependency-free), so the
//! engine stays hermetic.

mod cancel;
mod contain;
mod parallelism;
mod pool;

pub use cancel::{
    Budget, CancelCause, CancelToken, Interrupt, MemBudget, MemHold, MemPressure, MemTracker,
};
pub use contain::{contain, panic_message};
pub use fairem_obs::Recorder;
pub use parallelism::{Parallelism, JOBS_ENV};
pub use pool::{ChunkPanic, ParOutcome, WorkerPool};
