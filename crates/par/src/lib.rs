//! # fairem-par
//!
//! A from-scratch, std-only parallel execution engine for the suite:
//! a fixed-size [`WorkerPool`] with chunked [`WorkerPool::par_map`] /
//! [`WorkerPool::par_for_each`] over index ranges, deterministic result
//! ordering (output is identical to sequential execution, bit for bit,
//! regardless of worker count), and panic capture that integrates with
//! the suite's degraded-mode error taxonomy.
//!
//! Three layers:
//!
//! - [`Parallelism`] — the user-facing policy (`Off` / `Auto` /
//!   `Fixed(n)`), threaded through `SuiteConfig` and the CLI `--jobs`
//!   flag. `Auto` consults the `FAIREM_JOBS` environment variable before
//!   falling back to the hardware thread count.
//! - [`contain`] — the panic-containment primitive (drop-guarded quiet
//!   hook + `catch_unwind`) shared by the pool and by
//!   `fairem-core::fault::guard`.
//! - [`WorkerPool`] — the scheduler: workers pull index chunks from an
//!   atomic cursor and results are stitched back in chunk order, so a
//!   run with 4 workers produces exactly the sequence a run with 1
//!   worker (or no pool at all) produces.
//!
//! The crate has zero dependencies (not even on the rest of the
//! workspace) so every other crate can adopt it without cycles.

mod contain;
mod parallelism;
mod pool;

pub use contain::{contain, panic_message};
pub use parallelism::{Parallelism, JOBS_ENV};
pub use pool::{ChunkPanic, WorkerPool};
