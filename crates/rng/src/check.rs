//! A miniature property-testing harness.
//!
//! Stands in for `proptest` in the hermetic build: [`cases`] runs a
//! closure over `n` independently seeded [`Gen`]s and, when a case
//! panics, re-panics with the failing case seed so the exact input can
//! be replayed with [`replay`].
//!
//! There is no shrinking — generators are kept small enough (short
//! strings, small vectors) that raw counterexamples stay readable.

use crate::rngs::StdRng;
use crate::seq::SliceRandom;
use crate::{Rng, SeedableRng};

/// Seeded source of random test inputs for one property case.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// Generator for an explicit case seed (used by [`replay`]).
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// If `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }

    /// Bernoulli draw with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// Raw 64-bit draw (e.g. to derive sub-seeds).
    pub fn u64(&mut self) -> u64 {
        use crate::RngCore;
        self.rng.next_u64()
    }

    /// String of `0..=max_len` chars drawn uniformly from `alphabet`.
    ///
    /// # Panics
    /// If `alphabet` is empty and `max_len > 0`.
    pub fn string(&mut self, alphabet: &str, max_len: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let len = self.rng.gen_range(0..=max_len);
        (0..len).map(|_| *chars.pick(&mut self.rng)).collect()
    }

    /// String of exactly `lo..=hi` chars from `alphabet`.
    pub fn string_len(&mut self, alphabet: &str, lo: usize, hi: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let len = self.rng.gen_range(lo..=hi);
        (0..len).map(|_| *chars.pick(&mut self.rng)).collect()
    }

    /// Vector of `0..=max_len` elements built by `f`.
    pub fn vec<T>(&mut self, max_len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.rng.gen_range(0..=max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// Vector of exactly `lo..=hi` elements built by `f`.
    pub fn vec_len<T>(
        &mut self,
        lo: usize,
        hi: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.rng.gen_range(lo..=hi);
        (0..len).map(|_| f(self)).collect()
    }

    /// Uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    /// If `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        items.pick(&mut self.rng)
    }
}

/// Derive the seed of case `i` under `base_seed`.
///
/// SplitMix64-style mixing so consecutive case seeds decorrelate.
fn case_seed(base_seed: u64, i: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `property` over `n` independently seeded cases.
///
/// On a failing case the panic is re-raised with the case seed attached;
/// feed that seed to [`replay`] to reproduce the exact input locally.
///
/// # Panics
/// Propagates the first case failure, annotated with its seed.
pub fn cases(n: usize, base_seed: u64, mut property: impl FnMut(&mut Gen)) {
    for i in 0..n as u64 {
        let seed = case_seed(base_seed, i);
        let mut gen = Gen::from_seed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut gen);
        }));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic".to_owned());
            // fairem: allow(panic) — the harness's contract: re-raise the failing case with its replay seed
            panic!("property failed at case {i} (replay seed {seed}): {msg}");
        }
    }
}

/// Re-run `property` on the single case identified by a replay seed
/// reported by [`cases`].
pub fn replay(seed: u64, mut property: impl FnMut(&mut Gen)) {
    let mut gen = Gen::from_seed(seed);
    property(&mut gen);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_runs_all_and_is_deterministic() {
        let mut seen = Vec::new();
        cases(10, 99, |g| seen.push(g.u64()));
        assert_eq!(seen.len(), 10);
        let mut again = Vec::new();
        cases(10, 99, |g| again.push(g.u64()));
        assert_eq!(seen, again);
        // Distinct cases draw distinct values.
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len());
    }

    #[test]
    fn failure_reports_replay_seed() {
        // Any draw ≥ 10 fails the property — with 20 cases over [0, 100)
        // every plausible stream trips it almost immediately.
        let err = std::panic::catch_unwind(|| {
            cases(20, 1, |g| {
                let v = g.usize_in(0, 100);
                assert!(v < 10, "drew {v}");
            });
        })
        .expect_err("property should fail somewhere in 20 cases");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic message");
        assert!(msg.contains("replay seed"), "{msg}");
        // The reported seed replays to the same failing draw.
        let seed: u64 = msg
            .split("replay seed ")
            .nth(1)
            .and_then(|s| s.split(')').next())
            .and_then(|s| s.parse().ok())
            .expect("seed parses");
        let mut replay_failed = false;
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            replay(seed, |g| {
                let v = g.usize_in(0, 100);
                replay_failed = v >= 10;
            });
        }));
        assert!(replay_failed);
    }

    #[test]
    fn string_respects_alphabet_and_len() {
        cases(50, 7, |g| {
            let s = g.string("abc", 12);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| "abc".contains(c)));
        });
    }
}
