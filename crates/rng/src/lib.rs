//! Deterministic, dependency-free pseudo-random numbers for the suite.
//!
//! The workspace must build hermetically (no crates-io access), so this
//! crate replaces the external `rand` dependency with a SplitMix64-seeded
//! xoshiro256++ generator behind a facade that mirrors the small slice of
//! the `rand 0.8` API the suite uses: [`rngs::StdRng`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom`] (`shuffle` / `choose`). Migrating a call site off
//! the external crate is a one-line import swap to `use fairem_rng::…`.
//!
//! Every generator is explicitly seeded — there is deliberately no
//! entropy-based constructor, so every run of the suite is reproducible.
//!
//! The [`check`] module layers a miniature property-testing harness on
//! top (seeded case generation with failure seeds reported on panic),
//! standing in for `proptest` in the offline build.

/// Core 64-bit generator interface implemented by every RNG here.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Element types [`Rng::gen_range`] can sample uniformly.
///
/// Mirrors `rand`'s `SampleUniform`: having one generic
/// [`SampleRange`] impl per range shape (rather than one per element
/// type) keeps integer-literal inference working at call sites like
/// `gen_range(2005..2024)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)` (`inclusive == false`) or
    /// `[start, end]` (`inclusive == true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, inclusive: bool)
        -> Self;
}

/// Ranges that can produce a uniform sample; mirrors `rand`'s
/// `SampleRange` so `gen_range(0..n)` / `gen_range(a..=b)` both work.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range on empty range");
        T::sample_in(rng, start, end, true)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            gen_unit_f64(self) < p
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn gen_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Top 53 bits scaled by 2^-53: the standard double-precision recipe.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` via modulo reduction.
///
/// The modulo bias is below 2^-32 for every span the suite uses (all far
/// below 2^32) and determinism matters more than the last ulp of
/// uniformity here.
fn gen_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    rng.next_u64() % span
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: $t,
                end: $t,
                inclusive: bool,
            ) -> $t {
                let span = (end as i128 - start as i128) as u64;
                let span = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    span + 1
                } else {
                    span
                };
                (start as i128 + gen_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: $t,
                end: $t,
                _inclusive: bool,
            ) -> $t {
                start + (gen_unit_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Slice sampling helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{gen_below, RngCore};

    /// `shuffle` and `choose` on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniformly chosen element of a slice the caller knows is
        /// non-empty (generator tables, test alphabets). Draws exactly
        /// like [`SliceRandom::choose`], so swapping between the two
        /// never shifts a seeded stream.
        ///
        /// # Panics
        /// If the slice is empty.
        fn pick<R: RngCore + ?Sized>(&self, rng: &mut R) -> &Self::Item {
            match self.choose(rng) {
                Some(item) => item,
                // fairem: allow(panic) — documented # Panics contract; the one sanctioned table-draw helper
                None => panic!("pick from an empty slice"),
            }
        }
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = gen_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded through SplitMix64.
    ///
    /// Named `StdRng` so `rand::rngs::StdRng` call sites migrate with an
    /// import swap; the output stream differs from rand's ChaCha-based
    /// `StdRng`, but every consumer in the workspace only relies on the
    /// stream being deterministic per seed, not on specific values.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guarantees a non-zero state for any seed.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

pub mod check;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let u = rng.gen_range(0..10usize);
            assert!(u < 10);
            let i = rng.gen_range(1950..2003);
            assert!((1950..2003).contains(&i));
            let f = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let inc = rng.gen_range(-1.5..=1.5);
            assert!((-1.5..=1.5).contains(&inc));
            let b = rng.gen_range(0..3u8);
            assert!(b < 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 3];
        for _ in 0..500 {
            seen_inc[rng.gen_range(0..=2usize)] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_edges_and_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        assert_eq!([7u8].choose(&mut rng), Some(&7));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5usize);
    }
}
