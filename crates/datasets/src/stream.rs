//! Streaming scale generator: seeded rows produced **per index**, so a
//! 10⁵–10⁷-row table can be written straight to disk (or fed to the
//! out-of-core audit path) without ever materializing it.
//!
//! Every row is a pure function of `(seed, side, index)` — iterating
//! twice, iterating a sub-range, or materializing the whole table all
//! yield byte-identical rows. Entities are laid out in fixed-width
//! *blocks* (a shared `blk<k>` token in the name) so token blocking over
//! the `name` column produces `≈ rows × block_width` candidate pairs:
//! the candidate volume is a knob, independent of row count.
//!
//! The sensitive attribute is the two-valued `tier` (`budget` /
//! `premium`), assigned deterministically per entity; budget-tier
//! duplicates carry extra title noise, reproducing the
//! group-correlated difficulty the audit narrative depends on.

use fairem_csvio::CsvTable;
use fairem_rng::rngs::StdRng;
use fairem_rng::{Rng, SeedableRng};

use crate::common::GeneratedDataset;

/// Configuration for [`ScaleDataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Rows per table.
    pub rows: usize,
    /// Entities per blocking token: token blocking yields
    /// `≈ rows × block_width` candidate pairs.
    pub block_width: usize,
    /// Fraction of A rows with a true duplicate at the same index in B.
    pub match_rate: f64,
    /// Fraction of entities in the noisy `budget` tier.
    pub budget_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> ScaleConfig {
        ScaleConfig {
            rows: 12_800,
            block_width: 8,
            match_rate: 0.3,
            budget_share: 0.5,
            seed: 23,
        }
    }
}

impl ScaleConfig {
    /// A configuration sized so token blocking produces roughly `pairs`
    /// candidates (`rows = pairs / block_width`, width 8 below 10⁶
    /// pairs, 25 at or above).
    pub fn with_pairs(pairs: u64) -> ScaleConfig {
        let block_width = if pairs >= 1_000_000 { 25 } else { 8 };
        ScaleConfig {
            rows: usize::try_from(pairs / block_width as u64).unwrap_or(usize::MAX).max(block_width),
            block_width,
            ..ScaleConfig::default()
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> ScaleConfig {
        ScaleConfig {
            rows: 48,
            block_width: 4,
            ..ScaleConfig::default()
        }
    }
}

const CATEGORIES: [&str; 8] = [
    "sensor", "module", "bracket", "adapter", "gasket", "valve", "rotor", "spindle",
];
const QUALIFIERS: [&str; 8] = [
    "alpha", "delta", "omega", "prime", "ultra", "nano", "mega", "zeta",
];
const NOISE: [&str; 6] = ["oem", "bulk", "refurb", "clearance", "genuine", "new"];

/// The streaming generator: rows on demand, nothing resident.
#[derive(Debug, Clone)]
pub struct ScaleDataset {
    config: ScaleConfig,
}

impl ScaleDataset {
    /// Bind a configuration.
    pub fn new(config: ScaleConfig) -> ScaleDataset {
        ScaleDataset { config }
    }

    /// The bound configuration.
    pub fn config(&self) -> &ScaleConfig {
        &self.config
    }

    /// Column header shared by both tables.
    pub fn header(&self) -> Vec<String> {
        ["id", "name", "detail", "tier"].map(String::from).to_vec()
    }

    /// Sensitive column names (just `tier`).
    pub fn sensitive(&self) -> Vec<String> {
        vec!["tier".to_owned()]
    }

    /// Expected candidate-pair volume under token blocking on `name`.
    pub fn candidate_estimate(&self) -> u64 {
        (self.config.rows as u64) * (self.config.block_width as u64)
    }

    /// Whether A-row `i` has a true duplicate at B-row `i`.
    fn is_match(&self, i: usize) -> bool {
        self.entity_rng(i, 2).gen_bool(self.config.match_rate)
    }

    /// A fresh per-(entity, stream) RNG: the statelessness that makes
    /// row access O(1) at any index.
    fn entity_rng(&self, i: usize, stream: u64) -> StdRng {
        // splitmix-style index mixing so adjacent indices decorrelate.
        let mut z = self
            .config
            .seed
            .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    fn tier(&self, i: usize) -> &'static str {
        if self.entity_rng(i, 0).gen_bool(self.config.budget_share) {
            "budget"
        } else {
            "premium"
        }
    }

    fn base_name(&self, i: usize) -> String {
        let mut rng = self.entity_rng(i, 1);
        let block = i / self.config.block_width.max(1);
        format!(
            "blk{block} {} {} v{}",
            CATEGORIES[rng.gen_range(0..CATEGORIES.len())],
            QUALIFIERS[rng.gen_range(0..QUALIFIERS.len())],
            rng.gen_range(1..10usize)
        )
    }

    fn detail(&self, i: usize) -> String {
        let mut rng = self.entity_rng(i, 3);
        format!(
            "lot {} bin {}",
            rng.gen_range(100..1000usize),
            rng.gen_range(10..100usize)
        )
    }

    /// Row `i` of table A.
    pub fn row_a(&self, i: usize) -> Vec<String> {
        vec![
            format!("a{i}"),
            self.base_name(i),
            self.detail(i),
            self.tier(i).to_owned(),
        ]
    }

    /// Row `i` of table B: a perturbed duplicate of A's entity when the
    /// match coin lands, an independent same-block entity otherwise.
    pub fn row_b(&self, i: usize) -> Vec<String> {
        let mut rng = self.entity_rng(i, 4);
        let (name, detail) = if self.is_match(i) {
            let mut name = self.base_name(i);
            // Budget-tier duplicates are noisier (reseller listings).
            let noise = if self.tier(i) == "budget" { 2 } else { 1 };
            for _ in 0..noise {
                if rng.gen_bool(0.6) {
                    name.push(' ');
                    name.push_str(NOISE[rng.gen_range(0..NOISE.len())]);
                }
            }
            (name, self.detail(i))
        } else {
            // A distinct entity in the same block: a blocked negative.
            let block = i / self.config.block_width.max(1);
            let name = format!(
                "blk{block} {} {} v{}",
                CATEGORIES[rng.gen_range(0..CATEGORIES.len())],
                QUALIFIERS[rng.gen_range(0..QUALIFIERS.len())],
                rng.gen_range(1..10usize)
            );
            let detail = format!(
                "lot {} bin {}",
                rng.gen_range(100..1000usize),
                rng.gen_range(10..100usize)
            );
            (name, detail)
        };
        vec![format!("b{i}"), name, detail, self.tier(i).to_owned()]
    }

    /// Stream table A's rows in index order.
    pub fn rows_a(&self) -> impl Iterator<Item = Vec<String>> + '_ {
        (0..self.config.rows).map(|i| self.row_a(i))
    }

    /// Stream table B's rows in index order.
    pub fn rows_b(&self) -> impl Iterator<Item = Vec<String>> + '_ {
        (0..self.config.rows).map(|i| self.row_b(i))
    }

    /// Stream the ground-truth `(id_a, id_b)` match pairs.
    pub fn matches(&self) -> impl Iterator<Item = (String, String)> + '_ {
        (0..self.config.rows)
            .filter(|&i| self.is_match(i))
            .map(|i| (format!("a{i}"), format!("b{i}")))
    }

    /// Materialize the whole dataset in memory — for tests and small
    /// configurations only; the point of this generator is that large
    /// runs never call this.
    pub fn materialize(&self) -> GeneratedDataset {
        let table = |rows: Vec<Vec<String>>| CsvTable {
            header: self.header(),
            rows,
        };
        GeneratedDataset {
            name: "ScaleMatch".to_owned(),
            table_a: table(self.rows_a().collect()),
            table_b: table(self.rows_b().collect()),
            matches: self.matches().collect(),
            sensitive: self.sensitive(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_pure_functions_of_the_index() {
        let d = ScaleDataset::new(ScaleConfig::tiny());
        let first: Vec<_> = d.rows_a().collect();
        let second: Vec<_> = d.rows_a().collect();
        assert_eq!(first, second, "re-iteration must be byte-identical");
        assert_eq!(d.row_a(17), first[17], "random access equals streaming");
        assert_eq!(d.row_b(5), d.rows_b().nth(5).unwrap());
    }

    #[test]
    fn materialized_dataset_validates_and_matches_the_stream() {
        let d = ScaleDataset::new(ScaleConfig::tiny());
        let g = d.materialize();
        g.validate();
        assert_eq!(g.table_a.rows.len(), d.config().rows);
        assert_eq!(g.matches.len(), d.matches().count());
        assert!(!g.matches.is_empty(), "tiny config must produce matches");
    }

    #[test]
    fn blocks_are_fixed_width_and_shared_across_tables() {
        let d = ScaleDataset::new(ScaleConfig::tiny());
        let w = d.config().block_width;
        for i in 0..d.config().rows {
            let expect = format!("blk{}", i / w);
            let a = d.row_a(i);
            let b = d.row_b(i);
            assert!(a[1].starts_with(&expect), "A row {i}: {:?}", a[1]);
            assert!(b[1].starts_with(&expect), "B row {i}: {:?}", b[1]);
        }
    }

    #[test]
    fn with_pairs_hits_the_requested_candidate_volume() {
        for pairs in [100_000u64, 1_000_000] {
            let c = ScaleConfig::with_pairs(pairs);
            let d = ScaleDataset::new(c);
            let est = d.candidate_estimate();
            assert!(
                est >= pairs * 9 / 10 && est <= pairs * 11 / 10,
                "estimate {est} should be within 10% of {pairs}"
            );
        }
    }

    #[test]
    fn seeds_change_content_but_not_shape() {
        let a = ScaleDataset::new(ScaleConfig { seed: 1, ..ScaleConfig::tiny() });
        let b = ScaleDataset::new(ScaleConfig { seed: 2, ..ScaleConfig::tiny() });
        assert_ne!(
            a.rows_a().collect::<Vec<_>>(),
            b.rows_a().collect::<Vec<_>>()
        );
        assert_eq!(a.header(), b.header());
    }

    #[test]
    fn both_tiers_appear() {
        let d = ScaleDataset::new(ScaleConfig::tiny());
        let tiers: std::collections::HashSet<String> =
            d.rows_a().map(|r| r[3].clone()).collect();
        assert_eq!(tiers.len(), 2, "budget and premium must both occur");
    }
}
