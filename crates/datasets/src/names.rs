//! Name pools per group, with deliberately different collision profiles.
//!
//! The `cn` pool is small (10 surnames × 12 given names) to reproduce the
//! real-world concentration of romanized Chinese surnames — the property
//! the paper's demo traces unfairness to. Western pools are several times
//! larger and augmented with middle initials, so random collisions are
//! rare there.

use fairem_rng::rngs::StdRng;
use fairem_rng::seq::SliceRandom;
use fairem_rng::Rng;

/// A person name with generation metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersonName {
    /// Given name(s), space separated.
    pub given: String,
    /// Family name.
    pub family: String,
    /// Whether this culture commonly writes family-name-first, making
    /// token-order flips a realistic duplicate perturbation.
    pub family_first_variant: bool,
}

impl PersonName {
    /// Canonical "Given Family" rendering.
    pub fn western_order(&self) -> String {
        format!("{} {}", self.given, self.family)
    }

    /// "Family Given" rendering (romanized East-Asian order).
    pub fn family_order(&self) -> String {
        format!("{} {}", self.family, self.given)
    }
}

/// Group tags used by the FacultyMatch generator, ordered as reported.
pub const FACULTY_GROUPS: [&str; 5] = ["cn", "de", "us", "in", "br"];

const CN_SURNAMES: [&str; 10] = [
    "wang", "li", "zhang", "liu", "chen", "yang", "huang", "zhao", "wu", "zhou",
];
const CN_GIVEN: [&str; 12] = [
    "wei", "min", "jun", "hui", "ling", "na", "jing", "lei", "yan", "tao", "fang", "ming",
];

const DE_SURNAMES: [&str; 24] = [
    "muller",
    "schmidt",
    "schneider",
    "fischer",
    "weber",
    "meyer",
    "wagner",
    "becker",
    "schulz",
    "hoffmann",
    "koch",
    "bauer",
    "richter",
    "klein",
    "wolf",
    "schroder",
    "neumann",
    "schwarz",
    "zimmermann",
    "braun",
    "kruger",
    "hofmann",
    "hartmann",
    "lange",
];
const DE_GIVEN: [&str; 20] = [
    "hans", "peter", "klaus", "jurgen", "stefan", "andreas", "thomas", "uwe", "bernd", "frank",
    "martina", "sabine", "petra", "monika", "karin", "ursula", "heike", "gabriele", "birgit",
    "ingrid",
];

const US_SURNAMES: [&str; 28] = [
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "anderson",
    "taylor",
    "thomas",
    "hernandez",
    "moore",
    "martin",
    "jackson",
    "thompson",
    "white",
    "lopez",
    "lee",
    "gonzalez",
    "harris",
    "clark",
    "lewis",
    "robinson",
    "walker",
    "young",
];
const US_GIVEN: [&str; 24] = [
    "james",
    "mary",
    "robert",
    "patricia",
    "john",
    "jennifer",
    "michael",
    "linda",
    "david",
    "elizabeth",
    "william",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "christopher",
    "lisa",
    "daniel",
    "nancy",
];

const IN_SURNAMES: [&str; 18] = [
    "sharma",
    "patel",
    "singh",
    "kumar",
    "gupta",
    "verma",
    "reddy",
    "rao",
    "nair",
    "iyer",
    "mehta",
    "joshi",
    "desai",
    "shah",
    "agarwal",
    "banerjee",
    "chatterjee",
    "mukherjee",
];
const IN_GIVEN: [&str; 18] = [
    "raj", "amit", "ravi", "sanjay", "vijay", "anil", "sunil", "arun", "deepak", "rakesh", "priya",
    "anita", "sunita", "kavita", "meena", "pooja", "neha", "divya",
];

const BR_SURNAMES: [&str; 16] = [
    "silva",
    "santos",
    "oliveira",
    "souza",
    "rodrigues",
    "ferreira",
    "alves",
    "pereira",
    "lima",
    "gomes",
    "costa",
    "ribeiro",
    "martins",
    "carvalho",
    "almeida",
    "lopes",
];
const BR_GIVEN: [&str; 16] = [
    "joao",
    "maria",
    "jose",
    "ana",
    "antonio",
    "francisca",
    "carlos",
    "paulo",
    "pedro",
    "lucas",
    "luiza",
    "fernanda",
    "juliana",
    "marcia",
    "rafael",
    "bruno",
];

/// Middle initials appended in pools that use them.
const INITIALS: [&str; 12] = ["a", "b", "c", "d", "e", "f", "g", "h", "j", "k", "m", "r"];

/// Draw a name from the pool of group `group` (one of
/// [`FACULTY_GROUPS`] or the NoFlyCompas race tags, which reuse these
/// pools). Panics on an unknown group tag.
pub fn sample_name(group: &str, rng: &mut StdRng) -> PersonName {
    let (surnames, given, family_first, use_initial): (&[&str], &[&str], bool, bool) = match group {
        "cn" | "asian" => (&CN_SURNAMES, &CN_GIVEN, true, false),
        "de" => (&DE_SURNAMES, &DE_GIVEN, false, true),
        "us" | "white" => (&US_SURNAMES, &US_GIVEN, false, true),
        "in" => (&IN_SURNAMES, &IN_GIVEN, false, true),
        "br" | "hispanic" => (&BR_SURNAMES, &BR_GIVEN, false, true),
        "black" => (&US_SURNAMES, &US_GIVEN, false, true),
        // fairem: allow(panic) — documented contract: group names come from the fixed pool table
        other => panic!("unknown name-pool group: {other}"),
    };
    let family = (*surnames.pick(rng)).to_owned();
    let mut g = (*given.pick(rng)).to_owned();
    if use_initial && rng.gen_bool(0.6) {
        g.push(' ');
        g.push_str(INITIALS.pick(rng));
    }
    PersonName {
        given: g,
        family,
        family_first_variant: family_first,
    }
}

/// Alternative romanization of a (lowercase) Chinese name token, when
/// one exists: the same person may appear as "wang wei" in one roster
/// and "wong way" in another. This surface drift is the paper's stated
/// unfairness mechanism for the `cn` group — true duplicates look
/// dissimilar to string measures while distinct people collide.
pub fn romanization_variant(token: &str) -> Option<&'static str> {
    Some(match token {
        "wang" => "wong",
        "li" => "lee",
        "zhang" => "chang",
        "liu" => "lau",
        "chen" => "chan",
        "yang" => "yeung",
        "huang" => "hwang",
        "zhao" => "chao",
        "wu" => "woo",
        "zhou" => "chow",
        "wei" => "way",
        "jun" => "chun",
        "hui" => "hway",
        "jing" => "ching",
        "tao" => "tau",
        "ming" => "ming h",
        _ => return None,
    })
}

/// Size of the distinct full-name space for a group — used by tests to
/// assert the collision-rate ordering that drives the fairness story.
pub fn name_space_size(group: &str) -> usize {
    match group {
        "cn" | "asian" => CN_SURNAMES.len() * CN_GIVEN.len(),
        "de" => DE_SURNAMES.len() * DE_GIVEN.len() * (INITIALS.len() + 1),
        "us" | "white" | "black" => US_SURNAMES.len() * US_GIVEN.len() * (INITIALS.len() + 1),
        "in" => IN_SURNAMES.len() * IN_GIVEN.len() * (INITIALS.len() + 1),
        "br" | "hispanic" => BR_SURNAMES.len() * BR_GIVEN.len() * (INITIALS.len() + 1),
        // fairem: allow(panic) — documented contract: group names come from the fixed pool table
        other => panic!("unknown name-pool group: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_rng::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn cn_pool_is_the_smallest() {
        for g in ["de", "us", "in", "br"] {
            assert!(
                name_space_size("cn") < name_space_size(g) / 4,
                "cn should collide far more than {g}"
            );
        }
    }

    #[test]
    fn cn_names_collide_frequently_in_samples() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut cn = HashSet::new();
        let mut us = HashSet::new();
        const N: usize = 300;
        for _ in 0..N {
            cn.insert(sample_name("cn", &mut rng).western_order());
            us.insert(sample_name("us", &mut rng).western_order());
        }
        assert!(cn.len() < us.len(), "cn {} vs us {}", cn.len(), us.len());
        // cn cannot exceed its 120-name space.
        assert!(cn.len() <= name_space_size("cn"));
    }

    #[test]
    fn family_first_only_for_cn() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_name("cn", &mut rng).family_first_variant);
        assert!(!sample_name("us", &mut rng).family_first_variant);
    }

    #[test]
    fn orders_render_correctly() {
        let n = PersonName {
            given: "wei".into(),
            family: "li".into(),
            family_first_variant: true,
        };
        assert_eq!(n.western_order(), "wei li");
        assert_eq!(n.family_order(), "li wei");
    }

    #[test]
    #[should_panic(expected = "unknown name-pool group")]
    fn unknown_group_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_name("xx", &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(sample_name("de", &mut a), sample_name("de", &mut b));
    }
}
