//! A DBLP/ACM-style citation-matching generator.
//!
//! Bibliographic records from two indexes must be matched; the sensitive
//! attribute is the venue, a non-social grouping that exercises setwise
//! audits (a matcher may systematically miss preprint-style venues whose
//! metadata is noisier).

use fairem_rng::rngs::StdRng;
use fairem_rng::seq::SliceRandom;
use fairem_rng::{Rng, SeedableRng};

use fairem_csvio::CsvTable;

use crate::common::GeneratedDataset;
use crate::names::sample_name;
use crate::perturb;

/// Configuration for [`citations`].
#[derive(Debug, Clone, PartialEq)]
pub struct CitationsConfig {
    /// Papers per venue in table A.
    pub per_venue: usize,
    /// Fraction of A papers duplicated in B.
    pub match_rate: f64,
    /// B-only distractors as a fraction of `per_venue`.
    pub distractor_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CitationsConfig {
    fn default() -> CitationsConfig {
        CitationsConfig {
            per_venue: 150,
            match_rate: 0.6,
            distractor_rate: 0.35,
            seed: 21,
        }
    }
}

impl CitationsConfig {
    /// A small configuration for fast tests.
    pub fn small() -> CitationsConfig {
        CitationsConfig {
            per_venue: 25,
            ..CitationsConfig::default()
        }
    }
}

/// `(canonical venue, noisy variant, metadata noise probability)` —
/// preprint metadata is much noisier than curated proceedings.
const VENUES: [(&str, &str, f64); 4] = [
    ("vldb", "proceedings of the vldb endowment", 0.1),
    ("sigmod", "acm sigmod conference", 0.1),
    ("icde", "ieee icde", 0.15),
    ("preprint", "arxiv preprint", 0.55),
];

const TITLE_WORDS: [&str; 24] = [
    "scalable",
    "entity",
    "matching",
    "learning",
    "distributed",
    "query",
    "optimization",
    "graph",
    "index",
    "stream",
    "adaptive",
    "fairness",
    "neural",
    "join",
    "sampling",
    "privacy",
    "transaction",
    "storage",
    "vector",
    "cache",
    "approximate",
    "parallel",
    "robust",
    "federated",
];

fn make_title(rng: &mut StdRng) -> String {
    let n = rng.gen_range(4..8);
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(*TITLE_WORDS.pick(rng));
    }
    words.join(" ")
}

fn make_authors(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..4);
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(sample_name("us", rng).western_order());
    }
    names.join(", ")
}

/// Generate the citations benchmark. The result is validated before
/// being returned.
pub fn citations(config: &CitationsConfig) -> GeneratedDataset {
    assert!(config.per_venue > 0, "need at least one paper per venue");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let header: Vec<String> = ["id", "title", "authors", "venue", "year"]
        .map(String::from)
        .to_vec();
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut matches = Vec::new();
    let mut next_b = 0usize;

    for (venue, variant, noise) in VENUES {
        for _ in 0..config.per_venue {
            let t = make_title(&mut rng);
            let authors = make_authors(&mut rng);
            let year = rng.gen_range(2005..2024).to_string();
            let aid = format!("a{}", rows_a.len());
            rows_a.push(vec![
                aid.clone(),
                t.clone(),
                authors.clone(),
                venue.to_owned(),
                year.clone(),
            ]);
            if rng.gen_bool(config.match_rate) {
                let mut bt = perturb::maybe(&t, noise, &mut rng, perturb::typo);
                if rng.gen_bool(noise) {
                    bt = perturb::flip_tokens(&bt);
                }
                let b_auth = if rng.gen_bool(noise) {
                    perturb::abbreviate_first(&authors)
                } else {
                    authors.clone()
                };
                let b_venue = if rng.gen_bool(0.5) { variant } else { venue };
                let bid = format!("b{next_b}");
                next_b += 1;
                rows_b.push(vec![bid.clone(), bt, b_auth, b_venue.to_owned(), year]);
                matches.push((aid, bid));
            }
        }
        let d = (config.per_venue as f64 * config.distractor_rate).round() as usize;
        for _ in 0..d {
            let bid = format!("b{next_b}");
            next_b += 1;
            rows_b.push(vec![
                bid,
                make_title(&mut rng),
                make_authors(&mut rng),
                venue.to_owned(),
                rng.gen_range(2005..2024).to_string(),
            ]);
        }
    }

    // B-side venue strings vary ("vldb" vs the long variant); audits
    // group on the A-side canonical tag which exists in both tables'
    // schema. Normalize B's venue back to the canonical tag so the
    // sensitive column is consistent, keeping the *title/author* noise
    // as the unfairness driver.
    let vi = 3;
    for row in rows_b.iter_mut() {
        for (venue, variant, _) in VENUES {
            if row[vi] == variant {
                row[vi] = venue.to_owned();
            }
        }
    }

    let dataset = GeneratedDataset {
        name: "Citations".into(),
        table_a: CsvTable {
            header: header.clone(),
            rows: rows_a,
        },
        table_b: CsvTable {
            header,
            rows: rows_b,
        },
        matches,
        sensitive: vec!["venue".into()],
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_dataset() {
        let d = citations(&CitationsConfig::small());
        d.validate();
        assert_eq!(d.table_a.len(), 4 * 25);
        assert!(!d.matches.is_empty());
    }

    #[test]
    fn venues_are_canonical_in_both_tables() {
        let d = citations(&CitationsConfig::small());
        let vi = d.table_b.column_index("venue").unwrap();
        let canon: std::collections::HashSet<&str> = VENUES.iter().map(|&(v, _, _)| v).collect();
        for r in &d.table_b.rows {
            assert!(
                canon.contains(r[vi].as_str()),
                "non-canonical venue {}",
                r[vi]
            );
        }
    }

    #[test]
    fn years_are_numeric() {
        let d = citations(&CitationsConfig::small());
        let yi = d.table_a.column_index("year").unwrap();
        for r in &d.table_a.rows {
            assert!(r[yi].parse::<u32>().is_ok());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = citations(&CitationsConfig::small());
        let b = citations(&CitationsConfig::small());
        assert_eq!(a.table_a.rows, b.table_a.rows);
        assert_eq!(a.matches, b.matches);
    }
}
