//! Duplicate-record perturbations.
//!
//! When a generator emits the B-side copy of an entity, it passes the
//! clean attribute values through these perturbations so that true
//! matches are non-trivial: typos, token-order flips (romanized
//! East-Asian names), initialization of given names, and value drops.

use fairem_rng::rngs::StdRng;
use fairem_rng::Rng;

/// Introduce a single random character-level edit (substitute, delete,
/// or duplicate) at a random position. Empty strings pass through.
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let pos = rng.gen_range(0..chars.len());
    let mut out: Vec<char> = chars.clone();
    match rng.gen_range(0..3u8) {
        0 => {
            // Substitute with a nearby letter.
            let c = out[pos];
            out[pos] = if c.is_ascii_alphabetic() {
                let base = if c.is_ascii_uppercase() { b'A' } else { b'a' };
                let off = (c as u8 - base + 1) % 26;
                (base + off) as char
            } else {
                'x'
            };
        }
        1 if out.len() > 1 => {
            out.remove(pos);
        }
        _ => {
            let c = out[pos];
            out.insert(pos, c);
        }
    }
    out.into_iter().collect()
}

/// Abbreviate the first token to its initial: `"wei li" → "w li"`.
/// Strings with fewer than two tokens pass through unchanged.
pub fn abbreviate_first(s: &str) -> String {
    let mut parts = s.split_whitespace();
    let Some(first) = parts.next() else {
        return s.to_owned();
    };
    let rest: Vec<&str> = parts.collect();
    if rest.is_empty() {
        return s.to_owned();
    }
    let initial: String = first.chars().take(1).collect();
    let mut out = initial;
    for r in rest {
        out.push(' ');
        out.push_str(r);
    }
    out
}

/// Swap the first and last whitespace token: `"wei li" → "li wei"`.
/// Single-token strings pass through unchanged.
pub fn flip_tokens(s: &str) -> String {
    let parts: Vec<&str> = s.split_whitespace().collect();
    if parts.len() < 2 {
        return s.to_owned();
    }
    let mut out: Vec<&str> = Vec::with_capacity(parts.len());
    out.push(parts[parts.len() - 1]);
    out.extend_from_slice(&parts[1..parts.len() - 1]);
    out.push(parts[0]);
    out.join(" ")
}

/// Rewrite every token that has an alternative romanization
/// (`wang wei` → `wong way`). Tokens without a variant pass through.
pub fn romanize(s: &str) -> String {
    s.split_whitespace()
        .map(|t| crate::names::romanization_variant(t).unwrap_or(t))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Apply a perturbation with the given probability; otherwise identity.
pub fn maybe(
    s: &str,
    prob: f64,
    rng: &mut StdRng,
    f: impl FnOnce(&str, &mut StdRng) -> String,
) -> String {
    if rng.gen_bool(prob) {
        f(s, rng)
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairem_rng::SeedableRng;

    #[test]
    fn typo_changes_string_by_one_edit() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let t = typo("johnson", &mut rng);
            assert_ne!(t, "johnson");
            let dist = fairem_levenshtein(&t, "johnson");
            assert!(dist <= 1, "{t}");
        }
        assert_eq!(typo("", &mut rng), "");
    }

    // Minimal Levenshtein for the test (avoiding a cross-dev-dependency).
    fn fairem_levenshtein(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        for (i, ca) in a.iter().enumerate() {
            let mut cur = vec![i + 1];
            for (j, cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
            }
            prev = cur;
        }
        prev[b.len()]
    }

    #[test]
    fn abbreviate_keeps_single_tokens() {
        assert_eq!(abbreviate_first("wei li"), "w li");
        assert_eq!(abbreviate_first("cher"), "cher");
        assert_eq!(abbreviate_first("john q public"), "j q public");
    }

    #[test]
    fn flip_swaps_outer_tokens() {
        assert_eq!(flip_tokens("wei li"), "li wei");
        assert_eq!(flip_tokens("a b c"), "c b a");
        assert_eq!(flip_tokens("solo"), "solo");
    }

    #[test]
    fn maybe_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(maybe("x", 0.0, &mut rng, |s, _| format!("{s}!")), "x");
        assert_eq!(maybe("x", 1.0, &mut rng, |s, _| format!("{s}!")), "x!");
    }
}
