//! # fairem-datasets
//!
//! Synthetic dataset generators standing in for the demo datasets the
//! paper uses (FacultyMatch, NoFlyCompas) and for the Magellan/WDC-style
//! benchmark formats the suite ingests.
//!
//! The paper's datasets are private social data; these generators
//! reproduce the three properties the demo narrative depends on
//! (see `DESIGN.md` §1):
//!
//! 1. **Group-correlated name collisions** — e.g. the `cn` group draws
//!    from a small romanized surname/given-name pool, so distinct people
//!    frequently share near-identical names (driving false positives),
//!    and true duplicates often differ by token order or romanization
//!    (driving false negatives).
//! 2. **Representation skew** — group sizes and match rates are knobs.
//! 3. **Intersectional subgroups** — NoFlyCompas carries race × sex.
//!
//! Every generator is deterministic given its seed and emits two
//! [`fairem_csvio::CsvTable`]s plus a ground-truth match set, i.e. exactly
//! the Magellan benchmark shape (`tableA.csv`, `tableB.csv`,
//! `matches.csv`).

pub mod citations;
pub mod common;
pub mod faculty;
pub mod names;
pub mod noflycompas;
pub mod perturb;
pub mod products;
pub mod stream;

pub use citations::{citations, CitationsConfig};
pub use common::GeneratedDataset;
pub use faculty::{faculty_match, FacultyConfig};
pub use noflycompas::{nofly_compas, NoFlyConfig};
pub use products::{wdc_products, ProductsConfig};
pub use stream::{ScaleConfig, ScaleDataset};
